"""Cycle-accurate dataflow simulation of the segmented GMX-AC array.

:mod:`repro.hw.gmx_ac` models the array's *cost* (gates, delays, stages);
this module actually *executes* it the way the hardware does: every CC_AC
cell evaluates the two gate-level GMXΔ boolean netlists (Eq. 3, via
:func:`repro.core.delta.gmx_delta_bits`) on 2-bit-encoded operands, cells
fire in antidiagonal order, and antidiagonal pipeline registers latch
values at the stage boundaries chosen by the segmentation plan (Figure 9.a).

The simulation checks what an RTL testbench would:

* **functional equivalence** — edge outputs equal the reference tile
  kernel for any stage count (pipelining must never change values);
* **scheduling legality** — no cell consumes an operand produced in a
  later cycle (asserted internally while simulating);
* **timing** — a tile's latency equals the plan's stage count, and a
  stream of tiles retires one per cycle once the pipeline is full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.delta import decode_delta, encode_delta, gmx_delta_bits
from ..core.tile import TileResult
from .gmx_ac import GmxAcModel, StuckAtFault


class SchedulingError(RuntimeError):
    """A cell consumed an operand that was not yet latched — RTL bug."""


@dataclass(frozen=True)
class SimulatedTile:
    """Result of simulating one tile through the array.

    Attributes:
        result: the tile's output edges.
        latency_cycles: cycles from operand capture to result writeback.
    """

    result: TileResult
    latency_cycles: int


class GmxAcArraySim:
    """Executable model of the pipelined GMX-AC cell array.

    Args:
        tile_size: T, the array dimension.
        stages: pipeline stages (1 = fully combinational).
        faults: stuck-at faults to apply to cell outputs
            (:class:`~repro.hw.gmx_ac.StuckAtFault`) — the fault-injection
            hook of the resilience campaign's hardware layer.  An empty
            sequence simulates a healthy array; a faulty array's outputs
            diverge from the reference tile kernel, which is exactly what
            the gate-level equivalence check must detect.
    """

    def __init__(
        self,
        tile_size: int = 32,
        stages: int = 1,
        faults: Sequence[StuckAtFault] = (),
    ):
        if tile_size < 2:
            raise ValueError(f"tile size must be at least 2, got {tile_size}")
        if stages < 1:
            raise ValueError(f"stages must be positive, got {stages}")
        for fault in faults:
            if not (0 <= fault.row < tile_size and 0 <= fault.col < tile_size):
                raise ValueError(
                    f"fault cell ({fault.row},{fault.col}) outside the "
                    f"{tile_size}×{tile_size} array"
                )
        self.faults = tuple(faults)
        self.tile_size = tile_size
        diagonals = 2 * tile_size - 1
        self.stages = min(stages, diagonals)
        # Assign each antidiagonal to a stage exactly as the cost model's
        # segmentation does (balanced contiguous groups).
        base = diagonals // self.stages
        remainder = diagonals % self.stages
        self._stage_of_diagonal: List[int] = []
        for stage in range(self.stages):
            count = base + (1 if stage < remainder else 0)
            self._stage_of_diagonal.extend([stage] * count)
        # The cost model agrees on the shape of the plan by construction.
        assert len(self._stage_of_diagonal) == diagonals

    def stage_of(self, row: int, col: int) -> int:
        """Pipeline stage (cycle of evaluation) of cell (row, col)."""
        return self._stage_of_diagonal[row + col]

    def simulate(
        self,
        pattern: str,
        text: str,
        dv_in: Sequence[int],
        dh_in: Sequence[int],
    ) -> SimulatedTile:
        """Run one tile through the array at gate level.

        Operands and results travel as (bit0, bit1) pairs; every cell
        evaluates ``gmx_delta_bits`` twice (the two GMXΔ modules of
        Figure 7) plus the character comparator.
        """
        rows = len(pattern)
        cols = len(text)
        if rows > self.tile_size or cols > self.tile_size:
            raise ValueError(
                f"chunk ({rows}×{cols}) exceeds the {self.tile_size}-array"
            )
        if len(dv_in) != rows or len(dh_in) != cols:
            raise ValueError("edge vector lengths must match the chunks")
        # Encoded vertical operands per row (left edge), horizontal per col.
        dv_bits: List[Tuple[int, int]] = [encode_delta(d) for d in dv_in]
        dh_bits: List[Tuple[int, int]] = [encode_delta(d) for d in dh_in]
        # ready[i][j] = cycle at which cell (i, j)'s outputs are latched.
        ready = [[0] * cols for _ in range(rows)]
        for diagonal in range(rows + cols - 1):
            stage = self._stage_of_diagonal[diagonal]
            low = max(0, diagonal - cols + 1)
            high = min(rows - 1, diagonal)
            for i in range(high, low - 1, -1):
                j = diagonal - i
                # Scheduling legality: operands must come from cells in the
                # same or an earlier stage.
                if i > 0 and ready[i - 1][j] > stage:
                    raise SchedulingError(
                        f"cell ({i},{j}) reads ({i - 1},{j}) from the future"
                    )
                if j > 0 and ready[i][j - 1] > stage:
                    raise SchedulingError(
                        f"cell ({i},{j}) reads ({i},{j - 1}) from the future"
                    )
                eq = 1 if pattern[i] == text[j] else 0
                v0, v1 = dv_bits[i]
                h0, h1 = dh_bits[j]
                new_v = gmx_delta_bits(v0, v1, h0, h1, eq)
                new_h = gmx_delta_bits(h0, h1, v0, v1, eq)
                for fault in self.faults:
                    if fault.row == i and fault.col == j:
                        if fault.net == "dv":
                            new_v = fault.apply(new_v)
                        else:
                            new_h = fault.apply(new_h)
                dv_bits[i] = new_v
                dh_bits[j] = new_h
                ready[i][j] = stage
        result = TileResult(
            dv_out=tuple(decode_delta(*bits) for bits in dv_bits),
            dh_out=tuple(decode_delta(*bits) for bits in dh_bits),
        )
        return SimulatedTile(result=result, latency_cycles=self.stages)

    def simulate_stream(
        self,
        tiles: Sequence[Tuple[str, str, Sequence[int], Sequence[int]]],
    ) -> Tuple[List[TileResult], int]:
        """Push a stream of independent tiles through the pipeline.

        Returns the per-tile results and the total cycles: with S stages
        and k tiles, ``S + k − 1`` (one tile retires per cycle once full —
        the array's peak T²·f GCUPS operating point).
        """
        results = [
            self.simulate(pattern, text, dv, dh).result
            for pattern, text, dv, dh in tiles
        ]
        total_cycles = self.stages + max(0, len(results) - 1)
        return results, total_cycles

    def matches_cost_model(self, model: GmxAcModel) -> bool:
        """True when this array's geometry matches a cost model's."""
        return (
            model.tile_size == self.tile_size
            and model.segment(self.stages).stages == self.stages
        )


@dataclass(frozen=True)
class SimulatedTraceback:
    """Result of simulating one gmx.tb through the GMX-TB array.

    Attributes:
        ops: alignment operations in walk order.
        next_tile_code: 2-bit next-tile direction (NextTile encoding).
        gmx_lo / gmx_hi: packed register images as the hardware emits them.
        latency_cycles: stage count of the segmented design.
    """

    ops: Tuple[str, ...]
    next_tile_code: int
    gmx_lo: int
    gmx_hi: int
    latency_cycles: int


class GmxTbArraySim:
    """Executable model of the GMX-TB traceback array (Figure 8).

    Phase 1 recomputes the tile interior through the gate-level GMXΔ
    netlists (the CC_TB cells embed the same modules as CC_AC); phase 2
    propagates the selection: starting from the one-hot ``gmx_pos`` cell,
    each enabled CC_TB applies the priority rule (eq → M, Δv → D, Δh → I,
    else X) and enables exactly one neighbour.  The simulation asserts the
    hardware invariant that at most one cell fires per antidiagonal, and
    packs the ops into gmx_lo/gmx_hi exactly as the unit would.

    Args:
        tile_size: T, the array dimension.
        stages: pipeline stages of the combined recompute+select pass
            (6 at T = 32 / 1 GHz in the paper's design).
    """

    def __init__(self, tile_size: int = 32, stages: int = 6):
        if tile_size < 2:
            raise ValueError(f"tile size must be at least 2, got {tile_size}")
        if stages < 1:
            raise ValueError(f"stages must be positive, got {stages}")
        self.tile_size = tile_size
        self.stages = min(stages, 2 * tile_size - 1)

    def simulate(
        self,
        pattern: str,
        text: str,
        dv_in: Sequence[int],
        dh_in: Sequence[int],
        start: Tuple[int, int],
    ) -> SimulatedTraceback:
        """Run one tile traceback at gate level."""
        from ..core.traceback import NextTile, pack_tile_ops

        rows = len(pattern)
        cols = len(text)
        if rows > self.tile_size or cols > self.tile_size:
            raise ValueError(
                f"chunk ({rows}×{cols}) exceeds the {self.tile_size}-array"
            )
        start_row, start_col = start
        if not (0 <= start_row < rows and 0 <= start_col < cols):
            raise ValueError(f"start {start!r} outside the {rows}×{cols} tile")
        # Phase 1: gate-level interior recomputation (per-cell Δ outputs).
        dv_bits = [encode_delta(d) for d in dv_in]
        dh_bits = [encode_delta(d) for d in dh_in]
        dv_grid = [[(0, 0)] * cols for _ in range(rows)]
        dh_grid = [[(0, 0)] * cols for _ in range(rows)]
        for diagonal in range(rows + cols - 1):
            low = max(0, diagonal - cols + 1)
            high = min(rows - 1, diagonal)
            for i in range(high, low - 1, -1):
                j = diagonal - i
                eq = 1 if pattern[i] == text[j] else 0
                v0, v1 = dv_bits[i]
                h0, h1 = dh_bits[j]
                new_v = gmx_delta_bits(v0, v1, h0, h1, eq)
                new_h = gmx_delta_bits(h0, h1, v0, v1, eq)
                dv_bits[i] = new_v
                dh_bits[j] = new_h
                dv_grid[i][j] = new_v
                dh_grid[i][j] = new_h
        # Phase 2: selection propagation with the CC_TB priority mux.
        fired_diagonals = set()
        ops = []
        i, j = start_row, start_col
        while i >= 0 and j >= 0:
            diagonal = i + j
            if diagonal in fired_diagonals:
                raise SchedulingError(
                    f"two CC_TB cells fired on antidiagonal {diagonal}"
                )
            fired_diagonals.add(diagonal)
            eq = pattern[i] == text[j]
            dv_plus = dv_grid[i][j][0]  # Δv == +1 bit
            dh_plus = dh_grid[i][j][0]  # Δh == +1 bit
            if eq:
                ops.append("M")
                i -= 1
                j -= 1
            elif dv_plus:
                ops.append("D")
                i -= 1
            elif dh_plus:
                ops.append("I")
                j -= 1
            else:
                ops.append("X")
                i -= 1
                j -= 1
        if i < 0 and j < 0:
            next_tile = NextTile.DIAGONAL
        elif i < 0:
            next_tile = NextTile.UP
        else:
            next_tile = NextTile.LEFT
        lo, hi = pack_tile_ops(
            tuple(ops), start, next_tile, tile_size=self.tile_size
        )
        return SimulatedTraceback(
            ops=tuple(ops),
            next_tile_code=next_tile.code,
            gmx_lo=lo,
            gmx_hi=hi,
            latency_cycles=self.stages,
        )
