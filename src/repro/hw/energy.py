"""Energy model of GMX-enhanced alignment (extension of §7.3's power data).

The paper reports power (8.47 mW for the GMX modules, 2.1 % of the SoC at
1 GHz under the alignment benchmarks) but not energy per alignment.  This
model derives it: per-instruction-class energies for the RTL-InOrder core
(typical values for a simple 22nm in-order RV64 with its caches), with the
GMX instruction energies anchored on the published module powers — the
GMX-AC and GMX-TB dynamic energy per operation is their power share times
their occupancy.

The resulting metric (nJ/alignment, GCUPS/W) quantifies the efficiency
argument the paper makes qualitatively: executing 1024 DP cells in one
2-cycle instruction spends orders of magnitude less energy than issuing
the equivalent scalar instruction stream through the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..align.base import KernelStats
from .floorplan import (
    GMX_AC_AREA_MM2,
    GMX_POWER_MW,
    GMX_TB_AREA_MM2,
    GMX_TOTAL_AREA_MM2,
    SOC_POWER_MW,
)

#: Share of the GMX power budget attributed to each module (by area).
_AC_POWER_MW = GMX_POWER_MW * GMX_AC_AREA_MM2 / GMX_TOTAL_AREA_MM2
_TB_POWER_MW = GMX_POWER_MW * GMX_TB_AREA_MM2 / GMX_TOTAL_AREA_MM2

#: Pipeline occupancy of the GMX units at 1 GHz (paper §6.3 latencies).
_AC_CYCLES = 2
_TB_CYCLES = 6


def _default_instruction_energy() -> Dict[str, float]:
    return {
        # Scalar classes: typical energies for a simple 22nm in-order RV64
        # core including L1 access (pJ per retired instruction).
        "int_alu": 8.0,
        "branch": 9.0,
        "csr": 8.0,
        "load": 25.0,
        "store": 20.0,
        # GMX classes: module power × occupancy at 1 GHz.
        "gmx": _AC_POWER_MW * _AC_CYCLES,  # mW × ns = pJ
        "gmx_tb": (_AC_POWER_MW + _TB_POWER_MW) * _TB_CYCLES,
    }


@dataclass(frozen=True)
class EnergyProfile:
    """Per-instruction energies and background power of one system.

    Attributes:
        instruction_energy_pj: dynamic energy per retired instruction.
        static_power_mw: always-on (leakage + clock-tree) power.
        frequency_ghz: clock, to convert cycles into static energy.
    """

    instruction_energy_pj: Dict[str, float] = field(
        default_factory=_default_instruction_energy
    )
    static_power_mw: float = SOC_POWER_MW * 0.25  # typical 22nm leakage share
    frequency_ghz: float = 1.0

    def dynamic_energy_pj(self, stats: KernelStats) -> float:
        """Dynamic energy of one kernel invocation."""
        total = 0.0
        for kind, count in stats.instructions.items():
            energy = self.instruction_energy_pj.get(kind)
            if energy is None:
                raise ValueError(f"no energy model for instruction class {kind!r}")
            total += energy * count
        return total


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting of one alignment.

    Attributes:
        dynamic_pj / static_pj / total_pj: energy split.
        cells: DP cells evaluated.
    """

    dynamic_pj: float
    static_pj: float
    cells: int

    @property
    def total_pj(self) -> float:
        """Total energy."""
        return self.dynamic_pj + self.static_pj

    @property
    def nj_per_alignment(self) -> float:
        """Total energy in nanojoules."""
        return self.total_pj / 1e3

    @property
    def pj_per_cell(self) -> float:
        """Energy per DP cell — the efficiency metric of Table 2's spirit."""
        return self.total_pj / self.cells if self.cells else 0.0

    @property
    def gcups_per_watt(self) -> float:
        """Cell throughput per watt implied by the per-cell energy."""
        return 1.0 / self.pj_per_cell if self.pj_per_cell else 0.0


def estimate_energy(
    stats: KernelStats,
    cycles: float,
    profile: EnergyProfile = EnergyProfile(),
) -> EnergyEstimate:
    """Estimate the energy of one kernel invocation.

    Args:
        stats: the kernel's instruction/cell profile.
        cycles: modelled execution cycles (static energy accrues per cycle).
    """
    if cycles < 0:
        raise ValueError(f"cycles must be non-negative, got {cycles}")
    dynamic = profile.dynamic_energy_pj(stats)
    seconds = cycles / (profile.frequency_ghz * 1e9)
    static = profile.static_power_mw * 1e-3 * seconds * 1e12  # W·s → pJ
    return EnergyEstimate(
        dynamic_pj=dynamic, static_pj=static, cells=stats.dp_cells
    )
