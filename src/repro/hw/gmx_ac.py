"""GMX-AC microarchitecture model (paper §6.1 and Figure 7).

GMX-AC is a T×T array of compute cells (CC_AC).  Each cell holds two GMXΔ
modules (one for Δv_out, one for Δh_out) and a character comparator, and is
wired to its left and upper neighbours.  The array's critical path crosses
2T−1 cells corner-to-corner (§6.3), so high clock rates require pipeline
registers between antidiagonals.

This model reproduces the §6.3 analysis quantitatively: gate budgets,
critical-path delay as a function of the per-cell delay C_d, the
segmentation register cost, and the stage count needed for a target
frequency (2 cycles at T = 32 / 1 GHz in the paper's implementation).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from .gates import GateBudget, comparator_budget, gmx_delta_budget

#: Per-cell propagation delay in GF 22nm, calibrated so that the T = 32
#: array meets the paper's 2-cycle latency at 1 GHz: (2T−1)·C_d ≤ 2 ns.
CCAC_DELAY_NS = 0.031


@dataclass(frozen=True)
class StuckAtFault:
    """A stuck-at fault on one output bit of one CC_AC cell.

    The fault model of the resilience campaign's hardware layer: each
    cell's two GMXΔ modules emit a 2-bit-encoded Δ value (bit 0 = "+1",
    bit 1 = "−1"); a stuck-at fault forces one of those four output nets
    to a constant, whatever the cell computes.  Applied by
    :class:`repro.hw.rtl_sim.GmxAcArraySim` when simulating a faulty array.

    Attributes:
        row / col: cell coordinates in the T×T array.
        net: which module's output is faulty (``"dv"`` or ``"dh"``).
        bit: which encoded bit is stuck (0 = the "+1" plane, 1 = "−1").
        value: the stuck level (0 or 1).
    """

    row: int
    col: int
    net: str
    bit: int
    value: int

    def __post_init__(self) -> None:
        if self.net not in ("dv", "dh"):
            raise ValueError(f"net must be 'dv' or 'dh', got {self.net!r}")
        if self.bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {self.bit}")
        if self.value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {self.value}")

    def apply(self, bits: Tuple[int, int]) -> Tuple[int, int]:
        """Force this fault's bit of an encoded (bit0, bit1) Δ value."""
        b0, b1 = bits
        if self.bit == 0:
            return self.value, b1
        return b0, self.value


def sample_stuck_faults(
    tile_size: int, count: int, seed: int
) -> List[StuckAtFault]:
    """Deterministically sample ``count`` distinct stuck-at fault sites.

    The fault universe is every (cell, net, bit, level) combination —
    ``T² · 2 · 2 · 2`` sites; sampling is reproducible for a given seed, so
    chaos campaigns replay exactly.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(seed)
    sites = rng.sample(range(tile_size * tile_size * 8), count)
    faults = []
    for site in sites:
        cell, rest = divmod(site, 8)
        row, col = divmod(cell, tile_size)
        faults.append(
            StuckAtFault(
                row=row,
                col=col,
                net="dv" if rest & 4 else "dh",
                bit=(rest >> 1) & 1,
                value=rest & 1,
            )
        )
    return faults


@dataclass(frozen=True)
class SegmentationPlan:
    """A pipeline segmentation of a cell array along antidiagonals.

    Attributes:
        stages: number of pipeline stages.
        stage_delays_ns: combinational delay of each stage.
        register_bits: total pipeline register bits inserted.
    """

    stages: int
    stage_delays_ns: List[float]
    register_bits: int

    @property
    def max_stage_delay_ns(self) -> float:
        """Slowest stage — sets the achievable clock period."""
        return max(self.stage_delays_ns)

    @property
    def max_frequency_ghz(self) -> float:
        """Clock ceiling implied by the slowest stage."""
        return 1.0 / self.max_stage_delay_ns


class GmxAcModel:
    """Structural and timing model of the GMX-AC unit.

    Args:
        tile_size: T, the array dimension.
        char_bits: character width compared by each cell (2 for DNA codes;
            8 for raw ASCII as the paper's flexible-alphabet variant).
        cell_delay_ns: per-cell propagation delay C_d.
    """

    def __init__(
        self,
        tile_size: int = 32,
        char_bits: int = 2,
        cell_delay_ns: float = CCAC_DELAY_NS,
    ):
        if tile_size < 2:
            raise ValueError(f"tile size must be at least 2, got {tile_size}")
        if cell_delay_ns <= 0:
            raise ValueError(f"cell delay must be positive, got {cell_delay_ns}")
        self.tile_size = tile_size
        self.char_bits = char_bits
        self.cell_delay_ns = cell_delay_ns

    # -- structure -------------------------------------------------------------

    def cell_budget(self) -> GateBudget:
        """Gate budget of one CC_AC: two GMXΔ modules plus the comparator."""
        budget = GateBudget()
        budget.merge(gmx_delta_budget(), copies=2)
        budget.merge(comparator_budget(self.char_bits))
        return budget

    @property
    def cell_count(self) -> int:
        """Number of CC_AC cells (T²)."""
        return self.tile_size**2

    def array_budget(self) -> GateBudget:
        """Gate budget of the full T×T array (cells only, no registers)."""
        return GateBudget().merge(self.cell_budget(), copies=self.cell_count)

    @property
    def throughput_elements_per_cycle(self) -> int:
        """DP elements produced per issued instruction-pair (T²)."""
        return self.cell_count

    # -- timing (§6.3) -----------------------------------------------------------

    @property
    def critical_path_cells(self) -> int:
        """Cells on the longest combinational path (2T − 1)."""
        return 2 * self.tile_size - 1

    @property
    def critical_path_ns(self) -> float:
        """Unpipelined corner-to-corner delay ((2T − 1) · C_d)."""
        return self.critical_path_cells * self.cell_delay_ns

    def segment(self, stages: int) -> SegmentationPlan:
        """Split the array into ``stages`` antidiagonal pipeline stages.

        Antidiagonals are distributed as evenly as possible; each stage
        boundary stores at most T Δ values (2T bits of ΔV plus 2T of ΔH in
        the worst case, modelled as 4T register bits per boundary).
        """
        if stages < 1:
            raise ValueError(f"stages must be positive, got {stages}")
        diagonals = self.critical_path_cells
        stages = min(stages, diagonals)
        base = diagonals // stages
        remainder = diagonals % stages
        per_stage = [base + (1 if s < remainder else 0) for s in range(stages)]
        delays = [count * self.cell_delay_ns for count in per_stage]
        register_bits = (stages - 1) * 4 * self.tile_size
        return SegmentationPlan(
            stages=stages, stage_delays_ns=delays, register_bits=register_bits
        )

    def stages_for_frequency(self, frequency_ghz: float) -> int:
        """Minimum stage count meeting a target clock (§6.3's question)."""
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_ghz}")
        period = 1.0 / frequency_ghz
        stages = max(1, math.ceil(self.critical_path_ns / period))
        while self.segment(stages).max_stage_delay_ns > period:
            stages += 1
            if stages > self.critical_path_cells:
                raise ValueError(
                    f"cannot reach {frequency_ghz} GHz even fully pipelined: "
                    f"cell delay {self.cell_delay_ns} ns exceeds the period"
                )
        return stages

    def latency_cycles(self, frequency_ghz: float = 1.0) -> int:
        """Operation latency in cycles at the given clock."""
        return self.stages_for_frequency(frequency_ghz)
