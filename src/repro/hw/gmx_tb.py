"""GMX-TB microarchitecture model (paper §6.2 and Figures 8/9).

GMX-TB recomputes the tile interior (a CC_AC-like difference pass) and then
propagates the traceback selection from the start cell toward the top/left
edge through CC_TB cells.  Each CC_TB applies the priority rule of Figure 8
and enables exactly one of its three neighbours; the path touches at most
one cell per antidiagonal, which bounds the output to 2T−1 operations.

Total unpipelined delay is (2T−1) · (C_d + P_d) — the difference
recomputation plus the selection propagation (§6.3) — so GMX-TB needs more
stages than GMX-AC for the same clock (6 vs 2 cycles at T = 32 / 1 GHz).
"""

from __future__ import annotations

import math

from .gates import GateBudget, comparator_budget, gmx_delta_budget
from .gmx_ac import CCAC_DELAY_NS, GmxAcModel, SegmentationPlan

#: Per-cell selection delay P_d in GF 22nm, calibrated so that the T = 32
#: traceback meets the paper's 6-cycle latency at 1 GHz: the slowest of six
#: antidiagonal stages spans ⌈63/6⌉ = 11 cells, so 11·(C_d + P_d) ≤ 1 ns.
CCTB_DELAY_NS = 0.059


def cctb_budget() -> GateBudget:
    """Gate budget of one CC_TB cell.

    The priority selector of Figure 8 (eq → M, Δv=+1 → D, Δh=+1 → I,
    else X) is a 4-way one-hot priority encoder gating three neighbour
    enables, plus the 2-bit op drive onto the antidiagonal output bus.
    """
    return (
        GateBudget()
        .add("not", 3)
        .add("and2", 8)
        .add("or2", 3)
        .add("mux2", 2)
    )


class GmxTbModel:
    """Structural and timing model of the GMX-TB unit.

    Args:
        tile_size: T.
        char_bits: character width of the embedded comparators.
        compute_delay_ns: C_d of the difference-recomputation cells.
        select_delay_ns: P_d of the traceback-selection cells.
    """

    def __init__(
        self,
        tile_size: int = 32,
        char_bits: int = 2,
        compute_delay_ns: float = CCAC_DELAY_NS,
        select_delay_ns: float = CCTB_DELAY_NS,
    ):
        if tile_size < 2:
            raise ValueError(f"tile size must be at least 2, got {tile_size}")
        self.tile_size = tile_size
        self.char_bits = char_bits
        self.compute_delay_ns = compute_delay_ns
        self.select_delay_ns = select_delay_ns
        # The embedded difference-recomputation array is a GMX-AC twin.
        self._compute_array = GmxAcModel(
            tile_size=tile_size,
            char_bits=char_bits,
            cell_delay_ns=compute_delay_ns,
        )

    # -- structure -------------------------------------------------------------

    def cell_budget(self) -> GateBudget:
        """One traceback cell: difference recomputation + selection logic."""
        budget = GateBudget()
        budget.merge(gmx_delta_budget(), copies=2)
        budget.merge(comparator_budget(self.char_bits))
        budget.merge(cctb_budget())
        return budget

    @property
    def cell_count(self) -> int:
        """Number of CC_TB cells (T²)."""
        return self.tile_size**2

    def array_budget(self) -> GateBudget:
        """Gate budget of the full traceback array."""
        return GateBudget().merge(self.cell_budget(), copies=self.cell_count)

    @property
    def max_ops_per_traceback(self) -> int:
        """Alignment operations one gmx.tb can emit (one per antidiagonal)."""
        return 2 * self.tile_size - 1

    # -- timing (§6.3) -----------------------------------------------------------

    @property
    def critical_path_ns(self) -> float:
        """Unpipelined delay: (2T−1)·(C_d + P_d)."""
        return (2 * self.tile_size - 1) * (
            self.compute_delay_ns + self.select_delay_ns
        )

    def segment(self, stages: int) -> SegmentationPlan:
        """Antidiagonal segmentation of the combined compute+select pass.

        Following Figure 9.b, each stage first recomputes its difference
        antidiagonals (top-down) and then propagates the selection
        (bottom-up), so a stage over ``g`` antidiagonals costs
        ``g · (C_d + P_d)``.
        """
        if stages < 1:
            raise ValueError(f"stages must be positive, got {stages}")
        diagonals = 2 * self.tile_size - 1
        stages = min(stages, diagonals)
        base = diagonals // stages
        remainder = diagonals % stages
        per_stage = [base + (1 if s < remainder else 0) for s in range(stages)]
        unit = self.compute_delay_ns + self.select_delay_ns
        delays = [count * unit for count in per_stage]
        register_bits = (stages - 1) * 4 * self.tile_size
        return SegmentationPlan(
            stages=stages, stage_delays_ns=delays, register_bits=register_bits
        )

    def stages_for_frequency(self, frequency_ghz: float) -> int:
        """Minimum stage count meeting a target clock."""
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_ghz}")
        period = 1.0 / frequency_ghz
        stages = max(1, math.ceil(self.critical_path_ns / period))
        diagonals = 2 * self.tile_size - 1
        while self.segment(stages).max_stage_delay_ns > period:
            stages += 1
            if stages > diagonals:
                raise ValueError(
                    f"cannot reach {frequency_ghz} GHz even fully pipelined"
                )
        return stages

    def latency_cycles(self, frequency_ghz: float = 1.0) -> int:
        """gmx.tb latency in cycles (multicycle model, §6.3)."""
        return self.stages_for_frequency(frequency_ghz)
