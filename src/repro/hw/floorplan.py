"""Area/power model of the GMX-enhanced SoC (paper §7.3, Figure 13, Table 2).

The paper reports post-place-and-route numbers for the Sargantana-based
RTL-InOrder SoC in GlobalFoundries 22nm FD-SOI at 1 GHz:

* GMX total: 0.0216 mm² (1.7 % of the SoC) and 8.47 mW (2.1 %);
* GMX-AC: 0.008 mm²; GMX-TB: 0.0108 mm²; the remainder
  (0.0028 mm²) is the architectural CSR state and glue;
* per-PE areas of the DSA comparators (Table 2).

We cannot re-run Cadence Genus/Innovus, so this model anchors on those
published constants and scales them structurally: the AC/TB cell arrays
grow quadratically with T, the edge registers linearly with T (the §6.3
scaling argument), and power scales with area at constant activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Paper-reported anchors (GF 22nm, 1 GHz, T = 32).
ANCHOR_TILE_SIZE = 32
GMX_AC_AREA_MM2 = 0.008
GMX_TB_AREA_MM2 = 0.0108
GMX_CSR_AREA_MM2 = 0.0028  # total 0.0216 − AC − TB
GMX_TOTAL_AREA_MM2 = 0.0216
GMX_POWER_MW = 8.47
GMX_AREA_FRACTION = 0.017  # 1.7 % of the SoC
GMX_POWER_FRACTION = 0.021  # 2.1 % of the SoC power

#: Derived SoC totals.
SOC_AREA_MM2 = GMX_TOTAL_AREA_MM2 / GMX_AREA_FRACTION
SOC_POWER_MW = GMX_POWER_MW / GMX_POWER_FRACTION

#: Approximate area split of the remaining SoC (Figure 13 floorplan: the L2
#: macro dominates, then the core, then the L1 arrays and uncore).
SOC_COMPONENT_FRACTIONS: Dict[str, float] = {
    "l2_cache": 0.42,
    "core": 0.26,
    "l1_dcache": 0.09,
    "l1_icache": 0.06,
    "uncore": 0.17,
}

#: Area of a 2-cycle 64-bit integer multiplier — the paper notes each GMX
#: module is comparable to one.
INT_MULTIPLIER_AREA_MM2 = 0.009


@dataclass(frozen=True)
class AreaPowerReport:
    """Area/power breakdown of a GMX-enhanced SoC.

    All areas in mm², power in mW.
    """

    tile_size: int
    gmx_ac_area: float
    gmx_tb_area: float
    gmx_csr_area: float
    soc_other_area: float
    gmx_power: float
    soc_power: float

    @property
    def gmx_area(self) -> float:
        """Total GMX extension area."""
        return self.gmx_ac_area + self.gmx_tb_area + self.gmx_csr_area

    @property
    def soc_area(self) -> float:
        """Total SoC area including GMX."""
        return self.gmx_area + self.soc_other_area

    @property
    def gmx_area_fraction(self) -> float:
        """GMX share of the SoC area."""
        return self.gmx_area / self.soc_area

    @property
    def gmx_power_fraction(self) -> float:
        """GMX share of the SoC power."""
        return self.gmx_power / self.soc_power

    def component_areas(self) -> Dict[str, float]:
        """Named breakdown matching Figure 13's right panel."""
        breakdown = {
            name: fraction * self.soc_other_area
            for name, fraction in SOC_COMPONENT_FRACTIONS.items()
        }
        breakdown["gmx_ac"] = self.gmx_ac_area
        breakdown["gmx_tb"] = self.gmx_tb_area
        breakdown["gmx_csr"] = self.gmx_csr_area
        return breakdown


def gmx_area_mm2(tile_size: int = ANCHOR_TILE_SIZE) -> float:
    """GMX extension area for a given tile size.

    The AC/TB cell arrays scale with T² and the CSR/edge registers with T,
    both anchored at the published T = 32 numbers.
    """
    if tile_size < 2:
        raise ValueError(f"tile size must be at least 2, got {tile_size}")
    quad = (tile_size / ANCHOR_TILE_SIZE) ** 2
    lin = tile_size / ANCHOR_TILE_SIZE
    return (GMX_AC_AREA_MM2 + GMX_TB_AREA_MM2) * quad + GMX_CSR_AREA_MM2 * lin


def gmx_power_mw(tile_size: int = ANCHOR_TILE_SIZE) -> float:
    """GMX extension power, scaled with area at constant activity."""
    return GMX_POWER_MW * gmx_area_mm2(tile_size) / GMX_TOTAL_AREA_MM2


def soc_report(tile_size: int = ANCHOR_TILE_SIZE) -> AreaPowerReport:
    """Full SoC area/power report for a GMX-enhanced RTL-InOrder SoC."""
    quad = (tile_size / ANCHOR_TILE_SIZE) ** 2
    lin = tile_size / ANCHOR_TILE_SIZE
    return AreaPowerReport(
        tile_size=tile_size,
        gmx_ac_area=GMX_AC_AREA_MM2 * quad,
        gmx_tb_area=GMX_TB_AREA_MM2 * quad,
        gmx_csr_area=GMX_CSR_AREA_MM2 * lin,
        soc_other_area=SOC_AREA_MM2 - GMX_TOTAL_AREA_MM2,
        gmx_power=gmx_power_mw(tile_size),
        soc_power=SOC_POWER_MW - GMX_POWER_MW + gmx_power_mw(tile_size),
    )
