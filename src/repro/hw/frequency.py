"""Frequency/segmentation analysis across tile sizes (paper §6.3).

§6.3 argues three scaling laws for GMX's design space:

* compute throughput (DP elements per instruction) grows as T²;
* area grows as T² (cell arrays) plus T (registers);
* latency grows only linearly in T — the pipeline depth needed to sustain
  a target clock is ⌈(2T−1)·C_d / period⌉-ish for GMX-AC and the same with
  (C_d + P_d) for GMX-TB.

:func:`design_point` evaluates one T; :func:`sweep_tile_sizes` reproduces
the whole trade-off table used by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .floorplan import gmx_area_mm2, gmx_power_mw
from .gmx_ac import GmxAcModel
from .gmx_tb import GmxTbModel


@dataclass(frozen=True)
class DesignPoint:
    """One GMX design point in the T / frequency trade-off space."""

    tile_size: int
    frequency_ghz: float
    ac_stages: int
    tb_stages: int
    elements_per_instruction: int
    area_mm2: float
    power_mw: float

    @property
    def peak_gcups(self) -> float:
        """Peak giga cell-updates per second of the GMX unit.

        The pipelined GMX-AC array accepts a new tile every cycle, so peak
        GCUPS = T² · f (1024 GCUPS at T = 32, 1 GHz — Table 2's GMX row).
        """
        return self.elements_per_instruction * self.frequency_ghz

    @property
    def gcups_per_mm2(self) -> float:
        """Area efficiency of the unit."""
        return self.peak_gcups / self.area_mm2


def design_point(
    tile_size: int, frequency_ghz: float = 1.0, char_bits: int = 2
) -> DesignPoint:
    """Evaluate one (T, frequency) design point."""
    ac = GmxAcModel(tile_size=tile_size, char_bits=char_bits)
    tb = GmxTbModel(tile_size=tile_size, char_bits=char_bits)
    return DesignPoint(
        tile_size=tile_size,
        frequency_ghz=frequency_ghz,
        ac_stages=ac.stages_for_frequency(frequency_ghz),
        tb_stages=tb.stages_for_frequency(frequency_ghz),
        elements_per_instruction=tile_size**2,
        area_mm2=gmx_area_mm2(tile_size),
        power_mw=gmx_power_mw(tile_size),
    )


def sweep_tile_sizes(
    tile_sizes: Sequence[int] = (4, 8, 16, 32, 64),
    frequency_ghz: float = 1.0,
) -> List[DesignPoint]:
    """Evaluate the §6.3 trade-off across tile sizes."""
    return [design_point(t, frequency_ghz) for t in tile_sizes]
