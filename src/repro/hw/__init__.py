"""Hardware models of the GMX extensions (paper §6): structure, timing, area."""

from .floorplan import (
    AreaPowerReport,
    GMX_AC_AREA_MM2,
    GMX_POWER_MW,
    GMX_TB_AREA_MM2,
    GMX_TOTAL_AREA_MM2,
    SOC_AREA_MM2,
    SOC_POWER_MW,
    gmx_area_mm2,
    gmx_power_mw,
    soc_report,
)
from .energy import EnergyEstimate, EnergyProfile, estimate_energy
from .frequency import DesignPoint, design_point, sweep_tile_sizes
from .gates import GateBudget, comparator_budget, gmx_delta_budget
from .gmx_ac import CCAC_DELAY_NS, GmxAcModel, SegmentationPlan
from .gmx_tb import CCTB_DELAY_NS, GmxTbModel

__all__ = [
    "AreaPowerReport",
    "CCAC_DELAY_NS",
    "CCTB_DELAY_NS",
    "DesignPoint",
    "EnergyEstimate",
    "EnergyProfile",
    "GMX_AC_AREA_MM2",
    "GMX_POWER_MW",
    "GMX_TB_AREA_MM2",
    "GMX_TOTAL_AREA_MM2",
    "GateBudget",
    "GmxAcModel",
    "GmxTbModel",
    "SOC_AREA_MM2",
    "SOC_POWER_MW",
    "SegmentationPlan",
    "comparator_budget",
    "design_point",
    "estimate_energy",
    "gmx_area_mm2",
    "gmx_delta_budget",
    "gmx_power_mw",
    "soc_report",
    "sweep_tile_sizes",
]
