"""Gate-level primitives for the GMX hardware cost models (paper §6).

The paper's area/delay argument rests on the GMXΔ function being "a reduced
number of gates" (Eq. 3 is 5–6 two-input gates).  This module provides a
small structural-costing vocabulary — gate counts in NAND2 equivalents and
delays in gate levels — used by :mod:`repro.hw.gmx_ac` and
:mod:`repro.hw.gmx_tb` to reproduce the §6.3 critical-path and
segmentation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: NAND2-equivalent area of each gate type (standard-cell folklore values).
GATE_NAND2_EQUIV: Dict[str, float] = {
    "not": 0.5,
    "nand2": 1.0,
    "nor2": 1.0,
    "and2": 1.5,
    "or2": 1.5,
    "xor2": 2.5,
    "xnor2": 2.5,
    "mux2": 3.0,
    "dff": 6.0,  # flip-flop, for segmentation registers
}

#: Propagation delay of each gate type, in unit gate-levels.
GATE_DELAY_LEVELS: Dict[str, float] = {
    "not": 0.5,
    "nand2": 1.0,
    "nor2": 1.0,
    "and2": 1.0,
    "or2": 1.0,
    "xor2": 1.5,
    "xnor2": 1.5,
    "mux2": 1.5,
    "dff": 0.0,
}


class GateError(ValueError):
    """Raised for unknown gate types."""


@dataclass
class GateBudget:
    """Accumulates gate counts for one hardware module.

    Attributes:
        gates: count per gate type.
    """

    gates: Dict[str, int] = field(default_factory=dict)

    def add(self, gate: str, count: int = 1) -> "GateBudget":
        """Add ``count`` instances of a gate type (chainable)."""
        if gate not in GATE_NAND2_EQUIV:
            raise GateError(f"unknown gate type {gate!r}")
        self.gates[gate] = self.gates.get(gate, 0) + count
        return self

    def merge(self, other: "GateBudget", copies: int = 1) -> "GateBudget":
        """Add ``copies`` instances of another module's budget."""
        for gate, count in other.gates.items():
            self.gates[gate] = self.gates.get(gate, 0) + copies * count
        return self

    @property
    def nand2_equivalents(self) -> float:
        """Total area in NAND2 equivalents."""
        return sum(
            GATE_NAND2_EQUIV[gate] * count for gate, count in self.gates.items()
        )

    @property
    def total_gates(self) -> int:
        """Raw gate instance count."""
        return sum(self.gates.values())


def gmx_delta_budget() -> GateBudget:
    """Gate netlist of one GMXΔ module (Eq. 3).

    ``neg = eq | a1``; ``out1 = b0 & neg``;
    ``out0 = b1 | (¬b0 & ¬b1 & ¬neg)`` — the three inverters, one 3-input
    AND (two AND2), one OR each for ``neg`` and ``out0``, one AND for
    ``out1``.
    """
    return (
        GateBudget()
        .add("or2", 2)
        .add("and2", 3)
        .add("not", 3)
    )


def gmx_delta_delay_levels() -> float:
    """Critical-path depth of one GMXΔ module, in gate levels.

    Longest path: input → NOT → AND → AND → OR (the out0 cone).
    """
    return (
        GATE_DELAY_LEVELS["not"]
        + 2 * GATE_DELAY_LEVELS["and2"]
        + GATE_DELAY_LEVELS["or2"]
    )


def comparator_budget(char_bits: int) -> GateBudget:
    """Equality comparator over ``char_bits``-wide characters.

    One XNOR per bit plus an AND-reduction tree — the whole character
    "preprocessing" GMX needs (§4.2: no lookup tables, any alphabet).
    """
    if char_bits < 1:
        raise GateError(f"char_bits must be positive, got {char_bits}")
    budget = GateBudget().add("xnor2", char_bits)
    if char_bits > 1:
        budget.add("and2", char_bits - 1)
    return budget
