"""End-to-end read mapper: seed → filter → GMX-verified alignment (§2.1).

The integration story the paper tells: GMX lives *inside* the CPU
pipeline, so an existing mapper swaps its verification kernel for the
GMX-accelerated one without batching work to a device.  This mapper is
that pipeline in miniature:

1. **seeding** — exact k-mer hits from :class:`~repro.mapper.index.KmerIndex`,
   on both strands;
2. **pre-filtering** — seed votes rank candidate placements; candidates
   with too little support are dropped before any DP runs (the §2.4
   "alignment pre-filtering" use of edit distance);
3. **verification** — an INFIX-mode Full(GMX) alignment of the read
   against a padded reference window, accepting placements within the
   error budget and producing the final CIGAR.

Every accepted mapping carries its validated alignment, reference span,
strand, and an Edlib-style "exact within budget" guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..align import AlignmentMode, FullGmxAligner
from ..align.base import KernelStats
from ..core.alphabet import reverse_complement
from ..core.cigar import Alignment
from .index import KmerIndex


@dataclass(frozen=True)
class Mapping:
    """One accepted read placement.

    Attributes:
        position: reference start of the aligned span.
        end: reference end (exclusive).
        strand: ``+`` or ``-`` (read mapped as given / reverse-complemented).
        score: edit distance of the alignment.
        alignment: the validated alignment of the (oriented) read against
            the covered reference span.
        votes: seed support of the winning candidate.
    """

    position: int
    end: int
    strand: str
    score: int
    alignment: Alignment
    votes: int

    @property
    def cigar(self) -> str:
        """CIGAR of the mapping."""
        return self.alignment.cigar


class ReadMapper:
    """Seed-filter-verify read mapper over one reference sequence.

    Args:
        reference: the reference to map against.
        k: seed k-mer length.
        max_error_rate: error budget as a fraction of the read length.
        min_votes: minimum seed support for a candidate to reach DP.
        max_candidates: candidates verified per read (best-supported first).
        tile_size: GMX tile size used by the verifier.
    """

    def __init__(
        self,
        reference: str,
        *,
        k: int = 16,
        max_error_rate: float = 0.10,
        min_votes: int = 2,
        max_candidates: int = 5,
        tile_size: int = 32,
    ):
        if not 0 < max_error_rate < 1:
            raise ValueError(
                f"max_error_rate must be in (0, 1), got {max_error_rate}"
            )
        if min_votes < 1 or max_candidates < 1:
            raise ValueError("min_votes and max_candidates must be positive")
        self.reference = reference
        self.index = KmerIndex(reference, k=k)
        self.max_error_rate = max_error_rate
        self.min_votes = min_votes
        self.max_candidates = max_candidates
        self._verifier = FullGmxAligner(
            tile_size=tile_size, mode=AlignmentMode.INFIX
        )
        #: Aggregate verification work (for pipeline-level cost analysis).
        self.stats = KernelStats()

    # -- pipeline stages ---------------------------------------------------------

    def _budget(self, read: str) -> int:
        return max(1, round(self.max_error_rate * len(read)))

    def _window(self, read: str, diagonal: int) -> tuple:
        """Reference window around a candidate placement, with indel pad."""
        pad = self._budget(read) + self.index.k
        start = max(0, diagonal - pad)
        end = min(len(self.reference), diagonal + len(read) + pad)
        return start, self.reference[start:end]

    def _verify(
        self, read: str, strand: str, diagonal: int, votes: int
    ) -> Optional[Mapping]:
        start, window = self._window(read, diagonal)
        if len(window) < 1:
            return None
        result = self._verifier.align(read, window)
        self.stats.merge(result.stats)
        if result.score > self._budget(read):
            return None
        return Mapping(
            position=start + result.text_start,
            end=start + result.text_end,
            strand=strand,
            score=result.score,
            alignment=result.alignment,
            votes=votes,
        )

    # -- public API ---------------------------------------------------------------

    def map_read(self, read: str) -> Optional[Mapping]:
        """Map one read; returns the best accepted placement or ``None``.

        Candidates from both strands compete; ties break toward higher
        seed support, then lower reference position.
        """
        if len(read) < self.index.k:
            raise ValueError(
                f"read of {len(read)} bp is shorter than the {self.index.k}-mer seeds"
            )
        best: Optional[Mapping] = None
        for strand, oriented in (("+", read), ("-", reverse_complement(read))):
            candidates = self.index.candidate_diagonals(oriented)
            kept = [
                (diagonal, votes)
                for diagonal, votes in candidates[: self.max_candidates]
                if votes >= self.min_votes
            ]
            for diagonal, votes in kept:
                mapping = self._verify(oriented, strand, diagonal, votes)
                if mapping is None:
                    continue
                if (
                    best is None
                    or mapping.score < best.score
                    or (
                        mapping.score == best.score
                        and mapping.votes > best.votes
                    )
                ):
                    best = mapping
        return best

    def map_all(self, reads: List[str]) -> List[Optional[Mapping]]:
        """Map a batch of reads (one entry per read, ``None`` if unmapped)."""
        return [self.map_read(read) for read in reads]
