"""Window-candidate filtering for the chunked streaming pipeline.

The mapper's :class:`~repro.mapper.index.KmerIndex` indexes the
*reference* — O(reference) memory, exactly what a chromosome-scale
stream cannot afford.  This module inverts the roles: the **query** is
sketched once (sampled k-mers, O(query / stride) memory) and each
reference chunk is scanned against the sketch as it streams past.  A
chunk whose k-mers vote a coherent diagonal is a *candidate window*; the
vote's diagonal predicts which query span the chunk aligns to, so the
expensive aligner only ever sees O(chunk)-sized problems.

This is the seed-location-filtering pre-pass of the compute-in-SRAM
papers applied at chunk granularity: cheap exact-match voting gates the
expensive DP, and chunks with no query support are skipped entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

DNA_ALPHABET = frozenset("ACGT")


@dataclass(frozen=True)
class WindowVote:
    """The diagonal vote of one reference chunk against a query sketch.

    Attributes:
        votes: sampled k-mer hits supporting the winning diagonal bucket.
        diagonal: representative diagonal (reference − query position) of
            the winning bucket.
        total_hits: all sketch hits in the chunk, any diagonal.
    """

    votes: int
    diagonal: int
    total_hits: int


class QuerySketch:
    """Sampled k-mer sketch of the query, probed by streaming chunks.

    Memory is O(len(query) / stride) entries; k-mers containing
    non-ACGT characters are skipped (``N`` runs never vote), and k-mers
    occurring more than ``max_occurrences`` times are dropped as
    repeats — their votes would smear across every diagonal.
    """

    def __init__(
        self,
        query: str,
        *,
        k: int = 16,
        stride: int = 8,
        max_occurrences: int = 64,
    ) -> None:
        if k < 4:
            raise ValueError(f"k must be >= 4, got {k}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if max_occurrences < 1:
            raise ValueError(
                f"max_occurrences must be >= 1, got {max_occurrences}"
            )
        self.query = query
        self.k = k
        self.stride = stride
        self.max_occurrences = max_occurrences
        offsets: Dict[str, List[int]] = {}
        dropped = set()
        for position in range(0, max(0, len(query) - k + 1), stride):
            kmer = query[position:position + k]
            if not DNA_ALPHABET.issuperset(kmer):
                continue
            if kmer in dropped:
                continue
            bucket = offsets.setdefault(kmer, [])
            bucket.append(position)
            if len(bucket) > max_occurrences:
                del offsets[kmer]
                dropped.add(kmer)
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets)

    def lookup(self, kmer: str) -> Tuple[int, ...]:
        """Query offsets at which ``kmer`` was sampled (possibly empty)."""
        return tuple(self._offsets.get(kmer, ()))

    def scan_window(
        self,
        chunk: str,
        chunk_start: int,
        *,
        bucket: int = 32,
    ) -> Optional[WindowVote]:
        """Vote the chunk's k-mers against the sketch.

        Every chunk position is probed (the query side is the sampled
        one, so sampling both sides would miss shared k-mers entirely).
        Votes accumulate per diagonal *bucket* — ``bucket`` absorbs
        indel drift within the chunk — and the winning bucket is the
        one with the most votes, ties broken toward the smallest
        diagonal for determinism.

        Returns ``None`` when no sampled k-mer of the query occurs in
        the chunk.
        """
        if bucket < 1:
            raise ValueError(f"bucket must be >= 1, got {bucket}")
        k = self.k
        offsets = self._offsets
        counts: Dict[int, int] = {}
        total = 0
        for index in range(len(chunk) - k + 1):
            hits = offsets.get(chunk[index:index + k])
            if not hits:
                continue
            reference_position = chunk_start + index
            for query_position in hits:
                diagonal = reference_position - query_position
                counts[diagonal // bucket] = (
                    counts.get(diagonal // bucket, 0) + 1
                )
                total += 1
        if not counts:
            return None
        best_bucket = min(
            counts, key=lambda key: (-counts[key], key)
        )
        return WindowVote(
            votes=counts[best_bucket],
            diagonal=best_bucket * bucket + bucket // 2,
            total_hits=total,
        )
