"""K-mer index — the seeding substrate of a resequencing mapper (§2.1).

A typical resequencing analysis "locates the sequenced reads into a
pre-existing reference genome ... [involving] indexing, seeding,
pre-filtering, and sequence alignment" (§2.1).  This module provides the
indexing/seeding stages; :mod:`repro.mapper.mapper` chains them with
GMX-based verification into the end-to-end pipeline the paper's
extensions are designed to drop into.

The index is a plain hash from each k-mer to its reference positions,
with an optional sampling stride (storing every s-th position, as
production mappers do to bound memory).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class Seed:
    """One exact k-mer match between a read and the reference.

    Attributes:
        read_offset: position of the k-mer in the read.
        reference_position: position of the k-mer in the reference.
    """

    read_offset: int
    reference_position: int

    @property
    def diagonal(self) -> int:
        """Implied read start position (reference − read offset)."""
        return self.reference_position - self.read_offset


class KmerIndex:
    """Exact k-mer index over a reference sequence.

    Args:
        reference: the reference sequence.
        k: k-mer length (larger k = more specific, fewer spurious seeds).
        stride: index every ``stride``-th reference position (memory knob).
    """

    def __init__(self, reference: str, k: int = 16, stride: int = 1):
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if stride < 1:
            raise ValueError(f"stride must be positive, got {stride}")
        if len(reference) < k:
            raise ValueError(
                f"reference of {len(reference)} bp is shorter than k={k}"
            )
        self.reference = reference
        self.k = k
        self.stride = stride
        self._positions: Dict[str, List[int]] = defaultdict(list)
        for position in range(0, len(reference) - k + 1, stride):
            self._positions[reference[position : position + k]].append(position)

    def __len__(self) -> int:
        """Number of distinct indexed k-mers."""
        return len(self._positions)

    def lookup(self, kmer: str) -> List[int]:
        """Reference positions of one k-mer (empty when absent)."""
        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {len(kmer)} chars")
        return self._positions.get(kmer, [])

    def seeds(self, read: str, *, step: int = 1) -> Iterator[Seed]:
        """All exact k-mer matches of a read against the reference.

        Args:
            step: sample the read's k-mers at this interval (1 = all).
        """
        if step < 1:
            raise ValueError(f"step must be positive, got {step}")
        for offset in range(0, max(0, len(read) - self.k + 1), step):
            for position in self.lookup(read[offset : offset + self.k]):
                yield Seed(read_offset=offset, reference_position=position)

    def candidate_diagonals(
        self, read: str, *, step: int = 1, bucket: int = 16
    ) -> List[Tuple[int, int]]:
        """Candidate read placements, best-supported first.

        Seeds vote for their implied placement (the diagonal); nearby
        diagonals are bucketed to tolerate indels.  Returns
        ``(diagonal, votes)`` sorted by decreasing support — the classical
        seed-and-vote pre-filter that hands candidates to alignment.
        """
        votes: Dict[int, int] = defaultdict(int)
        for seed in self.seeds(read, step=step):
            votes[seed.diagonal // bucket] += 1
        ranked = sorted(votes.items(), key=lambda item: (-item[1], item[0]))
        return [(bucket_id * bucket, count) for bucket_id, count in ranked]
