"""A miniature resequencing read mapper built on GMX verification (§2.1).

Demonstrates the paper's integration story: indexing and seeding stay
ordinary software; the alignment kernel — the pipeline's bottleneck — is
the GMX-accelerated INFIX aligner, swapped in without any co-processor
batching.
"""

from .index import KmerIndex, Seed
from .mapper import Mapping, ReadMapper
from .windows import QuerySketch, WindowVote

__all__ = [
    "KmerIndex",
    "Mapping",
    "QuerySketch",
    "ReadMapper",
    "Seed",
    "WindowVote",
]
