"""Serving-path chaos drill: kill a pool worker mid-request.

The serving layer's availability claim is that a lost worker process
costs latency, never correctness: the service detects the missing shard
reply (deadline), rebuilds the pool, re-executes the shard inline, and
the client still receives the byte-identical result.  This drill proves
it end to end:

1. compute the expected results serially (:func:`align_batch`);
2. boot a process-mode service with caching off (every pair must be
   *computed*, not remembered) and a throttled dispatch deadline;
3. submit the full workload, then SIGKILL a deterministically chosen
   pool worker while shards are in flight;
4. gather every future and compare (score, cigar) lists against serial.

Wired to ``repro chaos --serve`` and the chaos-marked test suite.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..align.batch import align_batch
from ..align.full_gmx import FullGmxAligner
from ..workloads.generator import generate_pair_set
from .service import AlignmentService, ServeConfig


class ServeChaosError(RuntimeError):
    """Raised when the chaos drill cannot run (no process pool)."""


@dataclass
class ServeChaosReport:
    """Outcome of one serving chaos drill."""

    ok: bool
    identical: bool
    completed: int
    pairs: int
    killed_pid: Optional[int]
    recoveries: int
    pool_generation: int
    executor: str
    degraded_reason: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "identical": self.identical,
            "completed": self.completed,
            "pairs": self.pairs,
            "killed_pid": self.killed_pid,
            "recoveries": self.recoveries,
            "pool_generation": self.pool_generation,
            "executor": self.executor,
            "degraded_reason": self.degraded_reason,
        }

    def render(self) -> str:
        verdict = "OK" if self.ok else "FAILED"
        lines = [
            f"serve chaos [{verdict}]: {self.completed}/{self.pairs} pairs "
            f"completed, identical={self.identical}",
            f"  executor {self.executor}, killed pid {self.killed_pid}, "
            f"recoveries {self.recoveries}, "
            f"pool generation {self.pool_generation}",
        ]
        if self.degraded_reason:
            lines.append(f"  degraded: {self.degraded_reason}")
        return "\n".join(lines)


def run_serve_chaos(
    *,
    seed: int = 7,
    pairs: int = 32,
    workers: int = 2,
    length: int = 96,
    error_rate: float = 0.08,
    dispatch_timeout: float = 3.0,
    start_method: Optional[str] = None,
) -> ServeChaosReport:
    """Kill a worker under live serving load; verify nothing was lost."""
    pair_set = generate_pair_set(
        "serve-chaos", length, error_rate, pairs, seed=seed
    )
    workload = [(pair.pattern, pair.text) for pair in pair_set]

    aligner = FullGmxAligner()
    expected = align_batch(aligner, workload, traceback=True)
    expected_rows = [(r.score, r.cigar) for r in expected.results]

    config = ServeConfig(
        workers=workers,
        cache_size=0,  # every pair must be computed, not remembered
        coalesce_window=0.001,
        coalesce_max_pairs=4,  # many small shards -> a live backlog to hit
        max_inflight=max(pairs * 2, 64),
        dispatch_timeout=dispatch_timeout,
        request_timeout=max(60.0, dispatch_timeout * pairs),
        start_method=start_method,
    )
    service = AlignmentService(FullGmxAligner(), config=config)
    with service:
        if not service.pool.process_mode:
            # No processes to kill: report the degrade honestly instead of
            # pretending the drill ran.
            rows = [
                (res.score, res.cigar)
                for res in service.align_pairs(workload)
            ]
            identical = rows == expected_rows
            return ServeChaosReport(
                ok=identical,
                identical=identical,
                completed=len(rows),
                pairs=pairs,
                killed_pid=None,
                recoveries=service.shard_recoveries,
                pool_generation=service.pool.generation,
                executor=service.pool.executor,
                degraded_reason=(
                    "no process pool available; ran inline without a kill"
                ),
            )

        futures = [
            service.submit(pattern, text) for pattern, text in workload
        ]

        # Choose the victim deterministically and strike while shards are
        # still in flight.
        pids = service.pool.worker_pids()
        victim = pids[seed % len(pids)] if pids else None
        if victim is not None:
            time.sleep(0.01)  # let the first shards reach the pool
            os.kill(victim, signal.SIGKILL)

        rows: List[Tuple[int, str]] = []
        completed = 0
        for future in futures:
            result = future.result(timeout=config.request_timeout)
            rows.append((result.score, result.cigar))
            completed += 1

    identical = rows == expected_rows
    return ServeChaosReport(
        ok=identical and completed == pairs,
        identical=identical,
        completed=completed,
        pairs=pairs,
        killed_pid=victim,
        recoveries=service.shard_recoveries,
        pool_generation=service.pool.generation,
        executor=service.pool.executor,
    )
