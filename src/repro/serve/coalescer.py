"""Micro-batching coalescer: pack concurrent small requests into shards.

A serving workload arrives as a stream of tiny requests — often a single
pair each — while the pool's efficient unit of work is a shard of many
pairs (amortising pickling and IPC, exactly like
:data:`~repro.align.parallel.DEFAULT_SHARD_SIZE` does for batches).  The
coalescer bridges the two: the first queued request opens a *collection
window* (a few milliseconds), every request arriving inside the window
joins the batch, and the batch is dispatched when it reaches
``max_pairs`` or the window expires — whichever comes first.  A lone
request therefore pays at most the window in added latency, and a burst
of N concurrent requests coalesces into ⌈N / max_pairs⌉ shard dispatches
instead of N.

Requests carry a *group* key (the traceback flag): only requests of the
same group share a shard, because a shard runs under a single traceback
mode.  A group change flushes the current batch and opens a new window.

The coalescer is executor-agnostic — it calls the ``dispatch`` callable
it was built with (the service's shard-dispatch path) and never touches
the pool itself, so its batching semantics are unit-testable with a plain
list-appending dispatcher.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class CoalescerError(RuntimeError):
    """Raised on coalescer lifecycle misuse (submit after close)."""


@dataclass
class PendingPair:
    """One queued alignment request travelling through the coalescer.

    Attributes:
        pattern / text: the pair to align.
        group: shard-compatibility key — requests only coalesce with
            requests of the same group (the service uses the traceback
            flag).
        future: resolved by the service when the pair's result is ready.
        key: content-address of the request (``None`` when caching is
            disabled); the service uses it to fill the cache and release
            coalesced duplicate waiters.
    """

    pattern: str
    text: str
    group: object
    future: Future = field(default_factory=Future)
    key: Optional[str] = None


#: Queue sentinel asking the collection thread to drain and exit.
_STOP = object()


class Coalescer:
    """Holds concurrent requests for a bounded window, dispatches shards.

    Args:
        dispatch: called with each packed batch (a non-empty list of
            :class:`PendingPair` sharing one group), from the coalescer's
            own thread.  An exception from ``dispatch`` fails that batch's
            futures and the coalescer keeps running.
        window_seconds: how long the first request of a batch waits for
            company (0 = dispatch immediately, batching only what is
            already queued).
        max_pairs: dispatch as soon as a batch reaches this many pairs.
    """

    def __init__(
        self,
        dispatch: Callable[[List[PendingPair]], None],
        *,
        window_seconds: float = 0.002,
        max_pairs: int = 16,
    ) -> None:
        if window_seconds < 0:
            raise CoalescerError(
                f"window must be >= 0 seconds, got {window_seconds}"
            )
        if max_pairs < 1:
            raise CoalescerError(f"max_pairs must be >= 1, got {max_pairs}")
        self.window_seconds = window_seconds
        self.max_pairs = max_pairs
        self._dispatch = dispatch
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._lock = threading.Lock()
        # Telemetry (read by /metrics; written only by the collector thread
        # except pairs_in, which submit() bumps under the lock).
        self.batches = 0
        self.pairs_in = 0
        self.pairs_out = 0
        self.max_batch = 0

    def start(self) -> "Coalescer":
        """Start the collection thread (idempotent)."""
        with self._lock:
            if self._closed:
                raise CoalescerError("coalescer is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-coalescer", daemon=True
                )
                self._thread.start()
        return self

    def submit(self, entry: PendingPair) -> None:
        """Queue one request for coalescing (raises after close)."""
        with self._lock:
            if self._closed:
                raise CoalescerError("coalescer is closed")
            self.pairs_in += 1
        self._queue.put(entry)

    @property
    def backlog(self) -> int:
        """Approximate requests queued but not yet packed into a batch."""
        return self._queue.qsize()

    @property
    def mean_batch(self) -> float:
        """Mean pairs per dispatched batch (0.0 before the first batch)."""
        return self.pairs_out / self.batches if self.batches else 0.0

    def close(self) -> None:
        """Flush queued requests, stop the thread, reject new submits."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        self._queue.put(_STOP)
        if thread is not None:
            thread.join()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._drain_remaining()
                return
            if not self._collect_and_flush(item):
                self._drain_remaining()
                return

    def _collect_and_flush(self, first: PendingPair) -> bool:
        """Grow a batch from ``first``; returns False when _STOP arrived."""
        batch = [first]
        deadline = time.monotonic() + self.window_seconds
        keep_running = True
        while len(batch) < self.max_pairs:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                keep_running = False
                break
            if item.group != batch[0].group:
                # Incompatible request: flush what we have, start over.
                self._flush(batch)
                batch = [item]
                deadline = time.monotonic() + self.window_seconds
                continue
            batch.append(item)
        self._flush(batch)
        return keep_running

    def _drain_remaining(self) -> None:
        """Flush anything still queued at shutdown (single-pair batches)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            self._flush([item])

    def _flush(self, batch: List[PendingPair]) -> None:
        if not batch:
            return
        self.batches += 1
        self.pairs_out += len(batch)
        self.max_batch = max(self.max_batch, len(batch))
        try:
            self._dispatch(batch)
        except Exception as exc:  # noqa: BLE001 - routed to the futures
            for entry in batch:
                if not entry.future.done():
                    entry.future.set_exception(exc)
