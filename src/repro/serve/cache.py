"""Content-addressed LRU cache for alignment results.

Identical alignment requests are pure recomputation: the same (pattern,
text) pair through the same kernel with the same parameters always
produces the same score, CIGAR, and :class:`~repro.align.base.KernelStats`
— the byte-identity guarantee the conformance suites prove.  The serving
layer therefore keys a bounded LRU on the **content address** of a
request — the SHA-256 of (pattern, text, aligner fingerprint, traceback
flag) — and answers repeats from memory, the Scrooge-style work avoidance
that turns hot pairs into O(1) lookups.

Properties the cache guarantees:

* **Exactness** — a hit returns the same score/CIGAR/stats a cold miss
  computes, down to the stats Counter (entries are immutable; callers get
  stat *copies*, so no consumer can corrupt a cached record).
* **Deterministic eviction** — strict LRU over an ``OrderedDict``: the
  least recently *used* (hit or stored) key is evicted first, so a replayed
  request sequence evicts in exactly the same order.
* **Thread safety** — one lock around every operation; the HTTP layer
  hits the cache from many handler threads.

Hit/miss/eviction counters feed the ``/metrics`` endpoint.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..align.base import Aligner, AlignmentResult, KernelStats


class CacheError(ValueError):
    """Raised on cache API misuse (negative capacity, bad key material)."""


def aligner_fingerprint(aligner: Aligner) -> str:
    """Stable identity of an aligner configuration for cache keys.

    Two aligners with the same fingerprint are interchangeable for
    caching: same class, same scalar configuration (tile size, mode,
    fusion, windows…), same kernel backend.  The fingerprint folds in the
    class name, every scalar/enum instance attribute (sorted by name),
    and the backend name — complex attributes (the backend object itself,
    caches) are identified by their ``name`` or skipped, so the
    fingerprint never depends on object identity.
    """
    parts: List[str] = [type(aligner).__name__]
    for key in sorted(vars(aligner)):
        value = vars(aligner)[key]
        if isinstance(value, (bool, int, str)) or value is None:
            parts.append(f"{key}={value!r}")
        elif hasattr(value, "value") and not callable(value):
            # Enum-like (AlignmentMode): identified by its value.
            parts.append(f"{key}={getattr(value, 'value')!r}")
        elif hasattr(value, "name") and isinstance(
            getattr(value, "name"), str
        ):
            # Backend-like: identified by its registered name.
            parts.append(f"{key}={getattr(value, 'name')!r}")
    return "|".join(parts)


def pair_key(
    pattern: str,
    text: str,
    *,
    fingerprint: str,
    traceback: bool = True,
) -> str:
    """SHA-256 content address of one alignment request.

    The preimage concatenates the aligner fingerprint, the traceback
    mode, and both sequences with an unambiguous separator (``\\x1f``
    cannot occur in sequence alphabets), so distinct requests can never
    collide structurally — only cryptographically.
    """
    preimage = "\x1f".join(
        (fingerprint, "tb" if traceback else "dist", pattern, text)
    )
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CachedAlignment:
    """Immutable cached outcome of one alignment request.

    Holds exactly what the serving layer returns: the functional result
    (score, CIGAR, span) plus the kernel's dynamic stats.  The embedded
    :class:`KernelStats` must never be handed out mutable — use
    :meth:`stats_copy`.
    """

    score: int
    cigar: str
    exact: bool
    text_start: int
    text_end: Optional[int]
    stats: KernelStats

    @classmethod
    def from_result(cls, result: AlignmentResult) -> "CachedAlignment":
        return cls(
            score=result.score,
            cigar=result.cigar,
            exact=result.exact,
            text_start=result.text_start,
            text_end=result.text_end,
            stats=result.stats.copy(),
        )

    def stats_copy(self) -> KernelStats:
        """An independent copy of the cached stats (safe to merge/mutate)."""
        return self.stats.copy()


class AlignmentCache:
    """Bounded, thread-safe, content-addressed LRU of alignment results.

    ``capacity=0`` disables the cache entirely (every lookup misses and
    nothing is stored) — the configuration knob for cache-off serving.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise CacheError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedAlignment]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: str) -> Optional[CachedAlignment]:
        """The cached entry for ``key`` (marking it most-recently-used).

        Counts a hit or a miss; a disabled cache (capacity 0) always
        misses.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: str, entry: CachedAlignment) -> None:
        """Insert (or refresh) ``key``; evicts strict-LRU past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def keys(self) -> List[str]:
        """Keys in LRU order (least recently used first) — test hook."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """JSON-ready gauge block for ``/metrics``."""
        with self._lock:
            size = len(self._entries)
        return {
            "capacity": self.capacity,
            "size": size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }
