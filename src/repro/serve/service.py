"""Alignment-as-a-service core: warm pool, coalescing, cache, admission.

:class:`AlignmentService` is the transport-independent heart of
``repro serve`` — the HTTP layer (:mod:`repro.serve.http`) is a thin JSON
facade over it, and tests/benchmarks drive it directly.  One service owns:

* a **warm** :class:`~repro.align.parallel.WorkerPool`, created once at
  startup and reused across every request — no per-request pool spin-up
  (the latency win ``repro bench serve`` measures);
* a :class:`~repro.serve.coalescer.Coalescer` that packs concurrent small
  requests into shards before dispatch;
* a content-addressed :class:`~repro.serve.cache.AlignmentCache` answering
  repeated pairs without recomputation, plus **in-flight deduplication**:
  a request identical to one already being computed attaches to the same
  computation instead of dispatching again;
* **admission control** — at most ``max_inflight`` pairs queued or
  executing; past that, :meth:`submit` raises
  :class:`ServiceSaturatedError` carrying a ``retry_after`` hint (the
  HTTP layer turns it into ``429`` + ``Retry-After``), so load sheds
  instead of queueing unboundedly;
* **crash recovery** — a shard whose reply misses its dispatch deadline
  (the observable symptom of a killed worker: the pool replaces the
  process but the reply never arrives) triggers a pool rebuild and an
  inline re-execution of the shard, so the request still completes with
  correct output.

Results are **byte-identical to serial** :func:`~repro.align.batch.align_batch`
— same scores, CIGARs, and per-pair :class:`~repro.align.base.KernelStats`
— whether they came from a cold compute, a coalesced shard, the cache, or
the crash-recovery path.  Observability (:mod:`repro.obs`) is armed at
startup; worker span/metric buffers are absorbed on every shard
completion, so pooled request traces survive into ``/metrics`` and trace
exports.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..align.base import Aligner, KernelStats
from ..align.full_gmx import FullGmxAligner
from ..align.parallel import (
    WorkerPool,
    _absorb_obs_buffers,
    _align_shard,
    _pickling_failure,
)
from ..obs import runtime as obs
from .cache import (
    AlignmentCache,
    CachedAlignment,
    aligner_fingerprint,
    pair_key,
)
from .coalescer import Coalescer, PendingPair


class ServeError(RuntimeError):
    """Root of the serving layer's error hierarchy."""


class ServiceSaturatedError(ServeError):
    """Admission control rejected a request: too many pairs in flight.

    Attributes:
        retry_after: seconds after which the client should retry (the
            HTTP layer's ``Retry-After`` header).
    """

    def __init__(self, inflight: int, limit: int, retry_after: float) -> None:
        super().__init__(
            f"service saturated: {inflight} pairs in flight "
            f"(limit {limit}); retry after {retry_after:.2f}s"
        )
        self.retry_after = retry_after


class ServiceClosedError(ServeError):
    """The service is not accepting requests (not started, or closed)."""


class _WorkerLost(Exception):
    """Internal: a dispatched shard's worker was verified dead."""


def _serve_shard(payload):
    """Worker body of the server's shard dispatch path.

    Module-level so it pickles under every multiprocessing start method;
    delegates to the batch engine's shard runner so server shards execute
    exactly the code the conformance/chaos suites prove deterministic.
    Registered as a dsan worker-reachability root (see
    :data:`repro.analysis.sanitizer.reachability.DEFAULT_ROOTS`).
    """
    return _align_shard(payload)


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one served alignment request.

    Functionally identical to the matching
    :class:`~repro.align.base.AlignmentResult` fields, plus provenance:
    ``cached`` is True when the answer came from the result cache or from
    attaching to an identical in-flight computation (no new kernel work
    was done for this request).
    """

    score: int
    cigar: str
    exact: bool
    text_start: int
    text_end: Optional[int]
    stats: KernelStats
    cached: bool = False

    def to_dict(self) -> dict:
        """JSON-ready form (the ``/align`` response row)."""
        return {
            "score": self.score,
            "cigar": self.cigar,
            "exact": self.exact,
            "text_start": self.text_start,
            "text_end": self.text_end,
            "cached": self.cached,
        }


@dataclass
class ServeConfig:
    """Tuning knobs of one :class:`AlignmentService`.

    Attributes:
        workers: worker processes in the warm pool (1 = inline execution,
            the portable fallback).
        coalesce_window: seconds the first request of a batch waits for
            company before dispatch (the micro-batching window).
        coalesce_max_pairs: dispatch a batch as soon as it holds this many
            pairs (also the server's shard size).
        cache_size: result-cache capacity in entries (0 disables caching).
        max_inflight: admission limit — pairs queued or executing; beyond
            it, submissions are rejected with 429/``Retry-After``.
        dispatch_timeout: seconds a dispatched shard may run before the
            service declares its worker lost, rebuilds the pool, and
            re-executes the shard inline.
        request_timeout: seconds a blocking helper waits for one request.
        retry_after: the ``Retry-After`` hint handed to rejected clients.
        rate_limit_rps: per-client token-bucket refill rate in pairs per
            second (0 disables rate limiting).
        rate_limit_burst: per-client bucket capacity in pairs (0 means
            ``max(coalesce_max_pairs, rate_limit_rps)``).
        start_method: multiprocessing start method override (testing hook).
    """

    workers: int = 1
    coalesce_window: float = 0.002
    coalesce_max_pairs: int = 16
    cache_size: int = 4096
    max_inflight: int = 256
    dispatch_timeout: float = 30.0
    request_timeout: float = 60.0
    retry_after: float = 0.25
    rate_limit_rps: float = 0.0
    rate_limit_burst: float = 0.0
    start_method: Optional[str] = None


#: Collector-queue sentinel (shutdown).
_STOP = object()


@dataclass
class _InFlightShard:
    """One dispatched shard awaiting collection.

    ``worker_pids`` snapshots the pool's processes at dispatch time so the
    collector can tell a crashed worker (a pid vanished — the pool replaces
    it and the reply is lost forever) from a healthy shard still queued
    behind others when its deadline expires.
    """

    handle: object
    batch: List[PendingPair]
    payload: tuple
    deadline: float
    worker_pids: Tuple[int, ...] = ()
    generation: int = 0


class AlignmentService:
    """Long-lived alignment service: submit pairs, receive futures.

    Use as a context manager, or call :meth:`start` / :meth:`close`
    explicitly::

        with AlignmentService(FullGmxAligner(), config=ServeConfig(workers=4)) as svc:
            result = svc.align_pair("ACGT", "ACGA")
    """

    def __init__(
        self,
        aligner: Optional[Aligner] = None,
        *,
        config: Optional[ServeConfig] = None,
    ) -> None:
        self.aligner = aligner if aligner is not None else FullGmxAligner()
        self.config = config if config is not None else ServeConfig()
        if self.config.max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {self.config.max_inflight}"
            )
        self.fallback_reason: Optional[str] = None
        workers = self.config.workers
        if workers > 1:
            failure = _pickling_failure(self.aligner)
            if failure is not None:
                # The aligner cannot cross the process boundary; serve
                # inline rather than fail every request at dispatch.
                self.fallback_reason = failure
                workers = 1
        self.pool = WorkerPool(
            workers, start_method=self.config.start_method
        )
        self.cache = AlignmentCache(self.config.cache_size)
        # Imported here, not at module top: ratelimit derives its error
        # from ServeError, so the modules would import-cycle otherwise.
        from .ratelimit import RateLimiter

        self.rate_limiter: Optional[RateLimiter] = None
        if self.config.rate_limit_rps > 0:
            burst = self.config.rate_limit_burst or max(
                float(self.config.coalesce_max_pairs),
                self.config.rate_limit_rps,
            )
            self.rate_limiter = RateLimiter(
                self.config.rate_limit_rps, burst
            )
        self._fingerprint = aligner_fingerprint(self.aligner)
        self.coalescer = Coalescer(
            self._dispatch,
            window_seconds=self.config.coalesce_window,
            max_pairs=self.config.coalesce_max_pairs,
        )
        self._collect_queue: "queue.Queue" = queue.Queue()
        self._collector: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._inflight_pairs = 0
        self._pending: Dict[str, List[Future]] = {}
        self._owns_obs = False
        self._started = False
        self._closed = False
        self._started_at = 0.0
        # Request accounting (all under self._lock).
        self.pairs_total = 0
        self.pairs_cached = 0
        self.pairs_deduped = 0
        self.pairs_computed = 0
        self.pairs_rejected = 0
        self.pairs_failed = 0
        self.shard_recoveries = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AlignmentService":
        """Warm the pool, arm observability, start the worker threads."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        if self._started:
            return self
        if not obs.enabled():
            obs.enable()
            self._owns_obs = True
        self.pool.start()  # pay pool spin-up once, here, not per request
        self.coalescer.start()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-serve-collector",
            daemon=True,
        )
        self._collector.start()
        self._started = True
        self._started_at = time.monotonic()
        obs.inc("serve.started")
        return self

    def close(self) -> None:
        """Drain in-flight work, stop threads, shut the pool down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._started:
            # Order matters: the coalescer flushes its queue into the
            # collector queue, then the collector drains every in-flight
            # shard before seeing the sentinel (FIFO), then the pool dies.
            self.coalescer.close()
            self._collect_queue.put(_STOP)
            if self._collector is not None:
                self._collector.join()
        self.pool.close()
        if self._owns_obs:
            obs.disable()
            self._owns_obs = False

    def __enter__(self) -> "AlignmentService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def uptime_seconds(self) -> float:
        if not self._started:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def inflight_pairs(self) -> int:
        with self._lock:
            return self._inflight_pairs

    # -- request path ----------------------------------------------------

    def submit(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> "Future[ServeResult]":
        """Submit one pair; returns a future resolving to a ServeResult.

        Raises:
            ServiceClosedError: the service is not running.
            ServiceSaturatedError: admission control rejected the pair.
            ServeError: the pair is malformed.
        """
        if not self._started or self._closed:
            raise ServiceClosedError("service is not accepting requests")
        if not isinstance(pattern, str) or not isinstance(text, str):
            raise ServeError(
                f"pattern/text must be strings, got "
                f"{type(pattern).__name__}/{type(text).__name__}"
            )
        if not pattern or not text:
            # Reject here (400 at the HTTP layer) instead of letting the
            # aligner raise inside a shard, which would fail the whole
            # coalesced batch — including other clients' pairs.
            raise ServeError("pattern and text must be non-empty")
        future: "Future[ServeResult]" = Future()
        key: Optional[str] = None
        if self.cache.capacity:
            key = pair_key(
                pattern, text,
                fingerprint=self._fingerprint, traceback=traceback,
            )
            entry = self.cache.lookup(key)
            if entry is not None:
                with self._lock:
                    self.pairs_total += 1
                    self.pairs_cached += 1
                obs.inc("serve.pairs")
                obs.inc("serve.cache.hits")
                future.set_result(self._from_cached(entry, cached=True))
                return future
            obs.inc("serve.cache.misses")
        with self._lock:
            self.pairs_total += 1
            if key is not None and key in self._pending:
                # Identical pair already in flight: attach, don't recompute.
                self._pending[key].append(future)
                self.pairs_deduped += 1
                obs.inc("serve.pairs")
                obs.inc("serve.coalesce.deduped")
                return future
            if self._inflight_pairs + 1 > self.config.max_inflight:
                self.pairs_rejected += 1
                obs.inc("serve.pairs")
                obs.inc("serve.rejected")
                raise ServiceSaturatedError(
                    self._inflight_pairs,
                    self.config.max_inflight,
                    self.config.retry_after,
                )
            self._inflight_pairs += 1
            if key is not None:
                self._pending[key] = []
            obs.inc("serve.pairs")
            obs.observe("serve.queue.inflight_pairs", self._inflight_pairs)
        entry = PendingPair(
            pattern=pattern, text=text, group=traceback,
            future=future, key=key,
        )
        try:
            self.coalescer.submit(entry)
        except Exception as exc:  # noqa: BLE001 - close() race
            # Roll the admission slot back: leaving it incremented (and the
            # pending record registered) would leak the slot and hang later
            # identical submits on a list that never resolves.
            error = ServiceClosedError("service is shutting down")
            with self._lock:
                self._inflight_pairs -= 1
                waiters = (
                    self._pending.pop(key, []) if key is not None else []
                )
            for waiter in waiters:
                self._reject(waiter, error)
            raise error from exc
        return future

    def align_pair(
        self,
        pattern: str,
        text: str,
        *,
        traceback: bool = True,
        timeout: Optional[float] = None,
    ) -> ServeResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        future = self.submit(pattern, text, traceback=traceback)
        return future.result(
            timeout if timeout is not None else self.config.request_timeout
        )

    def align_pairs(
        self,
        pairs: Iterable[Tuple[str, str]],
        *,
        traceback: bool = True,
        timeout: Optional[float] = None,
    ) -> List[ServeResult]:
        """Submit many pairs, wait for all; results in input order.

        Raises :class:`ServiceSaturatedError` if any submission is
        rejected (already-submitted pairs still complete and warm the
        cache).
        """
        futures = [
            self.submit(pattern, text, traceback=traceback)
            for pattern, text in pairs
        ]
        deadline = (
            timeout if timeout is not None else self.config.request_timeout
        )
        return [future.result(deadline) for future in futures]

    # -- dispatch / collection ------------------------------------------

    def _dispatch(self, batch: List[PendingPair]) -> None:
        """Coalescer callback: ship one packed batch to the pool."""
        shard = [(entry.pattern, entry.text) for entry in batch]
        traceback = bool(batch[0].group)
        payload = (self.aligner, shard, traceback, False, obs.enabled())
        obs.inc("serve.batches")
        obs.observe("serve.coalesce.batch_pairs", len(batch))
        try:
            handle = self.pool.submit(_serve_shard, payload)
        except Exception:  # noqa: BLE001 - degrade to inline execution
            from ..align.parallel import _InlineHandle

            handle = _InlineHandle(_serve_shard, payload)
        self._collect_queue.put(
            _InFlightShard(
                handle=handle,
                batch=batch,
                payload=payload,
                deadline=time.monotonic() + self.config.dispatch_timeout,
                worker_pids=tuple(self.pool.worker_pids()),
                generation=self.pool.generation,
            )
        )

    def _collect_loop(self) -> None:
        while True:
            item = self._collect_queue.get()
            if item is _STOP:
                return
            try:
                self._collect_one(item)
            except Exception as exc:  # noqa: BLE001 - collector must survive
                # A dead collector strands every in-flight and future
                # request (admission never drains, wedging the service at
                # permanent 429): fail this shard's batch and keep going.
                obs.inc("serve.collector.errors")
                try:
                    self._fail(item.batch, exc)
                except Exception:  # noqa: BLE001 - last-ditch guard
                    pass

    def _collect_one(self, shard: _InFlightShard) -> None:
        start = time.perf_counter()
        try:
            outcome = self._await_shard(shard)
        except _WorkerLost:
            outcome = self._recover(shard)
            if outcome is None:
                return
        except Exception as exc:  # noqa: BLE001 - application error
            # The reply arrived promptly and was an exception: the shard
            # *ran* and raised — an application error, not a lost worker.
            # Fail only this batch; the pool is healthy and rebuilding it
            # would abandon every other in-flight shard.
            self._fail(shard.batch, exc)
            return
        results, _stats, _seconds, _worker, buffers = outcome
        _absorb_obs_buffers(buffers)
        obs.observe_ns(
            "serve.shard.collect_ns",
            int((time.perf_counter() - start) * 1e9),
        )
        self._complete(shard.batch, results)

    def _await_shard(self, shard: _InFlightShard):
        """Wait for a shard's reply; raise :class:`_WorkerLost` on loss.

        A missed deadline alone is not proof of a dead worker: the
        collector drains shards serially, so under load a healthy shard
        can still be queued in the pool when its dispatch-relative
        deadline expires.  Before declaring the pool lost (a disruptive
        call — rebuild abandons every other in-flight shard), verify the
        symptom: the reply is absent *and* a worker from the dispatch-time
        pid snapshot is gone (the pool replaces crashed processes, so a
        changed pid set means a task may have died with its worker).
        While the original workers all remain alive the shard is merely
        queued, and it is granted another full deadline.
        """
        if not self.pool.process_mode:
            return shard.handle.get()
        while True:
            if self.pool.generation != shard.generation:
                # The pool this shard was dispatched to was rebuilt while
                # the shard waited in the collect queue; unless the reply
                # already landed, it never will — skip the deadline wait.
                if shard.handle.ready():
                    return shard.handle.get(timeout=0)
                raise _WorkerLost() from None
            try:
                return shard.handle.get(
                    timeout=max(0.0, shard.deadline - time.monotonic())
                )
            except (multiprocessing.TimeoutError, TimeoutError):
                if shard.handle.ready():
                    # The reply landed just as the deadline fired.
                    return shard.handle.get(timeout=0)
                alive = set(self.pool.worker_pids())
                if not alive or not set(shard.worker_pids) <= alive:
                    raise _WorkerLost() from None
                shard.deadline = (
                    time.monotonic() + self.config.dispatch_timeout
                )

    def _recover(self, shard: _InFlightShard):
        """Crash path: rebuild the pool, re-run the shard inline.

        A missing reply means the executing worker died (or the pool
        broke): the request must still complete, so the shard re-executes
        in this thread — same payload, same deterministic kernel — while
        a fresh pool is built for subsequent traffic.  Returns the shard
        outcome, or ``None`` after failing the batch's futures.
        """
        with self._lock:
            self.shard_recoveries += 1
        obs.inc("serve.pool.rebuilds")
        try:
            self.pool.rebuild()
        except Exception:  # noqa: BLE001 - a dead pool must not kill requests
            pass
        try:
            return _serve_shard(shard.payload)
        except Exception as exc:  # noqa: BLE001 - routed to the futures
            self._fail(shard.batch, exc)
            return None

    def _complete(self, batch: List[PendingPair], results: Sequence) -> None:
        for entry, result in zip(batch, results):
            cached_entry = CachedAlignment.from_result(result)
            if entry.key is not None:
                # Store before releasing the pending record: a concurrent
                # identical submit then either hits the cache or attaches
                # to the still-pending entry — never recomputes.
                self.cache.store(entry.key, cached_entry)
            with self._lock:
                self._inflight_pairs -= 1
                self.pairs_computed += 1
                waiters = (
                    self._pending.pop(entry.key, [])
                    if entry.key is not None
                    else []
                )
                obs.observe(
                    "serve.queue.inflight_pairs", self._inflight_pairs
                )
            self._resolve(entry.future, self._from_cached(cached_entry))
            for waiter in waiters:
                # Attached duplicates did no kernel work of their own.
                self._resolve(
                    waiter, self._from_cached(cached_entry, cached=True)
                )

    def _fail(self, batch: List[PendingPair], exc: Exception) -> None:
        for entry in batch:
            with self._lock:
                self._inflight_pairs -= 1
                self.pairs_failed += 1
                waiters = (
                    self._pending.pop(entry.key, [])
                    if entry.key is not None
                    else []
                )
            self._reject(entry.future, exc)
            for waiter in waiters:
                self._reject(waiter, exc)
        obs.inc("serve.failed", len(batch))

    @staticmethod
    def _resolve(future: "Future[ServeResult]", result: ServeResult) -> None:
        """``set_result`` tolerant of a concurrent client-side cancel.

        A client that cancels its future between the ``done()`` check and
        the set would otherwise raise :class:`InvalidStateError` out of
        the collector thread and kill it.
        """
        if future.done():
            return
        try:
            future.set_result(result)
        except InvalidStateError:
            pass

    @staticmethod
    def _reject(future: Future, exc: Exception) -> None:
        if future.done():
            return
        try:
            future.set_exception(exc)
        except InvalidStateError:
            pass

    @staticmethod
    def _from_cached(
        entry: CachedAlignment, *, cached: bool = False
    ) -> ServeResult:
        return ServeResult(
            score=entry.score,
            cigar=entry.cigar,
            exact=entry.exact,
            text_start=entry.text_start,
            text_end=entry.text_end,
            stats=entry.stats_copy(),
            cached=cached,
        )

    # -- introspection ---------------------------------------------------

    def health(self) -> dict:
        """Liveness/readiness payload for ``GET /health``."""
        status = "ok" if self._started and not self._closed else "stopped"
        return {
            "status": status,
            "uptime_seconds": round(self.uptime_seconds, 3),
            "workers": self.pool.workers,
            "executor": self.pool.executor,
            "pool_generation": self.pool.generation,
            "inflight_pairs": self.inflight_pairs,
        }

    def metrics_snapshot(self) -> dict:
        """Full metrics payload for ``GET /metrics``.

        Combines the live :mod:`repro.obs` metrics registry snapshot with
        the serving layer's own gauges: cache, queue/admission, pool, and
        request accounting.
        """
        registry = obs.metrics()
        metrics = registry.snapshot().to_dict() if registry else {}
        with self._lock:
            requests = {
                "pairs": self.pairs_total,
                "computed": self.pairs_computed,
                "cached": self.pairs_cached,
                "deduped": self.pairs_deduped,
                "rejected": self.pairs_rejected,
                "failed": self.pairs_failed,
            }
            inflight = self._inflight_pairs
        return {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "metrics": metrics,
            "cache": self.cache.snapshot(),
            "queue": {
                "inflight_pairs": inflight,
                "max_inflight": self.config.max_inflight,
                "coalescer_backlog": self.coalescer.backlog,
            },
            "coalescing": {
                "batches": self.coalescer.batches,
                "pairs": self.coalescer.pairs_out,
                "mean_batch": round(self.coalescer.mean_batch, 3),
                "max_batch": self.coalescer.max_batch,
                "window_seconds": self.config.coalesce_window,
                "max_pairs": self.config.coalesce_max_pairs,
            },
            "pool": {
                "workers": self.pool.workers,
                "executor": self.pool.executor,
                "generation": self.pool.generation,
                "rebuilds": self.pool.rebuilds,
                "recoveries": self.shard_recoveries,
                "fallback_reason": self.fallback_reason,
            },
            "requests": requests,
            "rate_limit": (
                self.rate_limiter.snapshot()
                if self.rate_limiter is not None
                else {"rate_per_second": 0.0}
            ),
        }
