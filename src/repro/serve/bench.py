"""Load generator + latency benchmark for the alignment service.

``run_serve_bench`` boots a real service behind a real
:class:`~repro.serve.http.AlignmentHTTPServer` on an ephemeral port,
fires a seeded mixed hit/miss request schedule at it from concurrent
client threads over plain :mod:`http.client` connections, and reports:

* end-to-end request latency percentiles (p50/p99/mean/max) and
  sustained throughput (requests/s and pairs/s);
* the cache hit rate the schedule actually achieved (the schedule draws
  pairs from a bounded unique pool, so repeats are guaranteed);
* the **warm-vs-cold** pool comparison the serving story is built on:
  the p50 of a single 150 bp pair through the warm resident pool versus
  the p50 of spinning a fresh worker pool per request (create → dispatch
  → collect → tear down).  The cold pool uses ``spawn`` — a pool created
  per request lives inside a multi-threaded server where forking is
  unsafe, so the naive design pays interpreter+import start every
  request, which is precisely the cost a startup-time warm pool
  amortises (see :func:`_cold_start_method`).

The CLI (``repro bench serve``) and the gated benchmark
(``benchmarks/test_serve_latency.py``) both call this module; the
benchmark wraps the report in the repo's BENCH snapshot-identity
pattern and writes ``BENCH_serve.json``.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..align.parallel import WorkerPool
from ..common.retry import RetryPolicy
from ..workloads.generator import generate_pair_set
from .http import running_server
from .service import AlignmentService, ServeConfig, _serve_shard


def percentile(samples: List[int], fraction: float) -> int:
    """Nearest-rank percentile of integer samples (ns)."""
    if not samples:
        return 0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ServeBenchReport:
    """Everything one benchmark run measured (JSON-ready via to_dict)."""

    requests: int
    clients: int
    unique_pairs: int
    errors: int
    wall_seconds: float
    latencies_ns: List[int] = field(repr=False)
    cache: Dict[str, object] = field(default_factory=dict)
    pool: Dict[str, object] = field(default_factory=dict)
    requests_accounting: Dict[str, object] = field(default_factory=dict)
    warm_p50_ns: Optional[int] = None
    cold_p50_ns: Optional[int] = None
    leaked_workers: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def warm_speedup(self) -> Optional[float]:
        """Cold per-request pool spin-up p50 / warm resident-pool p50."""
        if not self.warm_p50_ns or not self.cold_p50_ns:
            return None
        return self.cold_p50_ns / self.warm_p50_ns

    def to_dict(self) -> dict:
        latency = {
            "p50_ms": round(percentile(self.latencies_ns, 0.50) / 1e6, 3),
            "p99_ms": round(percentile(self.latencies_ns, 0.99) / 1e6, 3),
            "mean_ms": round(
                (sum(self.latencies_ns) / len(self.latencies_ns)) / 1e6, 3
            )
            if self.latencies_ns
            else 0.0,
            "max_ms": round(max(self.latencies_ns) / 1e6, 3)
            if self.latencies_ns
            else 0.0,
        }
        warm = {
            "warm_p50_ms": round(self.warm_p50_ns / 1e6, 3)
            if self.warm_p50_ns
            else None,
            "cold_p50_ms": round(self.cold_p50_ns / 1e6, 3)
            if self.cold_p50_ns
            else None,
            "speedup": round(self.warm_speedup, 2)
            if self.warm_speedup
            else None,
        }
        return {
            "requests": self.requests,
            "clients": self.clients,
            "unique_pairs": self.unique_pairs,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency": latency,
            "warm_vs_cold": warm,
            "cache": self.cache,
            "pool": self.pool,
            "requests_accounting": self.requests_accounting,
            "leaked_workers": self.leaked_workers,
        }

    def render(self) -> str:
        data = self.to_dict()
        lines = [
            "serve bench: "
            f"{self.requests} requests / {self.clients} clients / "
            f"{self.unique_pairs} unique pairs",
            f"  throughput   {data['throughput_rps']:.1f} req/s "
            f"({self.errors} errors)",
            f"  latency      p50 {data['latency']['p50_ms']} ms, "
            f"p99 {data['latency']['p99_ms']} ms, "
            f"max {data['latency']['max_ms']} ms",
            f"  cache        hit_rate {self.cache.get('hit_rate', 0.0)}",
        ]
        warm = data["warm_vs_cold"]
        if warm["speedup"] is not None:
            lines.append(
                f"  warm vs cold p50 {warm['warm_p50_ms']} ms vs "
                f"{warm['cold_p50_ms']} ms -> {warm['speedup']}x"
            )
        lines.append(f"  leaked workers {self.leaked_workers}")
        return "\n".join(lines)


def _client_worker(
    base_url: str,
    schedule: List[Tuple[str, str]],
    latencies: List[int],
    errors: List[int],
    retry: Optional[RetryPolicy] = None,
) -> None:
    """One load-generator client: its own connection, its own schedule.

    A ``429`` response is retried under the shared seeded
    :class:`~repro.common.retry.RetryPolicy` — sleeping at least the
    server's ``Retry-After`` hint — so a rate-limited bench degrades to
    back-pressure instead of error noise.  Retries exhausted, the 429
    counts as an error like any other non-200.
    """
    policy = retry if retry is not None else RetryPolicy(max_retries=0)
    parts = urlsplit(base_url)
    conn = http.client.HTTPConnection(
        parts.hostname, parts.port, timeout=60
    )
    try:
        for index, (pattern, text) in enumerate(schedule):
            body = json.dumps({"pattern": pattern, "text": text})
            start = time.perf_counter_ns()
            attempt = 0
            while True:
                try:
                    conn.request(
                        "POST",
                        "/align",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    payload = response.read()
                except (OSError, http.client.HTTPException):
                    errors.append(-1)
                    conn.close()
                    conn = http.client.HTTPConnection(
                        parts.hostname, parts.port, timeout=60
                    )
                    break
                if response.status == 429 and attempt < policy.max_retries:
                    attempt += 1
                    hint = 0.0
                    header = response.getheader("Retry-After")
                    if header:
                        try:
                            hint = float(header)
                        except ValueError:
                            hint = 0.0
                    time.sleep(max(hint, policy.delay(index, attempt)))
                    continue
                if response.status != 200 or not payload:
                    errors.append(response.status)
                    break
                latencies.append(time.perf_counter_ns() - start)
                break
    finally:
        conn.close()


def _measure_warm(
    service: AlignmentService, probes: List[Tuple[str, str]]
) -> int:
    """p50 service latency for fresh pairs through the *warm* pool."""
    samples = []
    for pattern, text in probes:
        start = time.perf_counter_ns()
        service.align_pair(pattern, text)
        samples.append(time.perf_counter_ns() - start)
    return percentile(samples, 0.50)


def _cold_start_method(fallback: Optional[str]) -> Optional[str]:
    """Start method a per-request pool inside a threaded server must use.

    The warm pool can ``fork`` because it is created once at startup,
    before any HTTP handler thread exists.  A pool created *per request*
    runs inside a multi-threaded server, where forking is unsafe (the
    child inherits a snapshot of every lock; CPython deprecates
    fork-with-threads) — such a design must ``spawn`` fresh interpreters
    and pay the interpreter+import start every request.  That asymmetry
    is exactly the cost the warm pool amortises, so the cold baseline
    measures it.
    """
    available = multiprocessing.get_all_start_methods()
    if "spawn" in available:
        return "spawn"
    return fallback


def _measure_cold(
    probes: List[Tuple[str, str]],
    aligner,
    *,
    workers: int,
    start_method: Optional[str],
) -> int:
    """p50 of spinning a fresh pool per request — the cost serving avoids."""
    samples = []
    method = _cold_start_method(start_method)
    for pattern, text in probes:
        start = time.perf_counter_ns()
        pool = WorkerPool(workers, start_method=method)
        try:
            payload = (aligner, [(pattern, text)], True, False, False)
            pool.submit(_serve_shard, payload).get(timeout=120)
        finally:
            pool.close()
        samples.append(time.perf_counter_ns() - start)
    return percentile(samples, 0.50)


def run_serve_bench(
    *,
    requests: int = 300,
    clients: int = 8,
    unique_pairs: int = 48,
    length: int = 150,
    error_rate: float = 0.05,
    seed: int = 23,
    workers: int = 2,
    cache_size: int = 4096,
    coalesce_window: float = 0.002,
    max_inflight: int = 512,
    warm_cold_probes: int = 5,
    start_method: Optional[str] = None,
    aligner=None,
) -> ServeBenchReport:
    """Boot a server, run the seeded load schedule, measure, tear down."""
    pair_set = generate_pair_set(
        "serve-bench", length, error_rate, unique_pairs, seed=seed
    )
    pool_pairs = [(pair.pattern, pair.text) for pair in pair_set]
    # Seeded schedule with guaranteed repeats (cache hits) once every
    # unique pair has been seen; round-robin split across clients.
    rng = random.Random(seed * 7919 + 1)
    schedule = [
        pool_pairs[rng.randrange(unique_pairs)] for _ in range(requests)
    ]
    shards: List[List[Tuple[str, str]]] = [[] for _ in range(clients)]
    for index, item in enumerate(schedule):
        shards[index % clients].append(item)

    config = ServeConfig(
        workers=workers,
        cache_size=cache_size,
        coalesce_window=coalesce_window,
        max_inflight=max_inflight,
        start_method=start_method,
    )
    service = AlignmentService(aligner, config=config)
    latencies: List[int] = []
    errors: List[int] = []
    with service, running_server(service) as (_server, base_url):
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(
                    base_url,
                    shard,
                    latencies,
                    errors,
                    RetryPolicy(max_retries=2, seed=seed + index),
                ),
                name=f"bench-client-{index}",
            )
            for index, shard in enumerate(shards)
            if shard
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started

        snapshot = service.metrics_snapshot()

        # Warm-vs-cold: fresh (uncached, uncoalesced) pairs through the
        # already-resident pool, versus a pool built per request.
        warm_p50: Optional[int] = None
        cold_p50: Optional[int] = None
        if warm_cold_probes > 0 and service.pool.process_mode:
            probe_set = generate_pair_set(
                "serve-bench-probe", length, error_rate, warm_cold_probes,
                seed=seed + 101,
            )
            probes = [(pair.pattern, pair.text) for pair in probe_set]
            warm_p50 = _measure_warm(service, probes)
            cold_p50 = _measure_cold(
                probes,
                service.aligner,
                workers=workers,
                start_method=service.pool.method,
            )
    leaked = len(multiprocessing.active_children())
    return ServeBenchReport(
        requests=requests,
        clients=clients,
        unique_pairs=unique_pairs,
        errors=len(errors),
        wall_seconds=wall,
        latencies_ns=latencies,
        cache=snapshot["cache"],
        pool=snapshot["pool"],
        requests_accounting=snapshot["requests"],
        warm_p50_ns=warm_p50,
        cold_p50_ns=cold_p50,
        leaked_workers=leaked,
    )
