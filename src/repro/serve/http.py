"""Thin JSON/HTTP facade over :class:`~repro.serve.service.AlignmentService`.

Endpoints:

``POST /align``
    Body: ``{"pattern": "...", "text": "..."}`` for one pair, or
    ``{"pairs": [["p1", "t1"], ["p2", "t2"], ...]}`` for several; an
    optional ``"traceback": false`` requests distance-only alignment.
    Response: ``{"pairs": n, "results": [{score, cigar, exact,
    text_start, text_end, cached}, ...]}`` in input order.  Saturation
    — and, when configured, per-client rate limiting keyed on the
    ``X-Client-Id`` header (peer address when absent) —
    returns ``429`` with a ``Retry-After`` header; malformed input
    (including empty sequences) returns ``400``; a request that outlives
    the service's ``request_timeout`` returns ``504``; any unexpected
    server-side failure returns ``500`` rather than a dropped connection.

``GET /health``
    Liveness: status, uptime, pool shape.

``GET /metrics``
    The full :meth:`AlignmentService.metrics_snapshot` — obs registry,
    cache hit-rate, queue depth, coalescing and pool gauges.

The server is a stdlib :class:`~http.server.ThreadingHTTPServer`; each
connection gets a handler thread, and all of them funnel into the one
shared service (whose coalescer packs their concurrent requests into
shards).
"""

from __future__ import annotations

import contextlib
import json
import threading
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, List, Optional, Tuple

from ..obs import runtime as obs
from .ratelimit import RateLimitedError
from .service import AlignmentService, ServeError, ServiceSaturatedError

#: Refuse request bodies larger than this (defense against misdirected uploads).
MAX_BODY_BYTES = 8 * 1024 * 1024


class RequestError(ServeError):
    """Client-side request problem (maps to HTTP 400)."""


def _parse_align_request(body: bytes) -> Tuple[List[Tuple[str, str]], bool]:
    """Decode and validate a ``POST /align`` body → (pairs, traceback)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    traceback = payload.get("traceback", True)
    if not isinstance(traceback, bool):
        raise RequestError("'traceback' must be a boolean")
    if "pairs" in payload:
        raw_pairs = payload["pairs"]
        if not isinstance(raw_pairs, list) or not raw_pairs:
            raise RequestError("'pairs' must be a non-empty list")
        pairs: List[Tuple[str, str]] = []
        for index, item in enumerate(raw_pairs):
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not all(isinstance(part, str) and part for part in item)
            ):
                raise RequestError(
                    f"pairs[{index}] must be a [pattern, text] pair of "
                    f"non-empty strings"
                )
            pairs.append((item[0], item[1]))
        return pairs, traceback
    pattern = payload.get("pattern")
    text = payload.get("text")
    if not isinstance(pattern, str) or not isinstance(text, str):
        raise RequestError(
            "request must provide 'pattern' and 'text' strings, "
            "or a 'pairs' list"
        )
    if not pattern or not text:
        raise RequestError("'pattern' and 'text' must be non-empty")
    return [(pattern, text)], traceback


class AlignmentRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP traffic into the shared :class:`AlignmentService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    @property
    def service(self) -> AlignmentService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging; obs metrics cover it."""

    def _client_id(self) -> str:
        """Rate-limit key: ``X-Client-Id`` header, else the peer address."""
        header = self.headers.get("X-Client-Id", "").strip()
        if header:
            return header[:128]
        return self.client_address[0]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._send_json(200, self.service.health())
        elif self.path == "/metrics":
            self._send_json(200, self.service.metrics_snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/align":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        with obs.span("serve.request"):
            self._handle_align()

    def _handle_align(self) -> None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400,
                {"error": "Content-Length required and <= "
                          f"{MAX_BODY_BYTES} bytes"},
            )
            return
        body = self.rfile.read(length)
        try:
            pairs, traceback = _parse_align_request(body)
            limiter = self.service.rate_limiter
            if limiter is not None:
                limiter.check(self._client_id(), cost=len(pairs))
            results = self.service.align_pairs(pairs, traceback=traceback)
        except RequestError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except RateLimitedError as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
            return
        except ServiceSaturatedError as exc:
            self._send_json(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
            return
        except ServeError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except FuturesTimeoutError:
            self._send_json(
                504, {"error": "alignment timed out; retry later"}
            )
            return
        except Exception as exc:  # noqa: BLE001 - never drop the connection
            # A shard failure propagates the worker's exception through
            # align_pairs; the client must still get an HTTP response, not
            # a closed socket.
            self._send_json(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
            return
        self._send_json(
            200,
            {
                "pairs": len(results),
                "results": [result.to_dict() for result in results],
            },
        )

    def _send_json(
        self,
        code: int,
        payload: dict,
        *,
        headers: Optional[dict] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class AlignmentHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`AlignmentService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: AlignmentService,
    ) -> None:
        super().__init__(address, AlignmentRequestHandler)
        self.service = service


@contextlib.contextmanager
def running_server(
    service: AlignmentService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Iterator[Tuple[AlignmentHTTPServer, str]]:
    """Run a server for ``service`` on a background thread.

    Yields ``(server, base_url)``; ``port=0`` binds an ephemeral port
    (read the real one off the URL).  Shuts the server down on exit —
    the *service* lifecycle stays with the caller.
    """
    server = AlignmentHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-serve-http",
        daemon=True,
    )
    thread.start()
    bound_host, bound_port = server.server_address[0], server.server_address[1]
    try:
        yield server, f"http://{bound_host}:{bound_port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join()
