"""Alignment-as-a-service: warm pools, coalescing, content-addressed cache.

The serving subsystem turns the batch alignment engine into a long-lived
service: a warm :class:`~repro.align.parallel.WorkerPool` paid for once at
startup, a micro-batching :class:`~repro.serve.coalescer.Coalescer` that
packs concurrent requests into shards, a content-addressed
:class:`~repro.serve.cache.AlignmentCache`, admission control with
back-pressure (429 + ``Retry-After``), and crash recovery that rebuilds
the pool and re-executes lost shards.  See ``docs/serving.md``.
"""

from .cache import (
    AlignmentCache,
    CachedAlignment,
    CacheError,
    aligner_fingerprint,
    pair_key,
)
from .coalescer import Coalescer, CoalescerError, PendingPair
from .http import (
    AlignmentHTTPServer,
    AlignmentRequestHandler,
    RequestError,
    running_server,
)
from .service import (
    AlignmentService,
    ServeConfig,
    ServeError,
    ServeResult,
    ServiceClosedError,
    ServiceSaturatedError,
)

__all__ = [
    "AlignmentCache",
    "AlignmentHTTPServer",
    "AlignmentRequestHandler",
    "AlignmentService",
    "CacheError",
    "CachedAlignment",
    "Coalescer",
    "CoalescerError",
    "PendingPair",
    "RequestError",
    "ServeConfig",
    "ServeError",
    "ServeResult",
    "ServiceClosedError",
    "ServiceSaturatedError",
    "aligner_fingerprint",
    "pair_key",
    "running_server",
]
