"""Per-client token-bucket rate limiting for the alignment service.

Each client (identified by the ``X-Client-Id`` request header, falling
back to the peer address) gets its own token bucket: tokens accrue at
``rate`` per second up to ``burst``, and every admitted request spends
one token per pair.  A request that cannot be paid for is rejected with
a :class:`RateLimitedError` carrying a ``retry_after`` hint — the exact
time until the bucket holds enough tokens — which the HTTP layer turns
into ``429`` + ``Retry-After``.

Requests costing more than ``burst`` tokens are admitted once the bucket
is *full* (the bucket briefly goes negative); otherwise a single large
batch could never be served at all.

The limiter is self-contained and clock-injectable so tests can drive
it deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from .service import ServeError

#: Stop tracking more than this many distinct clients; the least
#: recently seen bucket is evicted (it refills to ``burst`` anyway).
MAX_TRACKED_CLIENTS = 4096


class RateLimitedError(ServeError):
    """A client exceeded its token budget (maps to HTTP 429).

    Attributes:
        client: the client id whose bucket ran dry.
        retry_after: seconds until the bucket can pay for this request.
    """

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} rate-limited; retry after {retry_after:.3f}s"
        )
        self.client = client
        self.retry_after = retry_after


class _Bucket:
    """One client's token bucket (protected by the limiter's lock)."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float) -> None:
        self.tokens = tokens
        self.stamp = stamp


class RateLimiter:
    """Token buckets keyed by client id.

    Args:
        rate: tokens (pairs) replenished per second, per client.
        burst: bucket capacity; also the largest cost payable at once
            without dipping into debt.
        clock: monotonic time source (test hook).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if rate <= 0:
            raise ServeError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ServeError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, _Bucket]" = OrderedDict()
        self.allowed = 0
        self.rejected = 0

    def check(self, client: str, cost: int = 1) -> None:
        """Admit ``cost`` tokens for ``client`` or raise.

        Raises:
            RateLimitedError: with the precise ``retry_after`` hint when
                the client's bucket cannot pay.
        """
        if cost < 1:
            cost = 1
        now = self._clock()
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = _Bucket(self.burst, now)
            else:
                elapsed = max(0.0, now - bucket.stamp)
                bucket.tokens = min(
                    self.burst, bucket.tokens + elapsed * self.rate
                )
                bucket.stamp = now
            # A cost above the burst capacity is payable only when the
            # bucket is full; cap the price so it is admittable at all.
            price = min(float(cost), self.burst)
            if bucket.tokens < price:
                retry_after = (price - bucket.tokens) / self.rate
                self._buckets[client] = bucket
                self._evict()
                self.rejected += 1
                raise RateLimitedError(client, retry_after)
            bucket.tokens -= float(cost)
            self._buckets[client] = bucket
            self._evict()
            self.allowed += 1

    def _evict(self) -> None:
        """Drop least-recently-seen buckets beyond the tracking cap."""
        while len(self._buckets) > MAX_TRACKED_CLIENTS:
            self._buckets.popitem(last=False)

    def snapshot(self) -> dict:
        """Gauges for ``/metrics``."""
        with self._lock:
            return {
                "rate_per_second": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed": self.allowed,
                "rejected": self.rejected,
            }
