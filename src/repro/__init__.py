"""repro — a functional + cycle-model reproduction of GMX (MICRO 2023).

GMX (Doblas et al., MICRO '23) is a RISC-V instruction-set extension for
edit-distance sequence alignment that computes T×T tiles of the
dynamic-programming matrix per instruction.  This library implements:

* the GMX-Tile algorithm and a functional GMX ISA model (:mod:`repro.core`);
* the three GMX co-designed aligners — Full, Banded, Windowed
  (:mod:`repro.align`);
* every software baseline the paper compares against (:mod:`repro.baselines`);
* gate-level/area/power models of the GMX-AC and GMX-TB hardware
  (:mod:`repro.hw`);
* trace-driven cycle models of the evaluated systems and DSA comparators
  (:mod:`repro.sim`);
* the paper's synthetic workload suite (:mod:`repro.workloads`) and the
  per-figure evaluation harness (:mod:`repro.eval`).

Quickstart::

    from repro import align_pair
    result = align_pair("GCAT", "GATT")
    print(result.score, result.alignment.cigar)
"""

from .align import (
    AlignmentMode,
    AlignmentResult,
    AutoAligner,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
    align_batch,
    align_pair,
)
from .core import Alignment, DEFAULT_TILE_SIZE, GmxIsa

__version__ = "1.0.0"

__all__ = [
    "Alignment",
    "AlignmentMode",
    "AlignmentResult",
    "AutoAligner",
    "BandedGmxAligner",
    "DEFAULT_TILE_SIZE",
    "FullGmxAligner",
    "GmxIsa",
    "WindowedGmxAligner",
    "align_batch",
    "align_pair",
    "__version__",
]
