"""Span tracing: recorder, context-manager API, Chrome-trace export.

A *span* is one timed region of the harness — an alignment, a tile-compute
phase, a shard attempt, a simulated pipeline run — with a name, a tag
dict, nesting (parent span), and thread/process attribution.  Spans are
recorded into a :class:`SpanRecorder`, an append-only in-memory buffer
guarded by one lock; the per-thread open-span stack lives in
``threading.local`` so concurrent threads nest independently.

Process boundaries: a worker records into its own recorder and ships
``recorder.drain()`` (a list of plain dicts — the cheapest payload to
pickle) back to the parent, which merges it with
:meth:`SpanRecorder.absorb`.  Span ids are remapped on absorb so parent
links stay intact and ids stay unique in the merged trace.
``time.perf_counter_ns`` is CLOCK_MONOTONIC-based on Linux, so parent and
worker timestamps share one clock domain and the merged trace lines up.

Exports:

* :meth:`SpanRecorder.chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto): complete events (``ph: "X"``) with
  microsecond timestamps, one ``pid``/``tid`` lane per worker thread.
* :meth:`SpanRecorder.to_jsonl` — one span dict per line, for ad-hoc
  ``jq``-style analysis and the profile regression workflow.

Determinism: span structure (names, tags, nesting, per-thread order) is a
pure function of the instrumented program's execution, so fixed seeds
reproduce it exactly; only ``start_ns``/``duration_ns`` vary run to run.
Tests that need bit-identical traces inject a fake ``clock``.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Dict, Iterable, List, Optional, Tuple


class TracingError(RuntimeError):
    """Raised on span API misuse (exit without enter, absorb of garbage)."""


@dataclass
class Span:
    """One finished timed region.

    Attributes:
        span_id: recorder-unique id (remapped on cross-process absorb).
        parent_id: enclosing span's id (``None`` for top-level spans).
        name: dotted region name (see docs/observability.md conventions).
        start_ns: monotonic start timestamp.
        duration_ns: elapsed nanoseconds.
        tags: small JSON-safe annotation dict (lengths, counts, labels).
        pid / tid: recording process and thread.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: int
    duration_ns: int
    tags: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "tags": self.tags,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        try:
            return cls(
                span_id=payload["span_id"],
                parent_id=payload["parent_id"],
                name=payload["name"],
                start_ns=payload["start_ns"],
                duration_ns=payload["duration_ns"],
                tags=dict(payload.get("tags", {})),
                pid=payload.get("pid", 0),
                tid=payload.get("tid", 0),
            )
        except (KeyError, TypeError) as exc:
            raise TracingError(f"malformed span payload: {exc}") from exc


class _LiveSpan:
    """An open span; closes (and records) on context-manager exit."""

    __slots__ = ("_recorder", "span_id", "name", "tags", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str, tags: dict):
        self._recorder = recorder
        self.name = name
        self.tags = tags
        self.span_id = -1
        self._start = 0

    def __enter__(self) -> "_LiveSpan":
        self._recorder._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._close(self, failed=exc_type is not None)
        return False

    def tag(self, **tags) -> "_LiveSpan":
        """Attach tags to the open span (chainable)."""
        self.tags.update(tags)
        return self


class SpanRecorder:
    """Thread-safe in-memory span buffer.

    Args:
        clock: nanosecond clock (injectable for deterministic tests;
            defaults to ``time.perf_counter_ns``).
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._clock = clock if clock is not None else perf_counter_ns
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []
        self._next_id = 0
        self._pid = os.getpid()

    @property
    def pid(self) -> int:
        """Process that created this recorder (fork-inheritance detection)."""
        return self._pid

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **tags) -> _LiveSpan:
        """Open a span as a context manager: ``with rec.span("x"): ...``."""
        return _LiveSpan(self, name, tags)

    def _stack(self) -> List[Tuple[int, int]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, live: _LiveSpan) -> None:
        with self._lock:
            live.span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        stack.append(live.span_id)
        live._start = self._clock()

    def _close(self, live: _LiveSpan, *, failed: bool) -> None:
        end = self._clock()
        stack = self._stack()
        if not stack or stack[-1] != live.span_id:
            raise TracingError(
                f"span {live.name!r} closed out of order (open stack: {stack})"
            )
        stack.pop()
        parent = stack[-1] if stack else None
        tags = live.tags
        if failed:
            tags = dict(tags)
            tags["error"] = True
        record = Span(
            span_id=live.span_id,
            parent_id=parent,
            name=live.name,
            start_ns=live._start,
            duration_ns=end - live._start,
            tags=tags,
            pid=self._pid,
            tid=threading.get_ident(),
        )
        with self._lock:
            self._spans.append(record)

    # -- access and merging --------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def drain(self) -> List[dict]:
        """Remove and return all finished spans as picklable dicts.

        The worker-boundary payload: a worker drains its recorder into the
        shard reply; the parent absorbs the buffer into the batch trace.
        """
        with self._lock:
            spans = self._spans
            self._spans = []
        return [span.to_dict() for span in spans]

    def absorb(self, buffer: Iterable[dict]) -> int:
        """Merge a drained span buffer (id-remapped); returns spans added.

        Parent links inside the buffer are preserved; ids are shifted into
        this recorder's id space so a merged trace never collides, no
        matter how many workers contributed.
        """
        spans = [Span.from_dict(entry) for entry in buffer]
        if not spans:
            return 0
        with self._lock:
            base = self._next_id
            remap = {span.span_id: base + i for i, span in enumerate(spans)}
            self._next_id = base + len(spans)
            for span in spans:
                span.span_id = remap[span.span_id]
                if span.parent_id is not None:
                    # Parents outside the buffer (never the case for a
                    # cleanly drained worker) degrade to top-level spans.
                    span.parent_id = remap.get(span.parent_id)
                self._spans.append(span)
        return len(spans)

    # -- export --------------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The Chrome trace-event document (loads in Perfetto).

        Complete events (``ph: "X"``) with microsecond timestamps rebased
        to the earliest span, so the viewer opens at t=0.
        """
        spans = self.spans
        origin = min((span.start_ns for span in spans), default=0)
        events = []
        for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
            args = dict(span.tags)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (span.start_ns - origin) / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs", "spans": len(events)},
        }

    def to_json(self) -> str:
        """Chrome-trace document as a JSON string."""
        return json.dumps(self.chrome_trace(), indent=2, sort_keys=True)

    def to_jsonl(self) -> str:
        """One span dict per line (completion order), for jq-style tooling."""
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True) for span in self.spans
        )


class NoopSpan:
    """The shared do-nothing span returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()
