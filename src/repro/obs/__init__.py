"""repro.obs — zero-dependency tracing, metrics, and profiling.

The paper's evaluation (§7) attributes cycles and instructions to
individual tiles, kernels, and cores; this package gives the reproduction
the same visibility over its own hot paths:

* **Tracing** (:mod:`.tracing`) — a lightweight span API
  (``obs.span("tile.compute", tiles=12)``) recording into a thread-safe
  in-memory :class:`~repro.obs.tracing.SpanRecorder`, exported as
  Chrome-trace JSON (loads in ``chrome://tracing`` / Perfetto) or JSON
  lines.  Span buffers are picklable, so worker processes ship their
  spans back to the parent and a sharded batch produces one merged trace.
* **Metrics** (:mod:`.metrics`) — a registry of counters, gauges, and
  histograms (tiles computed, traceback rate, band exceedances, retries,
  per-kernel wall-time) with snapshot / diff / merge semantics; exported
  into ``experiment all`` artifacts next to the lint and resilience
  badges.
* **Profiling** (:mod:`.profiler`) — a sampling-free deterministic
  profiler (``repro profile`` on the CLI) that aggregates the span stream
  into a per-kernel hot-path table and diffs two profile JSONs for
  regression hunting.

Everything is **off by default**: instrumented call sites check one
module-level flag (:data:`~repro.obs.runtime.ENABLED`) and cost a single
attribute read plus a no-op context manager when observability is
disabled.  When enabled, span *structure* (names, nesting, tags, per-
thread ordering) is deterministic under fixed seeds — only the recorded
nanosecond timestamps vary — so traces are replayable alongside
:class:`~repro.resilience.FaultPlan` journals.
"""

from .metrics import MetricsRegistry, MetricsSnapshot, merge_snapshots
from .profiler import (
    Profile,
    ProfileError,
    diff_profiles,
    load_profile,
    render_profile,
    render_profile_diff,
)
from .runtime import (
    capture,
    disable,
    enable,
    enabled,
    inc,
    metrics,
    observe,
    observe_ns,
    recorder,
    span,
)
from .tracing import Span, SpanRecorder, TracingError

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Profile",
    "ProfileError",
    "Span",
    "SpanRecorder",
    "TracingError",
    "capture",
    "diff_profiles",
    "disable",
    "enable",
    "enabled",
    "inc",
    "load_profile",
    "merge_snapshots",
    "metrics",
    "observe",
    "observe_ns",
    "recorder",
    "render_profile",
    "render_profile_diff",
    "span",
]
