"""Ambient observability state: the enable flag and module-level helpers.

Instrumented call sites throughout the library go through this module:

    from ..obs import runtime as obs
    ...
    with obs.span("align.full_gmx", n=len(pattern)):
        ...
    obs.inc("align.tiles", stats.tiles)

While observability is disabled (the default), :func:`span` returns one
shared no-op context manager and :func:`inc`/:func:`observe_ns` return
immediately after a single module-attribute check — the cost the
``test_obs_overhead`` benchmark bounds at <5% on the kernel microbenches.

:func:`enable`/:func:`disable` swap in a live
:class:`~repro.obs.tracing.SpanRecorder` +
:class:`~repro.obs.metrics.MetricsRegistry` pair; :func:`capture` is the
context-manager form used by tests, workers, and the ``repro profile``
driver.  The state is process-local: each worker process arms its own
recorder and ships the buffer back (see
:meth:`~repro.obs.tracing.SpanRecorder.drain`).
"""

from __future__ import annotations

import contextlib
import functools
import os
from time import perf_counter_ns
from typing import Callable, Iterator, Optional, Tuple

from .metrics import MetricsRegistry
from .tracing import NOOP_SPAN, SpanRecorder

#: Master switch checked by every instrumented call site.
ENABLED: bool = False

_RECORDER: Optional[SpanRecorder] = None
_METRICS: Optional[MetricsRegistry] = None


def enable(  # dsan: allow[REPRO007] arming primitive; capture() restores
    recorder: Optional[SpanRecorder] = None,
    registry: Optional[MetricsRegistry] = None,
    *,
    clock: Optional[Callable[[], int]] = None,
) -> Tuple[SpanRecorder, MetricsRegistry]:
    """Turn observability on; returns the active (recorder, registry).

    Passing an existing recorder/registry resumes recording into it —
    how the profiler accumulates across several commands.  ``clock``
    builds the fresh recorder with a deterministic test clock.
    """
    global ENABLED, _RECORDER, _METRICS
    _RECORDER = recorder if recorder is not None else SpanRecorder(clock=clock)
    _METRICS = registry if registry is not None else MetricsRegistry()
    ENABLED = True
    return _RECORDER, _METRICS


def disable() -> None:
    """Turn observability off (instrumentation reverts to no-ops)."""
    global ENABLED, _RECORDER, _METRICS
    ENABLED = False
    _RECORDER = None
    _METRICS = None


def enabled() -> bool:
    """Whether observability is currently recording."""
    return ENABLED


def owns_recorder() -> bool:
    """True when recording is on *and* this process created the recorder.

    Distinguishes the parent from a fork-started worker: the worker
    inherits ``ENABLED`` and a memory-copy of the parent's recorder, but
    anything recorded into that copy dies with the worker.  Worker code
    checks this to decide between recording directly (same process) and
    capturing locally to ship buffers back (any worker process).
    """
    return (
        ENABLED and _RECORDER is not None and _RECORDER.pid == os.getpid()
    )


def recorder() -> Optional[SpanRecorder]:
    """The active span recorder (``None`` while disabled)."""
    return _RECORDER


def metrics() -> Optional[MetricsRegistry]:
    """The active metrics registry (``None`` while disabled)."""
    return _METRICS


def span(name: str, **tags):
    """Open a span when enabled; a shared no-op context manager otherwise."""
    if not ENABLED:
        return NOOP_SPAN
    return _RECORDER.span(name, **tags)


def inc(name: str, value: int = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    if ENABLED:
        _METRICS.inc(name, value)


def observe(name: str, value: float) -> None:
    """Set a gauge (no-op while disabled)."""
    if ENABLED:
        _METRICS.set_gauge(name, value)


def observe_ns(name: str, value_ns: int) -> None:
    """Record a histogram observation (no-op while disabled)."""
    if ENABLED:
        _METRICS.observe_ns(name, value_ns)


def instrument_align(kernel: str) -> Callable:
    """Decorator instrumenting an ``Aligner.align`` method.

    When enabled, each call records a span ``align.<kernel>`` (tagged with
    the pair dimensions), per-kernel pair/tile/traceback counters, and a
    wall-time observation into the ``kernel.<kernel>.align_ns`` histogram.
    The disabled path is one flag check and a tail call.
    """

    span_name = f"align.{kernel}"
    hist_name = f"kernel.{kernel}.align_ns"
    pairs_name = f"align.{kernel}.pairs"
    tiles_name = f"align.{kernel}.tiles"
    tb_name = f"align.{kernel}.tracebacks"

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, pattern, text, *, traceback=True):
            if not ENABLED:
                return fn(self, pattern, text, traceback=traceback)
            start_ns = perf_counter_ns()
            with _RECORDER.span(
                span_name, m=len(pattern), n=len(text), traceback=traceback
            ):
                result = fn(self, pattern, text, traceback=traceback)
            _METRICS.inc(pairs_name)
            _METRICS.inc(tiles_name, result.stats.tiles)
            if result.alignment is not None:
                _METRICS.inc(tb_name)
            _METRICS.observe_ns(hist_name, perf_counter_ns() - start_ns)
            return result

        return wrapper

    return decorate


@contextlib.contextmanager
def capture(
    *, clock: Optional[Callable[[], int]] = None
) -> Iterator[Tuple[SpanRecorder, MetricsRegistry]]:
    """Enable observability for a block, restoring the previous state.

    Nesting-safe: the previous recorder/registry (and flag) come back on
    exit, so a worker capturing its shard does not clobber a profiling
    session in the same process (inline executors).
    """
    global ENABLED, _RECORDER, _METRICS
    previous = (ENABLED, _RECORDER, _METRICS)
    pair = enable(clock=clock)
    try:
        yield pair
    finally:
        ENABLED, _RECORDER, _METRICS = previous
