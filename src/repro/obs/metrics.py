"""Metrics: counters, gauges, and histograms with snapshot/diff/merge.

The registry is deliberately plain — three dicts of numbers — because its
contract is algebraic, not structural:

* **snapshot** produces an immutable, stable-key view
  (:class:`MetricsSnapshot`) suitable for JSON artifacts and golden
  tests;
* **diff** of two snapshots isolates what one region of a run did
  (``after - before`` for counters and histogram totals);
* **merge** is commutative and associative, so per-worker registries
  reduce to the same totals in any grouping — the same property
  :class:`~repro.align.base.KernelStats` guarantees for the parallel
  batch engine.

Histograms use fixed power-of-two nanosecond buckets, so merging never
re-bins and the bucket layout is identical across processes and runs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class MetricsError(ValueError):
    """Raised on metric API misuse (bad name, mixed metric kinds)."""


#: Histogram bucket upper bounds: powers of two from 1 µs to ~17 s, in ns.
#: The final implicit bucket is unbounded (+inf).
HISTOGRAM_BOUNDS_NS: Tuple[int, ...] = tuple(
    1000 * (1 << exp) for exp in range(0, 25)
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable view of one histogram.

    Attributes:
        count / sum_ns / min_ns / max_ns: observation aggregates.
        buckets: observation counts per :data:`HISTOGRAM_BOUNDS_NS` bucket
            (plus the trailing overflow bucket).
    """

    count: int = 0
    sum_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0
    buckets: Tuple[int, ...] = (0,) * (len(HISTOGRAM_BOUNDS_NS) + 1)

    @property
    def mean_ns(self) -> float:
        return self.sum_ns / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum_ns": self.sum_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "mean_ns": self.mean_ns,
            "buckets": list(self.buckets),
        }

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if not other.count:
            return self
        if not self.count:
            return other
        return HistogramSnapshot(
            count=self.count + other.count,
            sum_ns=self.sum_ns + other.sum_ns,
            min_ns=min(self.min_ns, other.min_ns),
            max_ns=max(self.max_ns, other.max_ns),
            buckets=tuple(
                a + b for a, b in zip(self.buckets, other.buckets)
            ),
        )

    def diff(self, before: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations recorded after ``before`` was taken.

        min/max cannot be un-merged; the diff reports the *after* extremes,
        which is the conservative envelope of the window's observations.
        """
        count = self.count - before.count
        if count <= 0:
            return HistogramSnapshot()
        return HistogramSnapshot(
            count=count,
            sum_ns=self.sum_ns - before.sum_ns,
            min_ns=self.min_ns,
            max_ns=self.max_ns,
            buckets=tuple(
                a - b for a, b in zip(self.buckets, before.buckets)
            ),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, stable-key view of a registry at one instant."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form with deterministically sorted keys."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }

    def diff(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between ``before`` and this snapshot."""
        counters = {}
        for name, value in self.counters.items():
            delta = value - before.counters.get(name, 0)
            if delta:
                counters[name] = delta
        histograms = {}
        for name, hist in self.histograms.items():
            delta_hist = hist.diff(
                before.histograms.get(name, HistogramSnapshot())
            )
            if delta_hist.count:
                histograms[name] = delta_hist
        return MetricsSnapshot(
            counters=counters,
            gauges=dict(self.gauges),  # gauges are levels, not flows
            histograms=histograms,
        )


def merge_snapshots(parts: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Order-insensitive reduction of snapshots (worker → parent merge).

    Counters and histograms add; a gauge takes the last non-``None``
    written value per name (gauges describe levels, and merging levels
    across workers keeps the most recent report, which is what the batch
    engine's input-ordered merge delivers deterministically).
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, HistogramSnapshot] = {}
    for part in parts:
        for name, value in part.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges.update(part.gauges)
        for name, hist in part.histograms.items():
            histograms[name] = histograms.get(
                name, HistogramSnapshot()
            ).merge(hist)
    return MetricsSnapshot(
        counters=counters, gauges=gauges, histograms=histograms
    )


class _Histogram:
    """Mutable histogram backing store (registry-internal)."""

    __slots__ = ("count", "sum_ns", "min_ns", "max_ns", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum_ns = 0
        self.min_ns = 0
        self.max_ns = 0
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS_NS) + 1)

    def observe(self, value_ns: int) -> None:
        if self.count:
            self.min_ns = min(self.min_ns, value_ns)
            self.max_ns = max(self.max_ns, value_ns)
        else:
            self.min_ns = self.max_ns = value_ns
        self.count += 1
        self.sum_ns += value_ns
        lo, hi = 0, len(HISTOGRAM_BOUNDS_NS)
        while lo < hi:  # first bound >= value (bisect, no imports)
            mid = (lo + hi) // 2
            if HISTOGRAM_BOUNDS_NS[mid] < value_ns:
                lo = mid + 1
            else:
                hi = mid
        self.buckets[lo] += 1

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            count=self.count,
            sum_ns=self.sum_ns,
            min_ns=self.min_ns,
            max_ns=self.max_ns,
            buckets=tuple(self.buckets),
        )


class MetricsRegistry:
    """Thread-safe named counters, gauges, and nanosecond histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or name != name.strip():
            raise MetricsError(f"bad metric name {name!r}")

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self._check_name(name)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self._check_name(name)
        with self._lock:
            self._gauges[name] = value

    def observe_ns(self, name: str, value_ns: int) -> None:
        """Record one observation into histogram ``name``."""
        self._check_name(name)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(value_ns)

    def counter(self, name: str) -> int:
        """Current counter value (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        """Immutable stable-key view of everything recorded so far."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
            )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge a worker's snapshot into this registry (additive)."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.gauges)
            for name, incoming in snapshot.histograms.items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = _Histogram()
                merged = hist.snapshot().merge(incoming)
                hist.count = merged.count
                hist.sum_ns = merged.sum_ns
                hist.min_ns = merged.min_ns
                hist.max_ns = merged.max_ns
                hist.buckets = list(merged.buckets)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def snapshot_from_dict(payload: dict) -> MetricsSnapshot:
    """Rebuild a snapshot from its ``to_dict`` form (worker transport)."""
    histograms = {}
    for name, entry in payload.get("histograms", {}).items():
        buckets = entry.get("buckets") or [0] * (
            len(HISTOGRAM_BOUNDS_NS) + 1
        )
        histograms[name] = HistogramSnapshot(
            count=entry.get("count", 0),
            sum_ns=entry.get("sum_ns", 0),
            min_ns=entry.get("min_ns", 0),
            max_ns=entry.get("max_ns", 0),
            buckets=tuple(buckets),
        )
    return MetricsSnapshot(
        counters=dict(payload.get("counters", {})),
        gauges=dict(payload.get("gauges", {})),
        histograms=histograms,
    )


def format_metrics(
    snapshot: MetricsSnapshot, names: Optional[List[str]] = None
) -> str:
    """Small text rendering (CLI footer): counters + histogram means."""
    lines = []
    for name in sorted(snapshot.counters):
        if names is not None and name not in names:
            continue
        lines.append(f"{name}={snapshot.counters[name]}")
    for name in sorted(snapshot.histograms):
        if names is not None and name not in names:
            continue
        hist = snapshot.histograms[name]
        lines.append(
            f"{name}: n={hist.count} mean={hist.mean_ns / 1e6:.3f}ms "
            f"max={hist.max_ns / 1e6:.3f}ms"
        )
    return "\n".join(lines)
