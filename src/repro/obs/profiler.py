"""Deterministic sampling-free profiler over the span stream.

Where a sampling profiler interrupts the process and guesses, this one
aggregates the *complete* span record: every instrumented region
contributes its exact count, total time, and self time (total minus
direct children), so two runs of the same seeded workload produce the
same rows in the same order up to wall-time jitter — which is exactly
what ``repro profile --diff`` then isolates.

The :class:`Profile` artifact carries:

* per-name rows (count, total, self, min/max) sorted by self time — the
  hot-path table the CLI prints;
* *coverage*: the fraction of measured wall time under top-level spans
  (the acceptance bar asks ≥95%, i.e. the instrumentation actually
  brackets the work);
* the metrics snapshot taken at the same instant.

Profiles serialise to JSON and diff structurally, so a regression hunt is
``repro profile --json before.json -- ...`` at the old commit, the same
at the new one, then ``repro profile --diff before.json after.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .metrics import MetricsSnapshot, snapshot_from_dict
from .tracing import Span, SpanRecorder


class ProfileError(ValueError):
    """Raised on malformed profile files or inputs."""


@dataclass
class ProfileRow:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    min_ns: int = 0
    max_ns: int = 0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_ns": self.total_ns,
            "self_ns": self.self_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
        }


@dataclass
class Profile:
    """One profiling run, ready to render, serialise, or diff.

    Attributes:
        label: what was profiled (the wrapped CLI command line).
        wall_ns: measured end-to-end wall time of the profiled region.
        covered_ns: wall time under top-level spans.
        rows: per-span-name aggregates.
        metrics: the metrics snapshot taken when the run finished.
    """

    label: str = ""
    wall_ns: int = 0
    covered_ns: int = 0
    rows: List[ProfileRow] = field(default_factory=list)
    metrics: Optional[MetricsSnapshot] = None

    @property
    def coverage(self) -> float:
        """Fraction of the measured wall time spanned by instrumentation."""
        if self.wall_ns <= 0:
            return 0.0
        return min(1.0, self.covered_ns / self.wall_ns)

    def row(self, name: str) -> Optional[ProfileRow]:
        for entry in self.rows:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "wall_ns": self.wall_ns,
            "covered_ns": self.covered_ns,
            "coverage": self.coverage,
            "rows": [
                row.to_dict()
                for row in sorted(self.rows, key=lambda r: r.name)
            ],
            "metrics": self.metrics.to_dict() if self.metrics else None,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def build_profile(
    spans: Union[SpanRecorder, Sequence[Span]],
    *,
    wall_ns: int,
    label: str = "",
    metrics: Optional[MetricsSnapshot] = None,
) -> Profile:
    """Aggregate a span stream into a :class:`Profile`.

    Self time subtracts each span's *direct* children; coverage sums
    top-level spans only, so nesting never double-counts.
    """
    if isinstance(spans, SpanRecorder):
        spans = spans.spans
    child_ns: Dict[int, int] = {}
    for span in spans:
        if span.parent_id is not None:
            child_ns[span.parent_id] = (
                child_ns.get(span.parent_id, 0) + span.duration_ns
            )
    rows: Dict[str, ProfileRow] = {}
    covered = 0
    for span in spans:
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = ProfileRow(
                name=span.name, min_ns=span.duration_ns, max_ns=span.duration_ns
            )
        else:
            row.min_ns = min(row.min_ns, span.duration_ns)
            row.max_ns = max(row.max_ns, span.duration_ns)
        row.count += 1
        row.total_ns += span.duration_ns
        row.self_ns += max(0, span.duration_ns - child_ns.get(span.span_id, 0))
        if span.parent_id is None:
            covered += span.duration_ns
    return Profile(
        label=label,
        wall_ns=wall_ns,
        covered_ns=min(covered, wall_ns) if wall_ns > 0 else covered,
        rows=sorted(rows.values(), key=lambda r: (-r.self_ns, r.name)),
        metrics=metrics,
    )


def load_profile(path: Union[str, Path]) -> Profile:
    """Read a profile JSON written by ``repro profile --json``."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ProfileError(f"{path}: {exc.strerror or exc}") from exc
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path}: not a profile JSON ({exc})") from exc
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ProfileError(f"{path}: not a profile JSON (no 'rows' key)")
    try:
        rows = [
            ProfileRow(
                name=entry["name"],
                count=entry["count"],
                total_ns=entry["total_ns"],
                self_ns=entry["self_ns"],
                min_ns=entry.get("min_ns", 0),
                max_ns=entry.get("max_ns", 0),
            )
            for entry in payload["rows"]
        ]
    except (KeyError, TypeError) as exc:
        raise ProfileError(f"{path}: malformed profile row ({exc})") from exc
    metrics = payload.get("metrics")
    return Profile(
        label=payload.get("label", ""),
        wall_ns=payload.get("wall_ns", 0),
        covered_ns=payload.get("covered_ns", 0),
        rows=rows,
        metrics=snapshot_from_dict(metrics) if metrics else None,
    )


def _ms(value_ns: float) -> str:
    return f"{value_ns / 1e6:.3f}"


def render_profile(profile: Profile, *, top: int = 20) -> str:
    """The per-kernel hot-path table the CLI prints."""
    lines = [
        f"profile: {profile.label or '(unlabelled)'}",
        f"  wall: {_ms(profile.wall_ns)} ms, span coverage: "
        f"{profile.coverage:.1%}",
    ]
    header = (
        f"  {'span':<28} {'count':>7} {'total ms':>10} {'self ms':>10} "
        f"{'mean ms':>10} {'%self':>6}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    wall = profile.wall_ns or 1
    for row in profile.rows[:top]:
        lines.append(
            f"  {row.name:<28} {row.count:>7} {_ms(row.total_ns):>10} "
            f"{_ms(row.self_ns):>10} {_ms(row.mean_ns):>10} "
            f"{row.self_ns / wall:>6.1%}"
        )
    hidden = len(profile.rows) - top
    if hidden > 0:
        lines.append(f"  ... {hidden} more spans (see --json)")
    return "\n".join(lines)


@dataclass
class ProfileDelta:
    """One row of a profile comparison."""

    name: str
    before_ns: int
    after_ns: int
    before_count: int
    after_count: int

    @property
    def delta_ns(self) -> int:
        return self.after_ns - self.before_ns

    @property
    def ratio(self) -> float:
        """after/before total time (inf for new rows)."""
        if self.before_ns <= 0:
            return float("inf") if self.after_ns > 0 else 1.0
        return self.after_ns / self.before_ns


def diff_profiles(before: Profile, after: Profile) -> List[ProfileDelta]:
    """Row-by-row comparison, sorted by absolute time delta (regressions
    and wins first); rows present on either side are included."""
    names = {row.name for row in before.rows} | {row.name for row in after.rows}
    deltas = []
    for name in names:
        b = before.row(name)
        a = after.row(name)
        deltas.append(
            ProfileDelta(
                name=name,
                before_ns=b.total_ns if b else 0,
                after_ns=a.total_ns if a else 0,
                before_count=b.count if b else 0,
                after_count=a.count if a else 0,
            )
        )
    deltas.sort(key=lambda d: (-abs(d.delta_ns), d.name))
    return deltas


def render_profile_diff(
    before: Profile, after: Profile, *, top: int = 20
) -> str:
    """Text rendering of a profile comparison (regression hunting)."""
    deltas = diff_profiles(before, after)
    lines = [
        f"profile diff: {before.label or 'before'} -> "
        f"{after.label or 'after'}",
        f"  wall: {_ms(before.wall_ns)} ms -> {_ms(after.wall_ns)} ms",
    ]
    header = (
        f"  {'span':<28} {'before ms':>10} {'after ms':>10} "
        f"{'delta ms':>10} {'ratio':>7} {'count':>11}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for delta in deltas[:top]:
        ratio = (
            f"{delta.ratio:.2f}x" if delta.ratio != float("inf") else "new"
        )
        lines.append(
            f"  {delta.name:<28} {_ms(delta.before_ns):>10} "
            f"{_ms(delta.after_ns):>10} {_ms(delta.delta_ns):>10} "
            f"{ratio:>7} {delta.before_count:>5}->{delta.after_count:<5}"
        )
    return "\n".join(lines)
