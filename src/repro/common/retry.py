"""Seeded retry/backoff policy shared across subsystems.

One :class:`RetryPolicy` definition serves three callers with identical
semantics:

* the resilience engine (:mod:`repro.resilience.engine`) — shard retry
  delays inside :func:`align_batch_resilient`;
* the serving client paths (:mod:`repro.serve.bench`) — retrying
  ``429 Retry-After`` responses against a saturated service;
* the distributed coordinator (:mod:`repro.dist.coordinator`) — lease
  reassignment backoff after a node crash/hang/partition.

Determinism contract: the jitter stream is a pure function of
``(seed, key, attempt)``, so a replayed campaign (same seed, same fault
plan) produces byte-identical delay schedules — no ambient RNG state is
read or written.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter.

    Attributes:
        max_retries: retries per work item after its first attempt.
        backoff_base: delay before the first retry, in seconds.
        backoff_factor: multiplier per further retry.
        jitter: fractional jitter added on top (0.25 = up to +25%).
        seed: seed of the jitter stream (same seed → same delays).
    """

    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, key: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of item ``key``."""
        rng = random.Random(
            (self.seed << 24) ^ (key << 8) ^ attempt
        )
        base = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.jitter * rng.random())
