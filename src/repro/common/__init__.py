"""Cross-subsystem utilities shared by the engines and the services.

Code here must stay dependency-light: it is imported by the resilience
engine, the serving stack, and the distributed coordinator alike, so it
may depend only on the standard library.
"""

from .retry import RetryPolicy

__all__ = ["RetryPolicy"]
