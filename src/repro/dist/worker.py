"""Dist worker node: an HTTP shard executor around a warm WorkerPool.

One worker node = one process, one warm
:class:`~repro.align.parallel.WorkerPool`, one tiny HTTP server:

``GET /health``
    Liveness + identity: node name, **incarnation** (bumped every time a
    supervisor respawns the process — the coordinator uses it to tell a
    revived node from a flapping one), pool shape, shards completed.

``POST /shard``
    Body: a :class:`~repro.dist.protocol.ShardRequest`.  The node checks
    the aligner fingerprint (409 on mismatch — a coordinator for a
    different run), executes the shard through its pool, and replies
    with a :class:`~repro.dist.protocol.ShardCompletion` echoing the
    lease epoch.  Under chaos the request carries a planned
    :class:`~repro.dist.protocol.NodeFault` which the node acts out
    (crash, stall, drop the connection) — deterministic fault injection
    at the node boundary, same philosophy as the worker-layer faults in
    :mod:`repro.resilience.injectors`.

The pool is *reused* across shards (warm-pool economics from
:mod:`repro.serve`), and observability buffers captured inside pool
workers are forwarded in the completion so the coordinator can merge
per-node spans/metrics across process boundaries.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Optional, Tuple

from ..align.base import Aligner
from ..align.parallel import WorkerPool, _align_shard
from ..serve.cache import aligner_fingerprint
from .protocol import (
    DistError,
    ProtocolError,
    ShardCompletion,
    ShardRequest,
    shard_checksum,
)

#: Refuse request bodies larger than this.
MAX_BODY_BYTES = 32 * 1024 * 1024


def _execute_dist_shard(payload):
    """Worker-pool entry point for one dist shard (dsan root).

    Module-level so it pickles under every start method; delegates to the
    shared shard body so dist nodes inherit the exact kernel semantics —
    and the exact worker-purity guarantees — of the local engines.
    """
    return _align_shard(payload)


class DistWorker:
    """Shard executor state shared by all handler threads of one node."""

    def __init__(
        self,
        aligner: Aligner,
        *,
        node: str,
        incarnation: int = 1,
        workers: int = 1,
        start_method: Optional[str] = None,
    ) -> None:
        self.aligner = aligner
        self.node = node
        self.incarnation = incarnation
        self.pool = WorkerPool(workers, start_method=start_method)
        self.fingerprint = aligner_fingerprint(aligner)
        self._lock = threading.Lock()
        self.shards_done = 0
        self.faults_honored = 0

    def close(self) -> None:
        self.pool.close()

    def health(self) -> dict:
        with self._lock:
            done = self.shards_done
        return {
            "status": "ok",
            "node": self.node,
            "incarnation": self.incarnation,
            "workers": self.pool.workers,
            "executor": self.pool.executor,
            "pool_generation": self.pool.generation,
            "shards_done": done,
        }

    def execute(self, request: ShardRequest) -> ShardCompletion:
        """Run one leased shard through the warm pool."""
        if request.fingerprint and request.fingerprint != self.fingerprint:
            raise DistError(
                f"aligner fingerprint mismatch: coordinator sent "
                f"{request.fingerprint!r}, node runs {self.fingerprint!r}"
            )
        want_obs = request.want_obs and self.pool.process_mode
        payload = (
            self.aligner,
            request.pairs,
            request.traceback,
            False,
            want_obs,
        )
        started = time.perf_counter()
        handle = self.pool.submit(_execute_dist_shard, payload)
        results, _stats, _elapsed, _worker, buffers = handle.get()
        spans, metrics = buffers
        with self._lock:
            self.shards_done += 1
        return ShardCompletion(
            shard_id=request.shard_id,
            epoch=request.epoch,
            node=self.node,
            incarnation=self.incarnation,
            checksum=shard_checksum(request.pairs),
            results=results,
            elapsed=time.perf_counter() - started,
            spans=spans,
            metrics=metrics,
        )


class DistWorkerHandler(BaseHTTPRequestHandler):
    """Routes node HTTP traffic into the shared :class:`DistWorker`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-dist-worker/1.0"

    @property
    def worker(self) -> DistWorker:
        return self.server.worker  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging."""

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._send_json(200, self.worker.health())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/shard":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                400,
                {
                    "error": "Content-Length required and <= "
                    f"{MAX_BODY_BYTES} bytes"
                },
            )
            return
        body = self.rfile.read(length)
        try:
            request = ShardRequest.from_json(body)
        except ProtocolError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        fault = request.fault
        if fault is not None and fault.kind == "kill":
            # Crash mid-shard: the process dies before any reply — the
            # coordinator sees the connection reset and the supervisor
            # (if any) respawns the node under a new incarnation.
            self.worker.faults_honored += 1
            os._exit(3)
        if fault is not None and fault.kind == "slow":
            # Stall *below* the lease timeout, then answer normally: the
            # coordinator absorbs the latency without a retry.
            self.worker.faults_honored += 1
            time.sleep(max(0.0, fault.seconds))
        try:
            completion = self.worker.execute(request)
        except DistError as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except Exception as exc:  # noqa: BLE001 - never drop the reply
            self._send_json(
                500,
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
            )
            return
        if fault is not None and fault.kind == "hang":
            # Zombie path: the work is *done*, but the reply stalls past
            # the lease timeout.  By the time it lands, the coordinator
            # has re-leased the shard under a higher epoch, so this
            # completion echoes a stale epoch and must be discarded.
            self.worker.faults_honored += 1
            time.sleep(max(0.0, fault.seconds))
        elif fault is not None and fault.kind == "partition":
            # Network partition at the worst moment: the shard executed,
            # but the reply never crosses the wire — drop the connection.
            self.worker.faults_honored += 1
            self.close_connection = True
            with contextlib.suppress(OSError):
                self.connection.shutdown(socket.SHUT_RDWR)
            return
        self._send_raw(200, completion.to_json())

    def _send_json(self, code: int, payload: dict) -> None:
        self._send_raw(code, json.dumps(payload).encode("utf-8"))

    def _send_raw(self, code: int, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class DistWorkerServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`DistWorker`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], worker: DistWorker) -> None:
        super().__init__(address, DistWorkerHandler)
        self.worker = worker


@contextlib.contextmanager
def running_worker(
    aligner: Aligner,
    *,
    node: str = "node",
    incarnation: int = 1,
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    start_method: Optional[str] = None,
) -> Iterator[Tuple[DistWorker, str]]:
    """Run a worker node on a background thread (tests / embedding).

    Yields ``(worker, base_url)``; ``port=0`` binds an ephemeral port.
    """
    worker = DistWorker(
        aligner,
        node=node,
        incarnation=incarnation,
        workers=workers,
        start_method=start_method,
    )
    server = DistWorkerServer((host, port), worker)
    thread = threading.Thread(
        target=server.serve_forever,
        name=f"repro-dist-{node}",
        daemon=True,
    )
    thread.start()
    bound = server.server_address
    try:
        yield worker, f"http://{bound[0]}:{bound[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join()
        worker.close()


def run_worker(
    aligner: Aligner,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    node: str = "node",
    incarnation: int = 1,
    workers: int = 1,
    start_method: Optional[str] = None,
    on_bound=None,
) -> None:
    """Run a worker node in the foreground (the ``repro dist worker`` CLI).

    ``on_bound`` (if given) receives the bound ``(host, port)`` once the
    socket is listening — the supervisor's port handshake.  Blocks in
    ``serve_forever`` until interrupted.
    """
    worker = DistWorker(
        aligner,
        node=node,
        incarnation=incarnation,
        workers=workers,
        start_method=start_method,
    )
    server = None
    # A respawned node rebinds the port its predecessor just died on;
    # give the kernel a beat to release it instead of failing the spawn.
    for remaining in range(39, -1, -1):
        try:
            server = DistWorkerServer((host, port), worker)
            break
        except OSError:
            if remaining == 0:
                raise
            time.sleep(0.05)
    assert server is not None
    if on_bound is not None:
        on_bound(server.server_address[0], server.server_address[1])
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        worker.close()


def _worker_entry(
    conn,
    aligner: Aligner,
    host: str,
    port: int,
    node: str,
    incarnation: int,
    workers: int,
    start_method: Optional[str] = None,
) -> None:
    """``multiprocessing.Process`` target for a supervised worker node.

    Reports the bound port through ``conn`` (the supervisor's handshake
    pipe) and then serves until killed.
    """

    def _on_bound(_host: str, bound_port: int) -> None:
        conn.send(bound_port)
        conn.close()

    run_worker(
        aligner,
        host=host,
        port=port,
        node=node,
        incarnation=incarnation,
        workers=workers,
        start_method=start_method,
        on_bound=_on_bound,
    )
