"""Wire protocol between the dist coordinator and its worker nodes.

Everything crossing the HTTP boundary is plain JSON, built on the same
lossless result serialisation the checkpoint journal uses
(:func:`repro.resilience.checkpoint.serialize_result`), so a completion
that travelled through a node is byte-identical to one computed locally.

Messages:

* :class:`ShardRequest` — ``POST /shard`` body: the leased pair range,
  its lease ``epoch``, the aligner fingerprint the node must match, and
  (under chaos) the planned :class:`NodeFault` the node must act out.
* :class:`ShardCompletion` — the node's reply: serialised results,
  input checksum, the *echoed* lease epoch (the coordinator's staleness
  test), node identity/incarnation, and drained observability buffers.

The lease **epoch** is the exactly-once primitive: each time a shard is
(re)leased its epoch increments, and only a completion echoing the
current epoch may be accounted.  A zombie node finishing work after its
lease expired echoes a stale epoch and is discarded byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..align.base import AlignmentResult
from ..resilience.checkpoint import deserialize_result, serialize_result


class DistError(RuntimeError):
    """Root of the distributed-execution error hierarchy."""


class ProtocolError(DistError):
    """A message crossing the coordinator/worker boundary is malformed."""


class StaleLeaseError(DistError):
    """A completion echoed an expired lease epoch (zombie node)."""


#: Node-level fault kinds the chaos harness can inject mid-shard.
#:
#: * ``kill`` — the worker process exits immediately (crash).
#: * ``hang`` — the node computes, then stalls past the lease timeout
#:   before replying: its completion arrives with a stale epoch (zombie).
#: * ``slow`` — the node stalls *below* the lease timeout, then replies
#:   normally: absorbed latency, no retry needed.
#: * ``partition`` — the node computes, then drops the connection without
#:   replying (network partition at the worst moment).
NODE_FAULT_KINDS = ("kill", "hang", "slow", "partition")


@dataclass(frozen=True)
class NodeFault:
    """One planned node-level fault, pinned to a shard.

    Attributes:
        kind: one of :data:`NODE_FAULT_KINDS`.
        shard: the shard index the fault fires on (first dispatch).
        seconds: stall duration for ``hang``/``slow`` (ignored otherwise).
    """

    kind: str
    shard: int
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in NODE_FAULT_KINDS:
            raise ProtocolError(
                f"unknown node fault kind {self.kind!r} "
                f"(have {NODE_FAULT_KINDS})"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "shard": self.shard,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeFault":
        try:
            return cls(
                kind=data["kind"],
                shard=int(data["shard"]),
                seconds=float(data.get("seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed node fault: {exc}") from exc


@dataclass
class ShardRequest:
    """``POST /shard`` body: one leased work item."""

    shard_id: int
    epoch: int
    lo: int
    hi: int
    pairs: List[Tuple[str, str]]
    traceback: bool = True
    fingerprint: str = ""
    want_obs: bool = False
    fault: Optional[NodeFault] = None

    def to_json(self) -> bytes:
        payload = {
            "shard_id": self.shard_id,
            "epoch": self.epoch,
            "lo": self.lo,
            "hi": self.hi,
            "pairs": [list(pair) for pair in self.pairs],
            "traceback": self.traceback,
            "fingerprint": self.fingerprint,
            "want_obs": self.want_obs,
            "fault": self.fault.to_dict() if self.fault else None,
        }
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_json(cls, body: bytes) -> "ShardRequest":
        try:
            data = json.loads(body.decode("utf-8"))
            pairs = [(str(p), str(t)) for p, t in data["pairs"]]
            return cls(
                shard_id=int(data["shard_id"]),
                epoch=int(data["epoch"]),
                lo=int(data["lo"]),
                hi=int(data["hi"]),
                pairs=pairs,
                traceback=bool(data.get("traceback", True)),
                fingerprint=str(data.get("fingerprint", "")),
                want_obs=bool(data.get("want_obs", False)),
                fault=(
                    NodeFault.from_dict(data["fault"])
                    if data.get("fault")
                    else None
                ),
            )
        except ProtocolError:
            raise
        except (
            UnicodeDecodeError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ) as exc:
            raise ProtocolError(f"malformed shard request: {exc}") from exc


@dataclass
class ShardCompletion:
    """A node's reply to a :class:`ShardRequest`.

    ``epoch`` echoes the lease the node worked under — the coordinator's
    exactly-once staleness test.  ``spans``/``metrics`` are the node's
    drained observability buffers (see
    :func:`repro.align.parallel._absorb_obs_buffers`).
    """

    shard_id: int
    epoch: int
    node: str
    incarnation: int
    checksum: int
    results: List[AlignmentResult]
    elapsed: float = 0.0
    spans: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None

    def to_json(self) -> bytes:
        payload = {
            "shard_id": self.shard_id,
            "epoch": self.epoch,
            "node": self.node,
            "incarnation": self.incarnation,
            "checksum": self.checksum,
            "results": [serialize_result(result) for result in self.results],
            "elapsed": self.elapsed,
            "spans": self.spans,
            "metrics": self.metrics,
        }
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_json(cls, body: bytes) -> "ShardCompletion":
        try:
            data = json.loads(body.decode("utf-8"))
            return cls(
                shard_id=int(data["shard_id"]),
                epoch=int(data["epoch"]),
                node=str(data["node"]),
                incarnation=int(data["incarnation"]),
                checksum=int(data["checksum"]),
                results=[
                    deserialize_result(item) for item in data["results"]
                ],
                elapsed=float(data.get("elapsed", 0.0)),
                spans=list(data.get("spans") or ()),
                metrics=data.get("metrics"),
            )
        except (
            UnicodeDecodeError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ) as exc:
            raise ProtocolError(f"malformed shard completion: {exc}") from exc


def shard_checksum(pairs: List[Tuple[str, str]]) -> int:
    """Order-sensitive CRC over a shard's pairs (mirrors the engine's)."""
    from ..resilience.injectors import pair_checksum

    checksum = 0
    for pattern, text in pairs:
        checksum = (
            checksum * 1000003 + pair_checksum(pattern, text)
        ) & 0xFFFFFFFF
    return checksum
