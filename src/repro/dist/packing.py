"""Predicted-cost shard packing and node selection.

The coordinator does not know how long a shard will take on any given
node, but it *can* predict the relative kernel work per pair from the
closed-form cost model (:func:`repro.sim.cost_model.predict_pair_cost`
— Scrooge's work-avoidance framing: never pay for an alignment to learn
its price).  Packing uses that signal twice:

* **shard cutting** — contiguous pairs are greedily packed until either
  the pair cap or the cost budget is hit, so one monster pair does not
  ride in a shard with fifteen cheap ones.  Shards stay contiguous
  ``[lo, hi)`` ranges because the checkpoint journal keys on ranges.
* **node choice** — every node carries an EWMA of its measured speed
  (predicted cost per wall second) and the predicted cost of its
  outstanding leases; the next shard goes to the node that would finish
  it soonest.  A fresh node with no history gets optimistic defaults so
  it is probed early.  Ties break by node name — deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..align.batch import PairLike
from ..align.parallel import DEFAULT_SHARD_SIZE, iter_shards
from ..sim.cost_model import predict_pair_cost


@dataclass
class PackedShard:
    """One contiguous work item with its predicted kernel cost."""

    shard_id: int
    lo: int
    hi: int
    pairs: List[Tuple[str, str]]
    cost: int

    @property
    def size(self) -> int:
        return len(self.pairs)


def pack_shards(
    aligner,
    pairs: Iterable[PairLike],
    *,
    shard_size: Optional[int] = None,
    traceback: bool = True,
    cost_budget: Optional[int] = None,
) -> List[PackedShard]:
    """Cut ``pairs`` into contiguous, cost-annotated shards.

    ``shard_size`` caps the pair count per shard; ``cost_budget`` caps
    its predicted cost (default: ``shard_size`` x the batch's mean pair
    cost, so uniform batches pack exactly like the plain sharder while
    skewed batches split around expensive pairs).  A single pair always
    fits, whatever its cost — shards are never empty.
    """
    size = shard_size if shard_size is not None else DEFAULT_SHARD_SIZE
    if size < 1:
        raise ValueError(f"shard size must be positive, got {size}")
    flat: List[Tuple[str, str]] = []
    for shard in iter_shards(pairs, 1024):
        flat.extend(shard)
    costs = [
        predict_pair_cost(
            aligner, len(pattern), len(text), traceback=traceback
        )
        for pattern, text in flat
    ]
    if cost_budget is None and flat:
        cost_budget = max(1, (sum(costs) // len(flat)) * size)
    packed: List[PackedShard] = []
    lo = 0
    current: List[Tuple[str, str]] = []
    current_cost = 0
    for index, (pair, cost) in enumerate(zip(flat, costs)):
        if current and (
            len(current) >= size
            or (cost_budget is not None and current_cost + cost > cost_budget)
        ):
            packed.append(
                PackedShard(len(packed), lo, index, current, current_cost)
            )
            lo = index
            current = []
            current_cost = 0
        current.append(pair)
        current_cost += cost
    if current:
        packed.append(
            PackedShard(len(packed), lo, len(flat), current, current_cost)
        )
    return packed


def pick_node(
    candidates: Sequence[Tuple[str, int, float]],
    shard_cost: int,
) -> Optional[str]:
    """Choose the node expected to finish ``shard_cost`` units soonest.

    ``candidates`` rows are ``(name, outstanding_cost, ewma_speed)`` with
    speed in predicted-cost units per second (0 = no history yet → the
    node is probed with the optimistic assumption it is instantaneous).
    Returns the chosen name, or ``None`` when no candidates exist.
    """
    best_name: Optional[str] = None
    best_eta: Optional[float] = None
    for name, outstanding, speed in sorted(candidates):
        if speed <= 0.0:
            eta = 0.0 if outstanding <= 0 else float(outstanding)
        else:
            eta = (outstanding + shard_cost) / speed
        if best_eta is None or eta < best_eta:
            best_eta = eta
            best_name = name
    return best_name
