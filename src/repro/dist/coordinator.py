"""Dist coordinator: lease shards to nodes, account results exactly once.

The coordinator owns the batch.  It cuts predicted-cost-balanced shards
(:mod:`.packing`), then drives a lease state machine per shard::

    PENDING ──lease──▶ LEASED(node, epoch, deadline)
       ▲                   │
       │   expire/fail     │ completion echoing the *current* epoch
       └───────────────────┤
        (epoch += 1,       ▼
         seeded backoff) COMPLETED (journalled once, exactly)

* **Leases** — a shard is leased to one node at a time; the lease
  carries an **epoch** that increments on every (re)lease.  Only a
  completion echoing the current epoch is accounted; anything else is a
  zombie reply from an expired lease and is discarded byte-identically
  (``stale_discards``).
* **Heartbeats** — a background thread polls every node's ``/health``.
  A dead node's leases expire immediately (no need to wait out the
  deadline); a node answering with a *new* incarnation was respawned by
  its supervisor and gets a clean failure slate (un-quarantined).
* **Exactly-once accounting** — completions are recorded in the
  resilience :class:`~repro.resilience.checkpoint.CheckpointJournal`
  (when a checkpoint path is given) keyed by pair range, with the lease
  epoch and node as provenance; ``journal.has`` is the final guard that
  no shard is ever accounted twice, and a resumed run replays
  journalled shards instead of re-leasing them.
* **Quarantine** — ``max_node_failures`` consecutive failures bench a
  node, exactly like pair quarantine in the resilience engine; a
  respawned incarnation is paroled.
* **Graceful degradation** — with zero usable nodes (none configured,
  all dead, or all quarantined past a grace window) the remaining
  shards run inline through the local shard body and the batch still
  completes, byte-identical.
"""

from __future__ import annotations

import http.client
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple
from urllib.parse import urlsplit

from ..align.base import Aligner, KernelStats
from ..align.batch import BatchResult, PairLike
from ..align.parallel import (
    DEFAULT_SHARD_SIZE,
    BatchTelemetry,
    ShardTelemetry,
    _absorb_obs_buffers,
    _align_shard,
)
from ..common.retry import RetryPolicy
from ..obs import runtime as obs
from ..resilience.checkpoint import CheckpointJournal
from ..serve.cache import aligner_fingerprint
from .packing import PackedShard, pack_shards, pick_node
from .protocol import (
    DistError,
    NodeFault,
    ProtocolError,
    ShardCompletion,
    ShardRequest,
    shard_checksum,
)


class NoUsableNodeError(DistError):
    """Every node is dead or quarantined (internal fallback trigger)."""


@dataclass(frozen=True)
class NodeHandle:
    """One configured worker node: a name and its base URL."""

    name: str
    url: str

    @property
    def address(self) -> Tuple[str, int]:
        parts = urlsplit(self.url)
        if not parts.hostname or not parts.port:
            raise DistError(f"node {self.name}: URL {self.url!r} needs host:port")
        return parts.hostname, parts.port


@dataclass
class DistConfig:
    """Coordinator tuning knobs.

    Attributes:
        lease_timeout: seconds a node holds a shard before the lease
            expires and the shard is re-leased elsewhere.
        heartbeat_interval: seconds between ``/health`` polls per node.
        connect_timeout: socket timeout for heartbeats.
        dispatch_slack: extra read-timeout seconds past the lease on the
            dispatch connection (so zombie replies are still *observed*
            and counted as stale rather than vanishing).
        max_node_failures: consecutive failures before quarantine.
        max_leases_per_node: concurrent shards leased to one node.
        retry: shared seeded backoff policy for lease reassignment.
        local_fallback_after: seconds with zero usable nodes before the
            coordinator degrades to local execution (immediately when no
            nodes are configured at all).  ``None`` → ``lease_timeout``.
        drain_timeout: seconds to wait at the end for outstanding zombie
            dispatch threads, so late stale replies are accounted.
        shard_size: pair cap per packed shard.
    """

    lease_timeout: float = 5.0
    heartbeat_interval: float = 0.5
    connect_timeout: float = 2.0
    dispatch_slack: float = 2.0
    max_node_failures: int = 3
    max_leases_per_node: int = 2
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=8, backoff_base=0.05, jitter=0.25
        )
    )
    local_fallback_after: Optional[float] = None
    drain_timeout: float = 10.0
    shard_size: Optional[int] = None


@dataclass
class _NodeState:
    """Coordinator-side view of one node (mutated only by the run loop
    and — for liveness fields, under ``lock`` — the heartbeat thread)."""

    handle: NodeHandle
    alive: bool = True
    incarnation: Optional[int] = None
    consecutive_failures: int = 0
    quarantined: bool = False
    outstanding_cost: int = 0
    ewma_speed: float = 0.0
    leases: int = 0
    completed: int = 0
    failures: int = 0
    stale: int = 0
    respawns_seen: int = 0

    def usable(self) -> bool:
        return self.alive and not self.quarantined

    def to_dict(self) -> dict:
        return {
            "url": self.handle.url,
            "alive": self.alive,
            "incarnation": self.incarnation,
            "quarantined": self.quarantined,
            "completed": self.completed,
            "failures": self.failures,
            "stale_replies": self.stale,
            "respawns_seen": self.respawns_seen,
            "ewma_speed": round(self.ewma_speed, 1),
        }


@dataclass
class _Lease:
    shard_id: int
    epoch: int
    node: str
    deadline: float
    started: float
    attempt: int


@dataclass
class NodeFaultRecord:
    """Ledger entry: what happened to one planned node fault."""

    fault: NodeFault
    outcome: str = "planned"
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "fault": self.fault.to_dict(),
            "outcome": self.outcome,
            "detail": self.detail,
        }


#: Ledger outcomes that count as fully accounted for.
ACCOUNTED_OUTCOMES = (
    "absorbed",        # slow node finished within its lease
    "retried",         # crash/partition detected, shard re-leased
    "expired",         # lease timed out; zombie reply never surfaced
    "stale-discarded", # zombie reply arrived and was rejected by epoch
    "degraded",        # its shard completed through the local fallback
)


@dataclass
class DistCounters:
    """Aggregate accounting of one distributed run."""

    shards: int = 0
    leases_granted: int = 0
    leases_expired: int = 0
    lease_failures: int = 0
    stale_discards: int = 0
    retries: int = 0
    nodes_quarantined: int = 0
    nodes_paroled: int = 0
    local_shards: int = 0
    resumed_shards: int = 0
    corrupt_completions: int = 0
    journal_writes: int = 0

    def to_dict(self) -> dict:
        return dict(vars(self))


@dataclass
class DistBatchResult:
    """Outcome of one coordinated batch (mirrors ``BatchResult`` + provenance)."""

    results: List = field(default_factory=list)
    stats: KernelStats = field(default_factory=KernelStats)
    telemetry: Optional[BatchTelemetry] = None
    counters: DistCounters = field(default_factory=DistCounters)
    nodes: Dict[str, dict] = field(default_factory=dict)
    ledger: List[NodeFaultRecord] = field(default_factory=list)

    @property
    def pairs(self) -> int:
        return len(self.results)

    def as_batch_result(self) -> BatchResult:
        """The plain engine-compatible view (for byte-identity checks)."""
        return BatchResult(
            results=list(self.results),
            stats=self.stats.copy(),
            telemetry=self.telemetry,
        )

    def accounted(self) -> bool:
        """True when every planned fault reached a terminal outcome."""
        return all(
            record.outcome in ACCOUNTED_OUTCOMES for record in self.ledger
        )


class DistCoordinator:
    """Drives one batch across a set of worker nodes (single-use)."""

    def __init__(
        self,
        aligner: Aligner,
        nodes: Iterable[NodeHandle],
        *,
        config: Optional[DistConfig] = None,
        checkpoint: Optional[str] = None,
        journal_meta: Optional[dict] = None,
        fault_plan=None,
    ) -> None:
        self.aligner = aligner
        self.config = config if config is not None else DistConfig()
        self.journal_meta = dict(journal_meta) if journal_meta else {}
        if {"aligner", "traceback", "plan"} & set(self.journal_meta):
            raise DistError(
                "journal_meta may not override the reserved keys "
                "aligner/traceback/plan"
            )
        self.nodes: Dict[str, _NodeState] = {}
        for handle in nodes:
            if handle.name in self.nodes:
                raise DistError(f"duplicate node name {handle.name!r}")
            handle.address  # validate URL eagerly  # noqa: B018
            self.nodes[handle.name] = _NodeState(handle)
        self.checkpoint = checkpoint
        self.fingerprint = aligner_fingerprint(aligner)
        self._events: "queue.Queue" = queue.Queue()
        self._node_lock = threading.Lock()
        self._stop = threading.Event()
        self._dispatchers: List[threading.Thread] = []
        self.ledger: Dict[int, NodeFaultRecord] = {}
        if fault_plan is not None:
            for fault in fault_plan.faults:
                self.ledger[fault.shard] = NodeFaultRecord(fault)

    # -- heartbeats ------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval):
            for state in list(self.nodes.values()):
                self._heartbeat_one(state)

    def _heartbeat_one(self, state: _NodeState) -> None:
        host, port = state.handle.address
        try:
            conn = http.client.HTTPConnection(
                host, port, timeout=self.config.connect_timeout
            )
            try:
                conn.request("GET", "/health")
                response = conn.getresponse()
                body = response.read()
            finally:
                conn.close()
            if response.status != 200:
                raise DistError(f"health returned {response.status}")
            import json as _json

            incarnation = int(_json.loads(body).get("incarnation", 1))
        except (OSError, ValueError, http.client.HTTPException, DistError):
            with self._node_lock:
                if state.alive:
                    state.alive = False
                    # The run loop expires this node's leases on its
                    # next tick; wake it up.
                    self._events.put(("node-down", state.handle.name))
            return
        with self._node_lock:
            revived = not state.alive
            state.alive = True
            if (
                state.incarnation is not None
                and incarnation != state.incarnation
            ):
                # Supervisor respawned the node: clean slate.
                state.respawns_seen += 1
                state.consecutive_failures = 0
                if state.quarantined:
                    state.quarantined = False
                    self._events.put(("node-paroled", state.handle.name))
            elif revived:
                state.consecutive_failures = 0
            state.incarnation = incarnation

    # -- dispatch --------------------------------------------------------

    def _dispatch(
        self, shard: PackedShard, lease: _Lease, request: ShardRequest
    ) -> None:
        """Dispatch-thread body: one POST /shard, one event, no locks."""
        read_timeout = self.config.lease_timeout + self.config.dispatch_slack
        if request.fault is not None and request.fault.kind == "hang":
            # Keep the socket open long enough to *observe* the zombie
            # reply — that is the point of the stale-discard ledger.
            read_timeout = max(
                read_timeout,
                request.fault.seconds + self.config.dispatch_slack,
            )
        host, port = self.nodes[lease.node].handle.address
        try:
            conn = http.client.HTTPConnection(host, port, timeout=read_timeout)
            try:
                conn.request(
                    "POST",
                    "/shard",
                    body=request.to_json(),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = response.read()
            finally:
                conn.close()
            if response.status == 200:
                completion = ShardCompletion.from_json(body)
                self._events.put(("completion", lease, completion))
            else:
                self._events.put(
                    (
                        "failure",
                        lease,
                        f"HTTP {response.status}: {body[:160]!r}",
                    )
                )
        except (OSError, http.client.HTTPException, ProtocolError) as exc:
            self._events.put(
                ("failure", lease, f"{type(exc).__name__}: {exc}")
            )

    # -- the run loop ----------------------------------------------------

    def run(
        self,
        pairs: Iterable[PairLike],
        *,
        traceback: bool = True,
    ) -> DistBatchResult:
        config = self.config
        started_wall = time.perf_counter()
        shards = pack_shards(
            self.aligner,
            pairs,
            shard_size=config.shard_size,
            traceback=traceback,
        )
        checksums = {s.shard_id: shard_checksum(s.pairs) for s in shards}
        journal: Optional[CheckpointJournal] = None
        if self.checkpoint:
            journal = CheckpointJournal(
                self.checkpoint,
                {
                    "aligner": self.fingerprint,
                    "traceback": traceback,
                    "plan": None,
                    **self.journal_meta,
                },
            )
        counters = DistCounters(shards=len(shards))
        results_by_shard: Dict[int, list] = {}
        telemetry = BatchTelemetry(
            workers=max(1, len(self.nodes)),
            shard_size=config.shard_size or DEFAULT_SHARD_SIZE,
            executor="dist",
        )
        epochs: Dict[int, int] = {s.shard_id: 0 for s in shards}
        attempts: Dict[int, int] = {s.shard_id: 0 for s in shards}
        leases: Dict[int, _Lease] = {}
        fault_armed: Dict[int, bool] = {}
        by_id = {s.shard_id: s for s in shards}

        # Resume journalled shards before leasing anything.
        if journal is not None:
            for shard in shards:
                cached = journal.lookup(
                    shard.lo, shard.hi, checksums[shard.shard_id]
                )
                if cached is not None:
                    results_by_shard[shard.shard_id] = cached[0]
                    counters.resumed_shards += 1

        pending: "deque[Tuple[float, int]]" = deque(
            (0.0, s.shard_id)
            for s in shards
            if s.shard_id not in results_by_shard
        )
        done = len(results_by_shard)
        total = len(shards)

        heartbeat: Optional[threading.Thread] = None
        if self.nodes:
            heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-dist-heartbeat",
                daemon=True,
            )
            heartbeat.start()
        grace = (
            config.local_fallback_after
            if config.local_fallback_after is not None
            else config.lease_timeout
        )
        last_usable = time.monotonic()

        def _record(shard: PackedShard, results, epoch: int, node: str):
            nonlocal done
            results_by_shard[shard.shard_id] = results
            if journal is not None:
                journal.record(
                    shard.lo,
                    shard.hi,
                    checksums[shard.shard_id],
                    results,
                    epoch=epoch,
                    node=node,
                )
                counters.journal_writes = journal.writes
            done += 1

        def _requeue(lease: _Lease, reason: str) -> None:
            """Invalidate a lease and schedule its shard for re-lease."""
            epochs[lease.shard_id] += 1  # the expired epoch can never land
            leases.pop(lease.shard_id, None)
            state = self.nodes[lease.node]
            state.leases -= 1
            state.outstanding_cost -= by_id[lease.shard_id].cost
            state.failures += 1
            state.consecutive_failures += 1
            if (
                not state.quarantined
                and state.consecutive_failures >= config.max_node_failures
            ):
                state.quarantined = True
                counters.nodes_quarantined += 1
            attempt = attempts[lease.shard_id]
            delay = config.retry.delay(lease.shard_id, max(1, attempt))
            pending.append((time.monotonic() + delay, lease.shard_id))
            counters.retries += 1
            record = self.ledger.get(lease.shard_id)
            if record is not None and record.outcome in ("planned", "armed"):
                record.outcome = (
                    "expired" if reason == "lease expired" else "retried"
                )
                record.detail = f"{reason} on {lease.node}"

        def _run_local(shard: PackedShard) -> None:
            epochs[shard.shard_id] += 1
            results, _stats, elapsed, worker, _buffers = _align_shard(
                (self.aligner, shard.pairs, traceback, False, False)
            )
            _record(shard, results, epochs[shard.shard_id], "local")
            counters.local_shards += 1
            telemetry.shards.append(
                ShardTelemetry(
                    index=shard.shard_id,
                    pairs=shard.size,
                    wall_seconds=elapsed,
                    worker=f"local:{worker}",
                )
            )
            record = self.ledger.get(shard.shard_id)
            if record is not None and record.outcome in (
                "planned",
                "armed",
                "retried",
                "expired",
            ):
                record.outcome = "degraded"
                record.detail = "completed by local fallback"

        try:
            while done < total:
                now = time.monotonic()
                # 1. Expire overdue leases (immediately for dead nodes).
                for lease in list(leases.values()):
                    with self._node_lock:
                        node_dead = not self.nodes[lease.node].alive
                    if node_dead or now >= lease.deadline:
                        counters.leases_expired += 1
                        _requeue(
                            lease,
                            "node died" if node_dead else "lease expired",
                        )
                # 2. Lease ready shards onto usable nodes.
                with self._node_lock:
                    usable = [
                        state
                        for state in self.nodes.values()
                        if state.usable()
                    ]
                if usable:
                    last_usable = now
                ready: List[int] = []
                still_waiting: "deque[Tuple[float, int]]" = deque()
                while pending:
                    at, shard_id = pending.popleft()
                    if shard_id in results_by_shard:
                        continue
                    if at <= now:
                        ready.append(shard_id)
                    else:
                        still_waiting.append((at, shard_id))
                pending = still_waiting
                for shard_id in ready:
                    shard = by_id[shard_id]
                    candidates = [
                        (s.handle.name, s.outstanding_cost, s.ewma_speed)
                        for s in usable
                        if s.leases < config.max_leases_per_node
                    ]
                    chosen = pick_node(candidates, shard.cost)
                    if chosen is None:
                        pending.append((now, shard_id))
                        continue
                    state = self.nodes[chosen]
                    epochs[shard_id] += 1
                    attempts[shard_id] += 1
                    lease = _Lease(
                        shard_id=shard_id,
                        epoch=epochs[shard_id],
                        node=chosen,
                        deadline=now + config.lease_timeout,
                        started=now,
                        attempt=attempts[shard_id],
                    )
                    leases[shard_id] = lease
                    state.leases += 1
                    state.outstanding_cost += shard.cost
                    counters.leases_granted += 1
                    fault = None
                    record = self.ledger.get(shard_id)
                    if record is not None and not fault_armed.get(shard_id):
                        fault = record.fault
                        fault_armed[shard_id] = True
                        record.outcome = "armed"
                        record.detail = f"armed on {chosen}"
                    request = ShardRequest(
                        shard_id=shard_id,
                        epoch=lease.epoch,
                        lo=shard.lo,
                        hi=shard.hi,
                        pairs=shard.pairs,
                        traceback=traceback,
                        fingerprint=self.fingerprint,
                        want_obs=obs.enabled(),
                        fault=fault,
                    )
                    thread = threading.Thread(
                        target=self._dispatch,
                        args=(shard, lease, request),
                        name=f"repro-dist-dispatch-{shard_id}-e{lease.epoch}",
                        daemon=True,
                    )
                    self._dispatchers.append(thread)
                    thread.start()
                # 3. Degrade to local execution with zero usable nodes.
                if not leases and (
                    not self.nodes
                    or (not usable and now - last_usable >= grace)
                ):
                    for _, shard_id in sorted(pending):
                        if shard_id not in results_by_shard:
                            _run_local(by_id[shard_id])
                    pending.clear()
                    continue
                if done >= total:
                    break
                # 4. Sleep until something can happen.
                wake = now + max(0.02, config.heartbeat_interval)
                for lease in leases.values():
                    wake = min(wake, lease.deadline)
                for at, _ in pending:
                    wake = min(wake, at) if at > now else wake
                timeout = max(0.01, wake - now)
                try:
                    event = self._events.get(timeout=timeout)
                except queue.Empty:
                    continue
                self._handle_event(
                    event, by_id, checksums, epochs, leases, counters,
                    telemetry, results_by_shard, _record, _requeue,
                )
        finally:
            self._stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=2.0)

        # Drain outstanding zombie dispatchers so their stale replies are
        # observed and accounted (not lost to interpreter teardown).
        drain_deadline = time.monotonic() + config.drain_timeout
        for thread in self._dispatchers:
            thread.join(timeout=max(0.0, drain_deadline - time.monotonic()))
        while True:
            try:
                event = self._events.get_nowait()
            except queue.Empty:
                break
            self._handle_event(
                event, by_id, checksums, epochs, leases, counters,
                telemetry, results_by_shard, _record, _requeue,
                draining=True,
            )

        results: List = []
        stats = KernelStats()
        for shard in shards:
            shard_results = results_by_shard[shard.shard_id]
            results.extend(shard_results)
            for result in shard_results:
                stats.merge(result.stats)
        telemetry.wall_seconds = time.perf_counter() - started_wall
        with self._node_lock:
            nodes = {
                name: state.to_dict() for name, state in self.nodes.items()
            }
        return DistBatchResult(
            results=results,
            stats=stats,
            telemetry=telemetry,
            counters=counters,
            nodes=nodes,
            ledger=[self.ledger[key] for key in sorted(self.ledger)],
        )

    def _handle_event(
        self,
        event,
        by_id,
        checksums,
        epochs,
        leases,
        counters,
        telemetry,
        results_by_shard,
        record_fn,
        requeue_fn,
        *,
        draining: bool = False,
    ) -> None:
        kind = event[0]
        if kind in ("node-down", "node-paroled"):
            if kind == "node-paroled":
                counters.nodes_paroled += 1
            return
        lease = event[1]
        shard = by_id[lease.shard_id]
        current = epochs[lease.shard_id]
        record = self.ledger.get(lease.shard_id)
        if kind == "completion":
            completion: ShardCompletion = event[2]
            stale = (
                completion.epoch != current
                or lease.shard_id in results_by_shard
            )
            if stale:
                counters.stale_discards += 1
                state = self.nodes.get(completion.node)
                if state is not None:
                    state.stale += 1
                if record is not None and record.outcome in (
                    "armed",
                    "expired",
                ):
                    record.outcome = "stale-discarded"
                    record.detail = (
                        f"zombie completion from {completion.node} "
                        f"(epoch {completion.epoch} != {current})"
                    )
                return
            if completion.checksum != checksums[lease.shard_id]:
                counters.corrupt_completions += 1
                counters.lease_failures += 1
                requeue_fn(lease, "completion checksum mismatch")
                return
            state = self.nodes[lease.node]
            record_fn(shard, completion.results, completion.epoch, lease.node)
            leases.pop(lease.shard_id, None)
            state.leases -= 1
            state.outstanding_cost -= shard.cost
            state.completed += 1
            state.consecutive_failures = 0
            wall = max(1e-6, time.monotonic() - lease.started)
            sample = shard.cost / wall
            state.ewma_speed = (
                sample
                if state.ewma_speed == 0.0
                else 0.7 * state.ewma_speed + 0.3 * sample
            )
            telemetry.shards.append(
                ShardTelemetry(
                    index=shard.shard_id,
                    pairs=shard.size,
                    wall_seconds=completion.elapsed,
                    worker=f"{lease.node}#{completion.incarnation}",
                )
            )
            _absorb_obs_buffers((completion.spans, completion.metrics))
            if record is not None and record.outcome == "armed":
                record.outcome = "absorbed"
                record.detail = f"completed within lease on {lease.node}"
        elif kind == "failure":
            reason: str = event[2]
            if lease.epoch != current or lease.shard_id in results_by_shard:
                # Failure report from an already-expired lease: the shard
                # has moved on; nothing to requeue.
                return
            if draining:
                return
            counters.lease_failures += 1
            requeue_fn(lease, reason)
