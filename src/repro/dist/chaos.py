"""Dist chaos: seeded node-fault campaigns with real worker processes.

The proof obligation mirrors :mod:`repro.resilience.campaign`, one layer
up the stack: boot **real localhost worker processes** under a
:class:`NodeSupervisor` (which respawns killed nodes under a fresh
incarnation, like an init system would), drive a batch through the
:class:`~repro.dist.coordinator.DistCoordinator` while a seeded
:class:`NodeFaultPlan` crashes / hangs / slows / partitions nodes
mid-shard, and then demand:

* **byte-identity** — results and merged kernel stats equal the serial
  engine's, exactly;
* **full accounting** — every planned fault reached a terminal ledger
  outcome (absorbed / retried / expired / stale-discarded / degraded);
* **exactly-once** — the checkpoint journal holds exactly one record
  per shard (no shard executed-and-accounted twice), with the lease
  epoch of each accepted completion as provenance.

Each planned fault targets a *distinct* shard and is armed on that
shard's first dispatch, so a campaign of N faults genuinely fires N
faults — no fault can shadow another.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..align.base import Aligner
from ..align.batch import align_batch
from ..align.parallel import _resolve_start_method
from ..common.retry import RetryPolicy
from ..resilience.checkpoint import CheckpointJournal
from ..workloads.generator import generate_pair_set
from .coordinator import (
    DistBatchResult,
    DistConfig,
    DistCoordinator,
    NodeHandle,
)
from .packing import pack_shards
from .protocol import NODE_FAULT_KINDS, DistError, NodeFault


@dataclass
class NodeFaultPlan:
    """A seeded, replayable set of node-level faults.

    Every fault targets a distinct shard (``rng.sample``), so each one is
    guaranteed to fire on that shard's first dispatch; ``hang`` faults
    stall past the lease timeout (producing zombie completions), ``slow``
    faults stall below it (absorbed latency).
    """

    seed: int
    faults: List[NodeFault] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int,
        faults: int,
        shards: int,
        *,
        hang_seconds: float,
        slow_seconds: float,
        kinds=NODE_FAULT_KINDS,
    ) -> "NodeFaultPlan":
        if faults > shards:
            raise DistError(
                f"cannot plan {faults} faults over {shards} shards "
                f"(each fault needs its own shard)"
            )
        rng = random.Random(seed)
        targets = sorted(rng.sample(range(shards), faults))
        specs = []
        for target in targets:
            kind = kinds[rng.randrange(len(kinds))]
            if kind == "hang":
                seconds = hang_seconds
            elif kind == "slow":
                seconds = slow_seconds
            else:
                seconds = 0.0
            specs.append(NodeFault(kind=kind, shard=target, seconds=seconds))
        return cls(seed=seed, faults=specs)

    def by_kind(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in NODE_FAULT_KINDS}
        for fault in self.faults:
            counts[fault.kind] += 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "NodeFaultPlan":
        data = json.loads(payload)
        return cls(
            seed=int(data["seed"]),
            faults=[NodeFault.from_dict(item) for item in data["faults"]],
        )


class NodeSupervisor:
    """Keeps one worker-node process alive on a stable port.

    The first :meth:`start` binds an ephemeral port (handshaked back
    over a pipe); every respawn rebinds the *same* port under an
    incremented incarnation, so the coordinator's node URL stays valid
    across crashes — exactly what an init system / container restart
    policy provides in production.
    """

    def __init__(
        self,
        aligner: Aligner,
        name: str,
        *,
        workers: int = 1,
        host: str = "127.0.0.1",
        start_method: Optional[str] = None,
    ) -> None:
        self.aligner = aligner
        self.name = name
        self.workers = workers
        self.host = host
        self.port = 0
        self.incarnation = 0
        self.respawns = 0
        self.process: Optional[multiprocessing.Process] = None
        self._method = _resolve_start_method(start_method)
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        from .worker import _worker_entry

        with self._lock:
            self.incarnation += 1
            context = multiprocessing.get_context(self._method)
            parent_conn, child_conn = context.Pipe()
            self.process = context.Process(
                target=_worker_entry,
                args=(
                    child_conn,
                    self.aligner,
                    self.host,
                    self.port,
                    self.name,
                    self.incarnation,
                    self.workers,
                ),
                name=f"repro-dist-{self.name}",
                daemon=True,
            )
            self.process.start()
            child_conn.close()
            if not parent_conn.poll(15.0):
                self.stop()
                raise DistError(
                    f"{self.name}: worker process never reported its port"
                )
            self.port = parent_conn.recv()
            parent_conn.close()

    def ensure_alive(self) -> bool:
        """Respawn the node if its process died; True when it respawned."""
        with self._lock:
            process = self.process
        if process is None or process.is_alive():
            return False
        process.join(timeout=1.0)
        self.respawns += 1
        self.start()
        return True

    def stop(self) -> None:
        with self._lock:
            process = self.process
            self.process = None
        if process is not None and process.is_alive():
            process.terminate()
        if process is not None:
            process.join(timeout=5.0)


@dataclass
class DistCampaignReport:
    """Verdict + evidence of one distributed chaos campaign."""

    seed: int
    nodes: int
    node_workers: int
    pairs: int
    shards: int
    planned: Dict[str, int]
    outcomes: Dict[str, int]
    counters: Dict[str, int]
    node_stats: Dict[str, dict]
    respawns: int
    identical: bool
    accounted: bool
    exactly_once: bool
    journal_entries: int
    wall_seconds: float
    degraded_locally: bool = False

    @property
    def faults(self) -> int:
        return sum(self.planned.values())

    @property
    def ok(self) -> bool:
        return self.identical and self.accounted and self.exactly_once

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "nodes": self.nodes,
            "node_workers": self.node_workers,
            "pairs": self.pairs,
            "shards": self.shards,
            "faults": self.faults,
            "planned": self.planned,
            "outcomes": self.outcomes,
            "counters": self.counters,
            "node_stats": self.node_stats,
            "respawns": self.respawns,
            "identical": self.identical,
            "accounted": self.accounted,
            "exactly_once": self.exactly_once,
            "journal_entries": self.journal_entries,
            "degraded_locally": self.degraded_locally,
            "wall_seconds": round(self.wall_seconds, 2),
            "ok": self.ok,
        }

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        planned = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.planned.items())
        )
        outcomes = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.outcomes.items())
        )
        lines = [
            f"dist chaos campaign: {verdict}",
            f"  seed {self.seed} · {self.faults} faults · "
            f"{self.nodes} nodes x {self.node_workers} pool workers · "
            f"{self.pairs} pairs in {self.shards} shards",
            f"  planned      {planned}",
            f"  outcomes     {outcomes}",
            f"  byte-identical to serial: {self.identical}",
            f"  every fault accounted:    {self.accounted}",
            f"  exactly-once (journal):   {self.exactly_once} "
            f"({self.journal_entries} entries for {self.shards} shards)",
            f"  leases granted/expired:   "
            f"{self.counters.get('leases_granted', 0)}/"
            f"{self.counters.get('leases_expired', 0)}, "
            f"stale discards {self.counters.get('stale_discards', 0)}",
            f"  node respawns {self.respawns}, quarantined "
            f"{self.counters.get('nodes_quarantined', 0)}, "
            f"paroled {self.counters.get('nodes_paroled', 0)}, "
            f"local-fallback shards "
            f"{self.counters.get('local_shards', 0)}",
            f"  wall {self.wall_seconds:.1f}s",
        ]
        return "\n".join(lines)


def _outcome_histogram(dist: DistBatchResult) -> Dict[str, int]:
    outcomes: Dict[str, int] = {}
    for record in dist.ledger:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
    return outcomes


def run_dist_campaign(
    *,
    seed: int = 29,
    faults: int = 100,
    nodes: int = 3,
    node_workers: int = 1,
    length: int = 48,
    error_rate: float = 0.08,
    shard_size: int = 3,
    lease_timeout: float = 1.2,
    aligner: Optional[Aligner] = None,
    checkpoint: Optional[str] = None,
) -> DistCampaignReport:
    """Run one seeded distributed chaos campaign and report the verdict.

    Boots ``nodes`` real localhost worker processes, injects ``faults``
    planned node faults (kill / hang / slow / partition) while a batch
    runs through the coordinator, and compares the outcome byte-for-byte
    against the serial engine.  ~25% of shards are left fault-free so
    clean and faulted paths interleave.
    """
    if aligner is None:
        from ..align.full_gmx import FullGmxAligner

        aligner = FullGmxAligner()
    # Enough shards that every fault owns one, plus clean headroom.
    target_shards = max(faults + max(4, faults // 4), 8)
    pair_count = target_shards * shard_size
    workload = generate_pair_set(
        name=f"dist-chaos-{seed}",
        length=length,
        error_rate=error_rate,
        count=pair_count,
        seed=seed,
    )
    pairs = [(pair.pattern, pair.text) for pair in workload]
    shard_count = len(
        pack_shards(aligner, pairs, shard_size=shard_size)
    )

    reference = align_batch(aligner, pairs)

    plan = NodeFaultPlan.generate(
        seed,
        faults,
        shard_count,
        hang_seconds=lease_timeout * 2.2,
        slow_seconds=lease_timeout * 0.3,
    )

    cleanup_dir: Optional[tempfile.TemporaryDirectory] = None
    if checkpoint is None:
        cleanup_dir = tempfile.TemporaryDirectory(prefix="repro-dist-")
        checkpoint = str(Path(cleanup_dir.name) / "campaign.journal")

    supervisors = [
        NodeSupervisor(aligner, f"node-{index}", workers=node_workers)
        for index in range(nodes)
    ]
    started = time.perf_counter()
    watcher_stop = threading.Event()

    def _watch() -> None:
        while not watcher_stop.wait(0.15):
            for supervisor in supervisors:
                supervisor.ensure_alive()

    watcher = threading.Thread(
        target=_watch, name="repro-dist-watcher", daemon=True
    )
    try:
        for supervisor in supervisors:
            supervisor.start()
        handles = [
            NodeHandle(supervisor.name, supervisor.url)
            for supervisor in supervisors
        ]
        watcher.start()
        config = DistConfig(
            lease_timeout=lease_timeout,
            heartbeat_interval=min(0.25, lease_timeout / 4),
            shard_size=shard_size,
            retry=RetryPolicy(
                max_retries=10, backoff_base=0.05, jitter=0.25, seed=seed
            ),
            drain_timeout=lease_timeout * 2.2 + 4.0,
            max_node_failures=4,
        )
        coordinator = DistCoordinator(
            aligner,
            handles,
            config=config,
            checkpoint=checkpoint,
            fault_plan=plan,
        )
        dist = coordinator.run(pairs)
    finally:
        watcher_stop.set()
        if watcher.is_alive():
            watcher.join(timeout=5.0)
        for supervisor in supervisors:
            supervisor.stop()
    wall = time.perf_counter() - started

    identical = (
        dist.results == reference.results and dist.stats == reference.stats
    )
    # Exactly-once, proven from the journal itself: one record per shard.
    reopened = CheckpointJournal(
        checkpoint,
        {
            "aligner": coordinator.fingerprint,
            "traceback": True,
            "plan": None,
        },
    )
    journal_entries = len(reopened.entries)
    exactly_once = (
        journal_entries == dist.counters.shards
        and dist.counters.journal_writes == dist.counters.shards
    )
    if cleanup_dir is not None:
        cleanup_dir.cleanup()

    return DistCampaignReport(
        seed=seed,
        nodes=nodes,
        node_workers=node_workers,
        pairs=pair_count,
        shards=dist.counters.shards,
        planned=plan.by_kind(),
        outcomes=_outcome_histogram(dist),
        counters=dist.counters.to_dict(),
        node_stats=dist.nodes,
        respawns=sum(s.respawns for s in supervisors),
        identical=identical,
        accounted=dist.accounted(),
        exactly_once=exactly_once,
        journal_entries=journal_entries,
        wall_seconds=wall,
        degraded_locally=dist.counters.local_shards > 0,
    )
