"""Fault-tolerant multi-node shard execution (`repro.dist`).

A **coordinator** cuts a batch into predicted-cost-balanced shards
(:mod:`.packing`), **leases** each shard to a remote **worker node**
(:mod:`.worker` — an HTTP wrapper around a warm
:class:`~repro.align.parallel.WorkerPool`), tracks node liveness with
heartbeats, and accounts every completion **exactly once** through the
resilience checkpoint journal (:mod:`.coordinator`).  Expired leases are
reassigned under the shared seeded retry policy, zombie completions are
discarded by lease epoch, repeatedly failing nodes are quarantined, and
with zero live nodes the whole batch degrades to local execution — the
batch always completes, byte-identical to a serial run.

The chaos proof lives in :mod:`.chaos`: a seeded ≥100-fault campaign
(node kill / hang / slow / partition mid-shard) across real localhost
worker processes, compared byte-for-byte against the serial engine.
"""

from .coordinator import (
    DistBatchResult,
    DistConfig,
    DistCoordinator,
    NodeHandle,
)
from .chaos import (
    DistCampaignReport,
    NodeFaultPlan,
    NodeSupervisor,
    run_dist_campaign,
)
from .packing import PackedShard, pack_shards, pick_node
from .protocol import (
    NODE_FAULT_KINDS,
    DistError,
    NodeFault,
    ProtocolError,
    ShardCompletion,
    ShardRequest,
    StaleLeaseError,
)
from .worker import DistWorker, run_worker, running_worker

__all__ = [
    "DistBatchResult",
    "DistCampaignReport",
    "DistConfig",
    "DistCoordinator",
    "DistError",
    "DistWorker",
    "NODE_FAULT_KINDS",
    "NodeFault",
    "NodeFaultPlan",
    "NodeHandle",
    "NodeSupervisor",
    "PackedShard",
    "ProtocolError",
    "ShardCompletion",
    "ShardRequest",
    "StaleLeaseError",
    "pack_shards",
    "pick_node",
    "run_dist_campaign",
    "run_worker",
    "running_worker",
]
