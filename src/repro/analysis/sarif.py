"""SARIF 2.1.0 export for analysis findings (GitHub code scanning).

``repro lint --format sarif`` and ``repro sanitize --format sarif``
serialise their diagnostics as a minimal Static Analysis Results
Interchange Format log: one run, one rule per diagnostic code seen, one
result per finding.  GitHub's code-scanning upload accepts the output
as-is, which puts REPRO/GMX findings inline on pull requests.

Only locations of the ``path:line`` shape become physical locations;
instruction-stream findings (``label[index]``) carry their location in
the message and a logicalLocation instead — SARIF physical locations
require an artifact on disk.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List

from .diagnostics import CODES, Diagnostic

__all__ = ["to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``path:line`` findings (repo files); anything else is stream-located.
_FILE_WHERE = re.compile(r"^(?P<path>[^:\[\]]+):(?P<line>\d+)$")

_LEVELS = {"error": "error", "warning": "warning"}


def _rule(code: str) -> dict:
    return {
        "id": code,
        "shortDescription": {"text": CODES[code]},
        "helpUri": "https://example.invalid/docs/analysis.md",
    }


def _result(diagnostic: Diagnostic, rule_index: int) -> dict:
    result = {
        "ruleId": diagnostic.code,
        "ruleIndex": rule_index,
        "level": _LEVELS.get(diagnostic.severity.value, "warning"),
        "message": {
            "text": (
                f"{diagnostic.message} (fix: {diagnostic.hint})"
                if diagnostic.hint
                else diagnostic.message
            )
        },
    }
    match = _FILE_WHERE.match(diagnostic.where or "")
    if match:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": match.group("path"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": int(match.group("line"))},
                }
            }
        ]
    elif diagnostic.where:
        result["locations"] = [
            {
                "logicalLocations": [
                    {"fullyQualifiedName": diagnostic.where}
                ]
            }
        ]
    return result


def to_sarif(
    diagnostics: Iterable[Diagnostic], *, tool_name: str = "repro-lint"
) -> dict:
    """Build a SARIF 2.1.0 log dict from a diagnostic list.

    Args:
        diagnostics: findings from any analysis pass.
        tool_name: the driver name (``repro-lint`` / ``repro-sanitize``).
    """
    rules: List[dict] = []
    rule_index: Dict[str, int] = {}
    results: List[dict] = []
    for diagnostic in diagnostics:
        if diagnostic.code not in rule_index:
            rule_index[diagnostic.code] = len(rules)
            rules.append(_rule(diagnostic.code))
        results.append(_result(diagnostic, rule_index[diagnostic.code]))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://example.invalid/docs/analysis.md"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///./"}
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    diagnostics: Iterable[Diagnostic], *, tool_name: str = "repro-lint"
) -> str:
    """The SARIF log as indented JSON text (the ``--format sarif`` body)."""
    return json.dumps(
        to_sarif(diagnostics, tool_name=tool_name), indent=2, sort_keys=True
    )
