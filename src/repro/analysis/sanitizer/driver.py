"""Sanitize driver: one entry point for ``repro sanitize``.

:func:`run_sanitize` composes the sanitizer's passes the way
:func:`repro.analysis.driver.run_lint` composes the lint's:

* **worker-reachability** — the static scan of the installed package
  (:func:`~repro.analysis.sanitizer.reachability.scan_package`);
* **guarded execution** — a seeded batch run through the parallel and
  resilient engines under an armed
  :func:`~repro.analysis.sanitizer.guards.sanitize` session, exercising
  the registry guards and the batch-boundary leak checks on live code;
* **shadow execution** — seeded serial re-execution of sampled shards
  diffed against the parallel digests
  (:func:`~repro.analysis.sanitizer.shadow.shadow_execute`);
* optionally the **violation corpus** — every seeded violation case,
  whose findings/errors are *expected*; ``repro sanitize --corpus``
  exits non-zero by construction, which is the corpus acceptance gate.

Alignment-engine imports stay inside the functions that need them.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..diagnostics import Diagnostic, render_text, summarize
from .guards import SanitizerError, sanitize
from .reachability import ScanReport, scan_package, scan_tree
from .sancorpus import CORPUS_CONFIG, ViolationCase, violation_corpus
from .shadow import ShadowReport, shadow_execute

__all__ = ["SanitizeReport", "run_sanitize"]


@dataclass
class SanitizeReport:
    """Everything one sanitize run produced, ready to render or serialise.

    Attributes:
        diagnostics: static findings from every scanned tree.
        dynamic_errors: :class:`SanitizerError` messages from guarded
            execution (empty on a healthy tree).
        scan: the package reachability scan (``None`` when skipped).
        session: guarded-execution summary (batches checked, audited
            registry mutations).
        shadow: the shadow-execution report (``None`` when skipped).
        corpus_cases / corpus_matched: violation-corpus accounting.
        sections: pass name → diagnostics of that pass.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    dynamic_errors: List[str] = field(default_factory=list)
    scan: Optional[ScanReport] = None
    session: Optional[Dict[str, object]] = None
    shadow: Optional[ShadowReport] = None
    corpus_cases: int = 0
    corpus_matched: int = 0
    sections: Dict[str, List[Diagnostic]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """No static findings, no runtime violations, no shadow drift."""
        return (
            not self.diagnostics
            and not self.dynamic_errors
            and (self.shadow is None or self.shadow.clean)
        )

    def to_dict(self) -> dict:
        """JSON-ready form (``repro sanitize --format json``)."""
        return {
            "clean": self.clean,
            "summary": summarize(self.diagnostics),
            "dynamic_errors": list(self.dynamic_errors),
            "scan": self.scan.to_dict() if self.scan else None,
            "session": self.session,
            "shadow": self.shadow.to_dict() if self.shadow else None,
            "corpus_cases": self.corpus_cases,
            "corpus_matched": self.corpus_matched,
            "sections": {
                name: [d.to_dict() for d in diags]
                for name, diags in self.sections.items()
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable multi-section report."""
        lines: List[str] = []
        for name, diags in self.sections.items():
            status = "clean" if not diags else f"{len(diags)} diagnostics"
            lines.append(f"[{name}] {status}")
            if diags:
                lines.append(render_text(diags))
        if self.scan is not None:
            lines.append(
                f"worker-reachability: {len(self.scan.reachable)} functions "
                f"reachable from {len(self.scan.roots)} roots across "
                f"{self.scan.modules} modules "
                f"({len(self.scan.suppressed)} suppressed)"
            )
        if self.session is not None:
            lines.append(
                f"guarded execution: "
                f"{self.session['batches_checked']} batch boundaries checked, "
                f"{self.session['registry_mutations_audited']} registry "
                f"mutations audited"
            )
        for message in self.dynamic_errors:
            lines.append(f"dynamic violation: {message}")
        if self.shadow is not None:
            verdict = (
                "digests identical"
                if self.shadow.clean
                else f"{len(self.shadow.mismatches)} shard(s) diverged"
            )
            lines.append(
                f"shadow execution: {len(self.shadow.sampled)}/"
                f"{self.shadow.shards} shards re-executed serially, {verdict}"
            )
            for mismatch in self.shadow.mismatches:
                lines.append(f"  {mismatch.render()}")
        if self.corpus_cases:
            lines.append(
                f"violation corpus: {self.corpus_matched}/{self.corpus_cases} "
                f"cases produced their annotated violations"
            )
        lines.append("sanitize: clean" if self.clean else "sanitize: DIRTY")
        return "\n".join(lines)


def _seeded_pairs(
    seed: int, count: int, *, tile_size: int = 32
) -> List[Tuple[str, str]]:
    """Deterministic alignment pairs for the dynamic/shadow passes."""
    from ...workloads.generator import generate_pair

    rng = random.Random(f"dsan-pairs:{seed}")
    pairs: List[Tuple[str, str]] = []
    for _ in range(count):
        length = rng.randint(tile_size, 3 * tile_size)
        error = rng.choice((0.0, 0.05, 0.15))
        pair = generate_pair(length, error, rng)
        pairs.append((pair.pattern, pair.text))
    return pairs


def _guarded_execution(
    report: SanitizeReport,
    pairs: List[Tuple[str, str]],
    *,
    workers: int,
    tile_size: int,
) -> None:
    """Run the parallel and resilient engines under an armed session."""
    from ...align.full_gmx import FullGmxAligner
    from ...align.parallel import align_batch_sharded
    from ...resilience.engine import align_batch_resilient

    aligner = FullGmxAligner(tile_size=tile_size)
    try:
        with sanitize() as session:
            align_batch_sharded(
                aligner, pairs, workers=workers, shard_size=4
            )
            align_batch_resilient(aligner, pairs, workers=1, shard_size=4)
            report.session = session.summary()
    except SanitizerError as exc:
        report.dynamic_errors.append(str(exc))


def _shadow_pass(
    report: SanitizeReport,
    pairs: List[Tuple[str, str]],
    *,
    seed: int,
    workers: int,
    sample: int,
    tile_size: int,
) -> None:
    from ...align.full_gmx import FullGmxAligner

    aligner = FullGmxAligner(tile_size=tile_size)
    report.shadow = shadow_execute(
        aligner,
        pairs,
        workers=workers,
        shard_size=4,
        sample=sample,
        seed=seed,
    )


def _run_corpus(report: SanitizeReport, seed: int) -> None:
    """Run every violation case; expected findings land in the report."""
    corpus_diags: List[Diagnostic] = []
    for case in violation_corpus(seed=seed):
        if case.kind == "static":
            matched = _run_static_case(case, corpus_diags)
        else:
            matched = _run_dynamic_case(case, report)
        report.corpus_cases += 1
        if matched:
            report.corpus_matched += 1
    report.sections["violation-corpus"] = corpus_diags
    report.diagnostics.extend(corpus_diags)


def _run_static_case(
    case: ViolationCase, corpus_diags: List[Diagnostic]
) -> bool:
    with tempfile.TemporaryDirectory(prefix="dsan-corpus-") as tmp:
        root = Path(tmp)
        for relative, source in case.files.items():
            target = root / relative
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        scan = scan_tree(root, config=CORPUS_CONFIG)
    corpus_diags.extend(scan.findings)
    got = tuple(sorted((d.code, d.where) for d in scan.findings))
    return got == case.expect


def _run_dynamic_case(case: ViolationCase, report: SanitizeReport) -> bool:
    try:
        with sanitize():
            try:
                case.trigger()
            except SanitizerError:
                return True  # the violation was caught — case passes
            return False  # violation went unnoticed
    except SanitizerError as exc:
        # Leak escaped to the session boundary instead of the batch one.
        report.dynamic_errors.append(f"corpus case {case.name}: {exc}")
        return False


def run_sanitize(
    *,
    seed: int = 0,
    static: bool = True,
    dynamic: bool = True,
    shadow: bool = True,
    corpus: bool = False,
    pairs: int = 12,
    workers: int = 2,
    sample: int = 3,
    tile_size: int = 32,
) -> SanitizeReport:
    """Run the configured sanitizer passes into a :class:`SanitizeReport`.

    Args:
        seed: seed for pair generation, shadow sampling, and the corpus.
        static: run the worker-reachability scan of the package.
        dynamic: run the engines under registry guards and leak checks.
        shadow: run shadow execution (serial re-execution + digest diff).
        corpus: also run the violation corpus (findings expected; the
            report goes dirty by construction).
        pairs: seeded pairs for the dynamic/shadow batches.
        workers: worker processes for the parallel runs.
        sample: shards re-executed serially by the shadow pass.
        tile_size: GMX tile dimension of the exercised aligner.
    """
    report = SanitizeReport()

    if static:
        scan = scan_package()
        report.scan = scan
        report.sections["worker-reachability"] = list(scan.findings)
        report.diagnostics.extend(scan.findings)

    batch_pairs = (
        _seeded_pairs(seed, pairs, tile_size=tile_size)
        if (dynamic or shadow)
        else []
    )
    if dynamic:
        _guarded_execution(
            report, batch_pairs, workers=workers, tile_size=tile_size
        )
    if shadow:
        _shadow_pass(
            report,
            batch_pairs,
            seed=seed,
            workers=workers,
            sample=sample,
            tile_size=tile_size,
        )
    if corpus:
        _run_corpus(report, seed)
    return report
