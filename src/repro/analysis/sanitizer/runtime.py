"""Ambient sanitizer state: the armed flag and the per-batch check hooks.

This module is the sanitizer's footprint inside the batch engines.  It is
deliberately tiny and imports nothing but the standard library, so that
:mod:`repro.align.parallel` and :mod:`repro.resilience.engine` can import
it unconditionally without creating an import cycle and without paying for
the heavy analysis machinery.

While the sanitizer is disarmed (the default), :func:`batch_begin` is a
single module-flag check returning ``None`` and :func:`batch_end` is a
single ``is None`` test — the cost the ``test_sanitizer_overhead``
benchmark bounds at <5%, mirroring :mod:`repro.obs.runtime`.

:func:`repro.analysis.sanitizer.guards.sanitize` arms this module with a
live :class:`~repro.analysis.sanitizer.guards.SanitizerSession`; from then
on every ``align_batch*`` call snapshots the ambient hook state on entry
and re-checks it on exit — *including* the exception path — so armed state
surviving a batch return or raise surfaces as a :class:`SanitizerError`
at the batch boundary where it leaked, not in some later test.
"""

from __future__ import annotations

from typing import Optional

#: Master switch checked by every batch boundary.  Armed only by
#: :func:`repro.analysis.sanitizer.guards.sanitize`.
ARMED: bool = False

_SESSION: Optional[object] = None


class SanitizerError(RuntimeError):
    """A concurrency/determinism contract was violated under the sanitizer.

    Raised by guard objects on cross-context mutation of a shared registry
    and by the batch-boundary leak check when an ambient hook, trace sink,
    or observability recorder survives a batch return or raise.
    """


def armed() -> bool:
    """Whether a sanitizer session is currently active in this process."""
    return ARMED


def session() -> Optional[object]:
    """The active :class:`SanitizerSession` (``None`` while disarmed)."""
    return _SESSION


def batch_begin() -> Optional[object]:
    """Open a batch-boundary check; returns an opaque token.

    ``None`` while disarmed (the common case — one flag check).  The
    token is the ambient-state snapshot taken at batch entry; pass it to
    :func:`batch_end` in a ``finally`` block.
    """
    if not ARMED:
        return None
    return _SESSION.batch_begin()


def batch_end(token: Optional[object], where: str) -> None:
    """Close a batch-boundary check opened by :func:`batch_begin`.

    No-op when ``token`` is ``None`` (sanitizer disarmed at batch entry).
    Otherwise compares the ambient hook/sink/recorder state against the
    entry snapshot and raises :class:`SanitizerError` on any leak.  Call
    from a ``finally`` so leaks on the exception path are caught too.
    """
    if token is None:
        return
    if _SESSION is not None:
        _SESSION.batch_end(token, where)


def _arm(session: object) -> object:
    """Install ``session`` as the active one; returns the previous state."""
    global ARMED, _SESSION
    previous = (ARMED, _SESSION)
    ARMED = True
    _SESSION = session
    return previous


def _disarm(previous: object) -> None:
    """Restore the state captured by :func:`_arm` (nesting-safe)."""
    global ARMED, _SESSION
    ARMED, _SESSION = previous
