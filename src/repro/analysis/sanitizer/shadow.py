"""Shadow execution: serial re-execution of sampled shards, digest-diffed.

The batch engines promise that a parallel run is *observationally
identical* to a serial one — same scores, same CIGARs, same merged
:class:`~repro.align.base.KernelStats`, same ordering.  The static
analysis and the runtime guards police the known ways that promise
breaks; shadow execution checks the promise itself, end to end:

1. run the batch through :func:`~repro.align.parallel.align_batch_sharded`
   with the requested worker count;
2. draw a seeded sample of shard indices (``random.Random(seed)``, so a
   failing sample replays exactly);
3. re-execute each sampled shard *serially in this process*, through a
   pickle round-trip of the aligner when it is picklable — the same
   copy-the-aligner semantics a pool worker sees;
4. compare content digests — sha256 over a canonical JSON rendering of
   every result (score, exactness, span, CIGAR, stats with the
   instruction :class:`~collections.Counter` sorted) — between the
   parallel results and the shadow results.

A mismatch is shrunk with the same list-ddmin the conformance oracle
uses, down to a minimal pair list that still diverges, and reported with
the backend name and worker count so the failure is reproducible from
the report alone.

Imports of the alignment engines stay inside functions: the analysis
package must be importable without them.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "ShadowMismatch",
    "ShadowReport",
    "result_digest",
    "results_digest",
    "shadow_execute",
    "shrink_shard",
]

Pair = Tuple[str, str]


def _canonical_stats(stats) -> dict:
    """KernelStats as a deterministic JSON-ready dict (Counter sorted)."""
    return {
        "instructions": dict(sorted(stats.instructions.items())),
        "dp_cells": stats.dp_cells,
        "dp_bytes_peak": stats.dp_bytes_peak,
        "dp_bytes_read": stats.dp_bytes_read,
        "dp_bytes_written": stats.dp_bytes_written,
        "hot_bytes": stats.hot_bytes,
        "tiles": stats.tiles,
    }


def _canonical_result(result) -> dict:
    """AlignmentResult as a deterministic JSON-ready dict."""
    return {
        "score": result.score,
        "cigar": result.cigar,
        "exact": result.exact,
        "text_start": result.text_start,
        "text_end": result.text_end,
        "stats": _canonical_stats(result.stats),
    }


def result_digest(result) -> str:
    """sha256 content digest of one alignment result."""
    payload = json.dumps(
        _canonical_result(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def results_digest(results: Sequence) -> str:
    """sha256 content digest of an ordered result sequence."""
    digest = hashlib.sha256()
    for result in results:
        digest.update(result_digest(result).encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class ShadowMismatch:
    """One shard whose parallel and shadow digests diverged.

    Attributes:
        shard_index: position of the shard in input order.
        parallel_digest / shadow_digest: the diverging content digests.
        minimal_pairs: ddmin-shrunk pair list still reproducing the
            divergence (the smallest repro).
        backend / workers: execution context needed to reproduce.
    """

    shard_index: int
    parallel_digest: str
    shadow_digest: str
    minimal_pairs: Tuple[Pair, ...]
    backend: Optional[str]
    workers: int

    def render(self) -> str:
        pairs = ", ".join(f"({p!r}, {t!r})" for p, t in self.minimal_pairs)
        return (
            f"shard {self.shard_index}: parallel {self.parallel_digest[:12]} "
            f"!= shadow {self.shadow_digest[:12]} "
            f"[backend={self.backend or 'n/a'} workers={self.workers}] "
            f"minimal repro: [{pairs}]"
        )


@dataclass
class ShadowReport:
    """Outcome of one shadow-execution verification.

    Attributes:
        pairs / shards: batch size as executed.
        sampled: shard indices re-executed serially (seeded sample).
        seed: sample seed (replays the exact same selection).
        workers / backend: parallel execution context.
        batch_digest: content digest of the full parallel result list.
        mismatches: diverging shards, each with a minimal repro.
    """

    pairs: int = 0
    shards: int = 0
    sampled: List[int] = field(default_factory=list)
    seed: int = 0
    workers: int = 1
    backend: Optional[str] = None
    batch_digest: str = ""
    mismatches: List[ShadowMismatch] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "pairs": self.pairs,
            "shards": self.shards,
            "sampled": list(self.sampled),
            "seed": self.seed,
            "workers": self.workers,
            "backend": self.backend,
            "batch_digest": self.batch_digest,
            "mismatches": [
                {
                    "shard_index": m.shard_index,
                    "parallel_digest": m.parallel_digest,
                    "shadow_digest": m.shadow_digest,
                    "minimal_pairs": [list(p) for p in m.minimal_pairs],
                    "backend": m.backend,
                    "workers": m.workers,
                }
                for m in self.mismatches
            ],
        }


def shrink_shard(
    pairs: Sequence[Pair], still_fails: Callable[[Sequence[Pair]], bool]
) -> List[Pair]:
    """ddmin over a pair list: smallest sublist where ``still_fails`` holds.

    The list analogue of the conformance oracle's string shrinker —
    repeatedly try dropping chunks (halves, quarters, ... single pairs)
    and keep any reduction that still reproduces the failure.
    """
    current = list(pairs)
    if not still_fails(current):
        return current
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and still_fails(candidate):
                current = candidate
                reduced = True
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return current


def _worker_copy(aligner):
    """The aligner a pool worker would see: a pickle round-trip.

    Falls back to the original instance when it is not picklable — which
    is exactly the case where the engine itself runs inline.
    """
    try:
        return pickle.loads(pickle.dumps(aligner))
    except Exception:
        return aligner


def _serial_shard(aligner, shard: Sequence[Pair], traceback: bool) -> List:
    return [
        aligner.align(pattern, text, traceback=traceback)
        for pattern, text in shard
    ]


def shadow_execute(
    aligner,
    pairs: Sequence[Pair],
    *,
    workers: int = 2,
    shard_size: Optional[int] = None,
    sample: int = 4,
    seed: int = 0,
    traceback: bool = True,
) -> ShadowReport:
    """Run a batch in parallel and shadow-verify a sample of shards.

    Args:
        aligner: any :class:`~repro.align.base.Aligner`.
        pairs: the batch, as ``(pattern, text)`` tuples (materialised —
            shadowing needs to re-read shards).
        workers / shard_size: forwarded to
            :func:`~repro.align.parallel.align_batch_sharded`.
        sample: maximum number of shards to re-execute serially (all of
            them when the batch has fewer).
        seed: sample-selection seed; the same seed re-checks the same
            shards.
        traceback: forwarded to the aligner (CIGARs need it).

    Returns:
        A :class:`ShadowReport`; ``report.clean`` is the verdict.
    """
    from ...align.parallel import DEFAULT_SHARD_SIZE, align_batch_sharded

    pair_list: List[Pair] = [(str(p), str(t)) for p, t in pairs]
    size = shard_size if shard_size is not None else DEFAULT_SHARD_SIZE
    batch = align_batch_sharded(
        aligner,
        pair_list,
        workers=workers,
        shard_size=size,
        traceback=traceback,
    )
    shards = [
        pair_list[start:start + size]
        for start in range(0, len(pair_list), size)
    ]
    report = ShadowReport(
        pairs=len(pair_list),
        shards=len(shards),
        seed=seed,
        workers=workers,
        backend=batch.telemetry.backend if batch.telemetry else None,
        batch_digest=results_digest(batch.results),
    )
    if not shards:
        return report
    rng = random.Random(seed)
    count = min(sample, len(shards))
    report.sampled = sorted(rng.sample(range(len(shards)), count))

    shadow_aligner = _worker_copy(aligner)
    for index in report.sampled:
        shard = shards[index]
        parallel_results = batch.results[index * size:index * size + len(shard)]
        shadow_results = _serial_shard(shadow_aligner, shard, traceback)
        parallel_digest = results_digest(parallel_results)
        shadow_digest = results_digest(shadow_results)
        if parallel_digest == shadow_digest:
            continue

        def diverges(candidate: Sequence[Pair]) -> bool:
            serial = _serial_shard(shadow_aligner, candidate, traceback)
            rerun = align_batch_sharded(
                aligner,
                list(candidate),
                workers=workers,
                shard_size=size,
                traceback=traceback,
            )
            return results_digest(serial) != results_digest(rerun.results)

        minimal = shrink_shard(shard, diverges)
        report.mismatches.append(
            ShadowMismatch(
                shard_index=index,
                parallel_digest=parallel_digest,
                shadow_digest=shadow_digest,
                minimal_pairs=tuple(minimal),
                backend=report.backend,
                workers=workers,
            )
        )
    return report
