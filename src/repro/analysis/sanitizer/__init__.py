"""Concurrency & determinism sanitizer ("dsan") for the GMX reproduction.

Two sides, one contract — a parallel run must be observationally
identical to a serial one:

* **static** (:mod:`~repro.analysis.sanitizer.reachability`) — a
  cross-module call-graph analysis rooted at the worker entry points
  (the parallel pool worker, the resilient shard runner, every kernel
  backend) flagging REPRO006–009: shared-state writes, unguarded
  ambient-hook arming, wall-clock/unseeded-RNG use, and registry
  mutation in worker-reachable code;
* **dynamic** (:mod:`~repro.analysis.sanitizer.guards` /
  :mod:`~repro.analysis.sanitizer.shadow`) — registry guard objects,
  batch-boundary hook-leak checks, and shadow execution diffing content
  digests of a seeded shard sample re-executed serially.

``repro sanitize`` drives both (:mod:`~repro.analysis.sanitizer.driver`);
the batch engines see only :mod:`~repro.analysis.sanitizer.runtime`,
whose disarmed cost is bounded <5% by ``benchmarks/test_sanitizer_overhead``.
"""

from .driver import SanitizeReport, run_sanitize
from .guards import GuardedMapping, SanitizerSession, sanitize
from .reachability import ScanConfig, ScanReport, scan_package, scan_tree
from .runtime import SanitizerError, armed, batch_begin, batch_end
from .sancorpus import ViolationCase, violation_corpus
from .shadow import (
    ShadowMismatch,
    ShadowReport,
    result_digest,
    results_digest,
    shadow_execute,
    shrink_shard,
)

__all__ = [
    "GuardedMapping",
    "SanitizeReport",
    "SanitizerError",
    "SanitizerSession",
    "ScanConfig",
    "ScanReport",
    "ShadowMismatch",
    "ShadowReport",
    "ViolationCase",
    "armed",
    "batch_begin",
    "batch_end",
    "result_digest",
    "results_digest",
    "run_sanitize",
    "sanitize",
    "scan_package",
    "scan_tree",
    "shadow_execute",
    "shrink_shard",
    "violation_corpus",
]
