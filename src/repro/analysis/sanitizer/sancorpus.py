"""Seeded violation corpus for the sanitizer (dsan's malformed programs).

The verifier proves it catches bad instruction streams by running a
corpus of deliberately malformed programs whose diagnostics are
annotated; ``repro lint --corpus`` must flag every one.  The sanitizer
gets the same treatment, on both sides:

* **static cases** — tiny synthetic source trees, each with a worker
  entry point and a deliberate REPRO006–009 violation.  The expected
  findings are *annotated in the source itself*: a trailing
  ``# <<REPRO006>>`` marker names the code expected on that exact line,
  so the expectation can never drift from the snippet.  Clean
  counterparts (the same shape written correctly) must produce zero
  findings — they pin down the rule boundaries, not just the rules.
* **dynamic cases** — trigger callables that commit a runtime violation
  (mutating a frozen registry, cross-thread cache writes, leaking an
  ambient hook across a batch boundary) and must raise
  :class:`~repro.analysis.sanitizer.runtime.SanitizerError` under an
  armed :func:`~repro.analysis.sanitizer.guards.sanitize` session.

``repro sanitize --corpus`` runs every case and exits non-zero by
construction (the static violations are real findings); CI asserts that
exit code, which is the acceptance gate for the corpus.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .reachability import ScanConfig

__all__ = ["ViolationCase", "violation_corpus"]

#: Trailing source annotation naming the diagnostic expected on its line.
_MARKER = re.compile(r"#\s*<<(REPRO\d{3})>>")

#: Scan configuration for corpus trees: a single ``worker.py`` whose
#: ``_shard_worker`` function is the worker entry point; no kernel-class
#: roots, no path prefix.
CORPUS_CONFIG = ScanConfig(
    roots=("worker.py::_shard_worker",),
    kernel_base=None,
    where_prefix="",
)


@dataclass(frozen=True)
class ViolationCase:
    """One corpus entry: a violation (or its clean twin) plus expectations.

    Attributes:
        name: stable case identifier (shows up in reports).
        kind: ``static`` (scan a source tree) or ``dynamic`` (run a
            trigger under an armed session).
        description: what the case proves.
        files: relative path → source, for static cases.
        expect: ``(code, where)`` pairs the scan must produce — derived
            from the ``# <<CODE>>`` markers, never written by hand.
        trigger: the violating callable, for dynamic cases; must raise
            ``SanitizerError`` while a session is armed.
    """

    name: str
    kind: str
    description: str
    files: Dict[str, str] = field(default_factory=dict)
    expect: Tuple[Tuple[str, str], ...] = ()
    trigger: Optional[Callable[[], None]] = None


def _expected_findings(files: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    """(code, ``path:line``) pairs from the ``# <<CODE>>`` annotations."""
    expect: List[Tuple[str, str]] = []
    for relative, source in files.items():
        for lineno, line in enumerate(source.splitlines(), start=1):
            for match in _MARKER.finditer(line):
                expect.append((match.group(1), f"{relative}:{lineno}"))
    return tuple(sorted(expect))


def _static(name: str, description: str, source: str) -> ViolationCase:
    files = {"worker.py": source}
    return ViolationCase(
        name=name,
        kind="static",
        description=description,
        files=files,
        expect=_expected_findings(files),
    )


def _static_cases(seed: int) -> List[ViolationCase]:
    cases: List[ViolationCase] = []

    cases.append(_static(
        "repro006-shared-state",
        "worker mutates module-level dict/list state",
        f'''"""Corpus snippet (seed={seed}): worker-visible shared state."""

_CACHE = {{}}
_LOG = []
TOTAL = 0


def _shard_worker(shard):
    results = []
    for key, value in shard:
        _CACHE[key] = value  # <<REPRO006>>
        _LOG.append(key)  # <<REPRO006>>
        results.append(_score(value))
    _bump(len(results))
    return results


def _bump(count):
    global TOTAL
    TOTAL = TOTAL + count  # <<REPRO006>>


def _score(value):
    return len(value) + {seed % 7}
''',
    ))

    cases.append(_static(
        "repro006-clean-threaded",
        "the same worker written correctly: state rides the reply",
        f'''"""Corpus snippet (seed={seed}): state threaded through returns."""

def _shard_worker(shard):
    cache = {{}}
    log = []
    for key, value in shard:
        cache[key] = value
        log.append(key)
    return cache, log, len(log) + {seed % 7}
''',
    ))

    cases.append(_static(
        "repro007-inline-arm",
        "ambient hook armed inline with no exception-path reset",
        f'''"""Corpus snippet (seed={seed}): dangling hook on the raise path."""

_FAULT_HOOK = None


def _shard_worker(shard, isa):
    buffer = []
    isa.trace_sink = buffer  # <<REPRO007>>
    _arm(object())
    out = [len(p) + len(t) for p, t in shard]
    isa.trace_sink = None
    return out, buffer


def _arm(hook):
    global _FAULT_HOOK
    _FAULT_HOOK = hook  # <<REPRO007>>
''',
    ))

    cases.append(_static(
        "repro007-clean-contextmanager",
        "the same arming through a try/finally contextmanager",
        f'''"""Corpus snippet (seed={seed}): guarded hook arming."""

import contextlib

_FAULT_HOOK = None


def _shard_worker(shard, isa):
    with _fault_scope(object()):
        with _trace_scope(isa) as buffer:
            out = [len(p) + len(t) for p, t in shard]
    return out, buffer


@contextlib.contextmanager
def _fault_scope(hook):
    global _FAULT_HOOK
    previous = _FAULT_HOOK
    _FAULT_HOOK = hook
    try:
        yield
    finally:
        _FAULT_HOOK = previous


@contextlib.contextmanager
def _trace_scope(isa):
    previous = isa.trace_sink
    buffer = []
    isa.trace_sink = buffer
    try:
        yield buffer
    finally:
        isa.trace_sink = previous
''',
    ))

    cases.append(_static(
        "repro008-wallclock-rng",
        "wall clock and global RNG feeding worker results",
        f'''"""Corpus snippet (seed={seed}): nondeterminism in the worker."""

import random
import time


def _shard_worker(shard):
    stamp = time.time()  # <<REPRO008>>
    jitter = random.random()  # <<REPRO008>>
    rng = random.Random()  # <<REPRO008>>
    return [(stamp, jitter, rng.randrange({seed + 10})) for _ in shard]
''',
    ))

    cases.append(_static(
        "repro008-clean-seeded",
        "telemetry clocks and a seeded RNG: the allowed forms",
        f'''"""Corpus snippet (seed={seed}): deterministic worker timing."""

import random
import time


def _shard_worker(shard):
    start = time.perf_counter()
    rng = random.Random({seed})
    out = [rng.randrange(100) for _ in shard]
    return out, time.perf_counter() - start
''',
    ))

    cases.append(_static(
        "repro009-registry-mutation",
        "worker registers into a process-global registry after fork",
        f'''"""Corpus snippet (seed={seed}): post-fork registry writes."""

_REGISTRY = {{}}
_INSTANCES = {{}}


def _shard_worker(shard):
    _REGISTRY["late-{seed}"] = object  # <<REPRO009>>
    _INSTANCES.pop("stale", None)  # <<REPRO009>>
    return [len(p) for p, _ in shard]
''',
    ))

    cases.append(_static(
        "repro009-clean-pragma",
        "an audited per-process cache fill suppressed with a dsan pragma",
        f'''"""Corpus snippet (seed={seed}): allowed singleton cache fill."""

_INSTANCES = {{}}


def _shard_worker(shard):
    engine = _get_engine("pure-{seed}")
    return [engine(p, t) for p, t in shard]


def _get_engine(name):
    if name not in _INSTANCES:
        _INSTANCES[name] = _build(name)  # dsan: allow[REPRO009] cache fill
    return _INSTANCES[name]


def _build(name):
    return lambda p, t: len(p) + len(t) + len(name)
''',
    ))

    return cases


def _dynamic_cases(seed: int) -> List[ViolationCase]:
    def frozen_registry_write() -> None:
        from ...align import backends

        backends.register_backend(
            f"dsan-corpus-{seed}", lambda: None, description="corpus probe"
        )

    def cross_thread_cache_write() -> None:
        from ...align import backends

        box: List[BaseException] = []

        def attack() -> None:
            try:
                backends._INSTANCES[f"dsan-thread-{seed}"] = object()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box.append(exc)

        thread = threading.Thread(target=attack)
        thread.start()
        thread.join()
        if box:
            raise box[0]

    def batch_hook_leak() -> None:
        from ...obs import runtime as obs
        from . import runtime

        token = runtime.batch_begin()
        obs.enable()
        try:
            runtime.batch_end(token, "corpus.batch_hook_leak")
        finally:
            obs.disable()

    return [
        ViolationCase(
            name="dynamic-frozen-registry",
            kind="dynamic",
            description="registering a backend under an armed session "
            "must raise (the registry guard is frozen)",
            trigger=frozen_registry_write,
        ),
        ViolationCase(
            name="dynamic-cross-thread-cache",
            kind="dynamic",
            description="a non-owner thread writing the backend instance "
            "cache must raise (cross-thread race)",
            trigger=cross_thread_cache_write,
        ),
        ViolationCase(
            name="dynamic-batch-hook-leak",
            kind="dynamic",
            description="an obs recorder armed inside a batch and still "
            "armed at batch exit must raise at the boundary",
            trigger=batch_hook_leak,
        ),
    ]


def violation_corpus(seed: int = 0) -> List[ViolationCase]:
    """Every corpus case, static then dynamic, seeded for replay.

    The seed is woven into snippet constants and registry key names so a
    failing case names the exact inputs that produced it; the *structure*
    of the corpus (cases and their expectations) is seed-independent.
    """
    return _static_cases(seed) + _dynamic_cases(seed)
