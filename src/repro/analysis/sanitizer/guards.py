"""Dynamic sanitizer: registry guards, leak checks, the ``sanitize()`` CM.

The static side (:mod:`repro.analysis.sanitizer.reachability`) proves the
*source* obeys the worker contracts; this module proves the *process*
does.  :func:`sanitize` arms three layers of runtime checking:

* **Registry guards** — the backend registry and its instance cache are
  wrapped in :class:`GuardedMapping` objects that record the owning
  pid/thread and raise :class:`SanitizerError` on cross-context mutation.
  The registry itself is frozen (registration after workers exist is the
  REPRO009 hazard); the instance cache stays writable from the owning
  thread, because singleton fills there are benign and audited.  A
  *different pid* may always mutate: after ``fork`` the child owns a
  copy-on-write private copy and its writes cannot race the parent.
* **Batch-boundary leak checks** — every ``align_batch*`` engine calls
  :func:`repro.analysis.sanitizer.runtime.batch_begin` on entry and
  ``batch_end`` in a ``finally``.  While a session is armed, that pair
  snapshots the ambient hook state (the :mod:`repro.core.isa` fault hook
  and the :mod:`repro.obs` flag/recorder/metrics trio) at entry and
  re-checks it at exit, so a hook armed inside a batch that survives the
  batch's return *or raise* fails loudly at the boundary where it leaked.
  Snapshots are per batch, not per session: a batch legitimately running
  inside ``obs.capture()`` or ``fault_injection()`` sees the armed state
  on both sides of the boundary and passes.
* **Session-exit check** — on clean exit of the ``sanitize()`` block the
  ambient state must match what it was on entry; anything left armed by
  non-batch code is reported then.

The heavy imports (``align.backends``, ``obs.runtime``, ``core.isa``)
happen inside functions: :mod:`repro.analysis` must stay importable
without dragging in the alignment engines.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from . import runtime
from .runtime import SanitizerError

__all__ = [
    "AuditEvent",
    "GuardedMapping",
    "SanitizerError",
    "SanitizerSession",
    "sanitize",
]

#: Human names for the ambient snapshot slots, in snapshot order.
_AMBIENT_SLOTS = (
    "core.isa ambient fault hook",
    "obs.runtime.ENABLED flag",
    "obs.runtime span recorder",
    "obs.runtime metrics registry",
)


@dataclass(frozen=True)
class AuditEvent:
    """One permitted mutation of a guarded mapping (the audit trail)."""

    name: str
    op: str
    key: object
    pid: int
    thread: int


class GuardedMapping:
    """A mapping proxy that polices who may mutate the underlying dict.

    Wraps (never copies) ``data``: reads delegate straight through, so
    code holding the guard sees exactly the shared registry.  Mutations
    are checked against the ownership rules:

    * **different pid** → allowed silently.  A forked worker mutates its
      private copy-on-write clone; nothing it does is visible here.
    * **frozen** → :class:`SanitizerError` on any same-pid mutation.
    * **different thread, same pid** → :class:`SanitizerError`; this is
      the genuine race the sanitizer exists to catch.
    * **owner thread** → allowed, recorded in the audit trail.

    On session teardown the original dict object (with any audited
    mutations) is restored to the module attribute, so the guard leaves
    no trace once disarmed.
    """

    __slots__ = ("_data", "_name", "_frozen", "_audit", "_pid", "_thread")

    def __init__(
        self,
        data: Dict,
        *,
        name: str,
        frozen: bool = False,
        audit: Optional[List[AuditEvent]] = None,
    ) -> None:
        self._data = data
        self._name = name
        self._frozen = frozen
        self._audit = audit if audit is not None else []
        self._pid = os.getpid()
        self._thread = threading.get_ident()

    # -- ownership ---------------------------------------------------------

    @property
    def data(self) -> Dict:
        """The wrapped dict (for teardown and tests)."""
        return self._data

    @property
    def owner(self) -> Tuple[int, int]:
        """(pid, thread ident) recorded at guard construction."""
        return (self._pid, self._thread)

    def _authorize(self, op: str, key: object) -> bool:
        """True when the mutation may proceed (and audits it); raises else."""
        pid = os.getpid()
        if pid != self._pid:
            return True  # fork-private copy; invisible to the owner
        thread = threading.get_ident()
        if self._frozen:
            raise SanitizerError(
                f"{self._name} is frozen under the sanitizer: {op}({key!r}) "
                f"from pid {pid} would mutate a process-global registry "
                f"while workers may already hold copies (REPRO009 dynamic)"
            )
        if thread != self._thread:
            raise SanitizerError(
                f"cross-thread mutation of {self._name}: {op}({key!r}) from "
                f"thread {thread}, but the guard is owned by thread "
                f"{self._thread} (pid {pid}); shared registries must only "
                f"be written by their owning thread"
            )
        self._audit.append(
            AuditEvent(name=self._name, op=op, key=key, pid=pid, thread=thread)
        )
        return True

    # -- reads (straight delegation) --------------------------------------

    def __getitem__(self, key):
        return self._data[key]

    def __contains__(self, key) -> bool:
        return key in self._data

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def get(self, key, default=None):
        return self._data.get(key, default)

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def items(self):
        return self._data.items()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "frozen" if self._frozen else "owner-checked"
        return f"GuardedMapping({self._name}, {mode}, {len(self._data)} keys)"

    # -- mutations (checked) ----------------------------------------------

    def __setitem__(self, key, value) -> None:
        self._authorize("__setitem__", key)
        self._data[key] = value

    def __delitem__(self, key) -> None:
        self._authorize("__delitem__", key)
        del self._data[key]

    def pop(self, key, *default):
        self._authorize("pop", key)
        return self._data.pop(key, *default)

    def setdefault(self, key, default=None):
        if key not in self._data:
            self._authorize("setdefault", key)
        return self._data.setdefault(key, default)

    def update(self, *args, **kwargs) -> None:
        self._authorize("update", None)
        self._data.update(*args, **kwargs)

    def clear(self) -> None:
        self._authorize("clear", None)
        self._data.clear()


def _ambient_snapshot() -> Tuple:
    """Identity snapshot of every ambient hook the leak check watches."""
    from ...core import isa as isa_mod
    from ...obs import runtime as obs

    return (
        id(isa_mod._AMBIENT_FAULT_HOOK)
        if isa_mod._AMBIENT_FAULT_HOOK is not None
        else None,
        obs.ENABLED,
        id(obs._RECORDER) if obs._RECORDER is not None else None,
        id(obs._METRICS) if obs._METRICS is not None else None,
    )


def _diff_snapshots(before: Tuple, after: Tuple) -> List[str]:
    return [
        name
        for name, entry, exit_ in zip(_AMBIENT_SLOTS, before, after)
        if entry != exit_
    ]


@dataclass
class _BatchToken:
    """Ambient snapshot taken at one batch entry."""

    snapshot: Tuple
    pid: int


@dataclass
class SanitizerSession:
    """Book-keeping for one armed ``sanitize()`` block.

    Attributes:
        audit: permitted guarded-registry mutations, in order.
        batches_checked: batch boundaries verified leak-free.
        guards: the installed :class:`GuardedMapping` objects by name.
    """

    audit: List[AuditEvent] = field(default_factory=list)
    batches_checked: int = 0
    guards: Dict[str, GuardedMapping] = field(default_factory=dict)
    _pid: int = field(default_factory=os.getpid)

    def batch_begin(self) -> _BatchToken:
        return _BatchToken(snapshot=_ambient_snapshot(), pid=os.getpid())

    def batch_end(self, token: _BatchToken, where: str) -> None:
        if token.pid != os.getpid():
            return  # forked child finishing its copy of the batch frame
        leaked = _diff_snapshots(token.snapshot, _ambient_snapshot())
        if leaked:
            raise SanitizerError(
                f"ambient state leaked across the {where} batch boundary: "
                f"{', '.join(leaked)} changed between batch entry and exit "
                f"(REPRO007 dynamic); arm hooks through a context manager "
                f"that restores them on the exception path"
            )
        self.batches_checked += 1

    def summary(self) -> Dict[str, object]:
        """JSON-ready description of what the session observed."""
        return {
            "batches_checked": self.batches_checked,
            "registry_mutations_audited": len(self.audit),
            "guards": sorted(self.guards),
            "audit": [
                {"name": e.name, "op": e.op, "key": repr(e.key)}
                for e in self.audit[:50]
            ],
        }


@contextlib.contextmanager
def sanitize(
    *, freeze_backend_registry: bool = True
) -> Iterator[SanitizerSession]:
    """Arm the dynamic sanitizer for a block.

    Installs :class:`GuardedMapping` guards over the backend registry
    (frozen) and instance cache (owner-checked), arms the batch-boundary
    leak checks in :mod:`repro.analysis.sanitizer.runtime`, and verifies
    on clean exit that no ambient hook outlived the block.  Nested calls
    reuse the active session rather than stacking guards.

    The instance cache is pre-warmed (every available backend is
    instantiated) before the guards go up, so a first-touch singleton
    fill from inside a worker thread cannot masquerade as a race.
    """
    if runtime.armed():
        active = runtime.session()
        assert isinstance(active, SanitizerSession)
        yield active
        return

    from ...align import backends

    for name in backends.backend_names():
        backends.get_backend(name)

    session = SanitizerSession()
    entry_snapshot = _ambient_snapshot()
    original_registry = backends._REGISTRY
    original_instances = backends._INSTANCES
    session.guards["align.backends._REGISTRY"] = GuardedMapping(
        original_registry,
        name="align.backends._REGISTRY",
        frozen=freeze_backend_registry,
        audit=session.audit,
    )
    session.guards["align.backends._INSTANCES"] = GuardedMapping(
        original_instances,
        name="align.backends._INSTANCES",
        audit=session.audit,
    )
    backends._REGISTRY = session.guards["align.backends._REGISTRY"]
    backends._INSTANCES = session.guards["align.backends._INSTANCES"]
    previous = runtime._arm(session)
    try:
        yield session
        leaked = _diff_snapshots(entry_snapshot, _ambient_snapshot())
        if leaked:
            raise SanitizerError(
                f"ambient state leaked out of the sanitize() block: "
                f"{', '.join(leaked)} changed between session entry and "
                f"exit (REPRO007 dynamic)"
            )
    finally:
        runtime._disarm(previous)
        backends._REGISTRY = original_registry
        backends._INSTANCES = original_instances
