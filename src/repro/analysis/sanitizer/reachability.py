"""Worker-reachability static analysis: the sanitizer's static side.

The parallel (:mod:`repro.align.parallel`) and resilient
(:mod:`repro.resilience.engine`) batch engines execute aligner code inside
forked/spawned worker processes, and the kernel backends run inside every
one of them.  Code reachable from those entry points lives under a
stricter contract than the rest of the package: it must not mutate shared
module state, must not arm ambient hooks without a guaranteed reset, and
must not consult wall clocks or unseeded RNGs — any of those silently
breaks the byte-identical-across-executors guarantee the conformance and
chaos suites prove.

This module builds a conservative cross-module call graph over the package
AST, computes the closure of functions reachable from the worker roots,
and checks four rules over that closure:

* **REPRO006** — writes to module-level mutable state (dict/list/set/
  Counter globals) from worker-reachable code.  Each worker holds a
  copy-on-write or re-imported copy, so such writes diverge between
  processes and are lost or duplicated on merge.
* **REPRO007** — ambient hooks (``trace_sink``/``fault_hook`` attributes,
  ``_AMBIENT_*``/recorder/metrics globals) armed *inline* rather than
  through a context manager that restores them in a ``finally``.  An
  exception between arm and disarm leaves the hook dangling for every
  later alignment in the process.
* **REPRO008** — wall-clock reads (``time.time``, ``datetime.now``, …)
  or unseeded RNG (``random.random``, bare ``random.Random()``, ``os.urandom``,
  ``uuid.uuid4``) in kernel- or worker-reachable code.  Telemetry clocks
  (``perf_counter*``, ``monotonic*``, ``sleep``, ``process_time*``) are
  exempt: they never feed a result.
* **REPRO009** — mutation of process-global registries (names matching
  ``*REGISTRY*``/``*INSTANCES*``) from worker-reachable code; a worker
  registering a backend after fork mutates a private copy the parent
  never sees.

**Call-graph resolution is conservative by name**: a call ``x.f(...)`` or
``f(...)`` links to *every* function or method named ``f`` in the scanned
tree (class-hierarchy analysis degenerated to name matching — sound for
reachability, over-approximate by design).  False positives on legitimate
sites are silenced with an inline pragma::

    _CACHE[key] = value  # dsan: allow[REPRO009] per-process singleton fill

A pragma on the finding line (or on the enclosing ``def`` line) suppresses
the listed codes; suppressed findings are still counted and reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..diagnostics import AnalysisError, Diagnostic, Severity
from ..repolint import _GLOBAL_RNG_FUNCS, package_root

__all__ = [
    "DEFAULT_ROOTS",
    "FunctionInfo",
    "ScanConfig",
    "ScanReport",
    "scan_package",
    "scan_tree",
]

#: Worker entry points of the repro package, as ``module.py::qualname``.
#: Kernel-backend methods are added dynamically (every ``full_matrix`` /
#: ``banded_matrix`` of a :class:`~repro.align.backends.KernelBackend`
#: subclass is a root — backends execute inside every worker).
DEFAULT_ROOTS = (
    "align/parallel.py::_align_shard",
    "resilience/engine.py::_process_entry",
    "serve/service.py::_serve_shard",
    "dist/worker.py::_execute_dist_shard",
    "stream/pipeline.py::_chunk_align_body",
)

#: Attribute names that act as ambient hooks when assigned on any object.
#: (``isa.trace`` is deliberately absent: aligners arm it on a freshly
#: constructed per-alignment ISA instance, which is instance state.)
AMBIENT_ATTRS = frozenset({"trace_sink", "fault_hook"})

#: Wall-clock calls that are *allowed* in worker code: they only ever feed
#: telemetry (ShardTelemetry/BatchTelemetry wall times), never a result.
TELEMETRY_CLOCKS = frozenset(
    {
        "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
        "sleep", "process_time", "process_time_ns", "thread_time",
        "thread_time_ns",
    }
)

#: ``time.<name>`` calls that read the wall clock (result-affecting).
WALL_CLOCKS = frozenset({"time", "time_ns", "ctime", "localtime", "gmtime"})

#: ``datetime.<name>`` constructors that read the wall clock.
DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: Mutating method names on module-level containers.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "clear", "remove", "discard",
    }
)

_PRAGMA = "# dsan: allow["


def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """``# dsan: allow[CODE,...]`` pragmas by line number (1-based)."""
    pragmas: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        marker = line.find(_PRAGMA)
        if marker < 0:
            continue
        codes = line[marker + len(_PRAGMA):]
        end = codes.find("]")
        if end < 0:
            continue
        pragmas[lineno] = {
            code.strip() for code in codes[:end].split(",") if code.strip()
        }
    return pragmas


def _is_ambient_name(name: str) -> bool:
    """Module-global names that hold ambient hook/recorder state."""
    return (
        "AMBIENT" in name
        or name.endswith("_HOOK")
        or name.endswith("_SINK")
        or name in {"ENABLED", "_RECORDER", "_METRICS"}
    )


def _is_registry_name(name: str) -> bool:
    """Module-global names that hold process-global registries."""
    upper = name.upper()
    return "REGISTRY" in upper or "INSTANCES" in upper


#: Calls whose result is a mutable container (module-level binding to one
#: of these makes the global "mutable state" for REPRO006).
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


@dataclass
class FunctionInfo:
    """One function or method discovered in the scanned tree.

    Attributes:
        qualname: ``module.py::name`` or ``module.py::Class.name``.
        module: module path relative to the scan root (posix).
        name: bare function name (the call-graph matching key).
        class_name: enclosing class (``None`` for module-level functions).
        node: the AST definition node.
        is_contextmanager: decorated with ``contextmanager`` — its arming
            assignments may be guarded by a try/finally around ``yield``.
    """

    qualname: str
    module: str
    name: str
    class_name: Optional[str]
    node: ast.AST
    is_contextmanager: bool = False


@dataclass
class _ModuleInfo:
    relative: str
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    module_globals: Set[str] = field(default_factory=set)
    mutable_globals: Set[str] = field(default_factory=set)
    module_aliases: Set[str] = field(default_factory=set)
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    classes: Dict[str, List[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class ScanConfig:
    """Knobs of one reachability scan.

    Attributes:
        roots: worker entry points as ``module.py::qualname``; every one
            must exist in the tree (a rename must not silently empty the
            analysis).
        kernel_base: class name whose subclasses' ``kernel_methods`` are
            added as roots (the backend kernels); ``None`` disables.
        kernel_methods: method names treated as kernel entry points.
        where_prefix: prefix for finding locations (matches the repo
            lint's ``src/repro/`` spelling on package scans).
    """

    roots: Tuple[str, ...] = DEFAULT_ROOTS
    kernel_base: Optional[str] = "KernelBackend"
    kernel_methods: Tuple[str, ...] = ("full_matrix", "banded_matrix")
    where_prefix: str = "src/repro/"


@dataclass
class ScanReport:
    """Everything one reachability scan produced.

    Attributes:
        findings: active diagnostics (pragma-suppressed ones excluded).
        suppressed: findings silenced by ``# dsan: allow[...]`` pragmas.
        roots: resolved root qualnames (including kernel methods).
        reachable: worker-reachable function qualnames → sample call
            chain from a root (root first, callee last).
        modules / functions: tree size, for the report header.
    """

    findings: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    roots: List[str] = field(default_factory=list)
    reachable: Dict[str, List[str]] = field(default_factory=dict)
    modules: int = 0
    functions: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "clean": self.clean,
            "modules": self.modules,
            "functions": self.functions,
            "roots": list(self.roots),
            "worker_reachable": len(self.reachable),
            "findings": [d.to_dict() for d in self.findings],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }


def scan_package() -> ScanReport:
    """Scan the installed ``repro`` package with the default roots."""
    return scan_tree(package_root(), config=ScanConfig())


def scan_tree(
    root: Path, *, config: Optional[ScanConfig] = None
) -> ScanReport:
    """Run the worker-reachability analysis over a source tree.

    Args:
        root: directory whose ``**/*.py`` files form the analysis unit.
        config: roots and naming knobs; defaults to the repro package's.
    """
    config = config if config is not None else ScanConfig()
    modules = _index_tree(Path(root))
    report = ScanReport(modules=len(modules))
    functions: Dict[str, FunctionInfo] = {}
    by_name: Dict[str, List[str]] = {}
    for info in modules.values():
        for qualname, fn in info.functions.items():
            functions[qualname] = fn
            by_name.setdefault(fn.name, []).append(qualname)
    report.functions = len(functions)

    report.roots = _resolve_roots(modules, functions, config)
    edges = _call_edges(modules, functions, by_name)
    report.reachable = _reach(report.roots, edges)

    for qualname in sorted(report.reachable):
        fn = functions[qualname]
        module = modules[fn.module]
        chain = report.reachable[qualname]
        for diagnostic in _check_function(fn, module, modules, chain, config):
            allow = module.pragmas.get(
                _finding_line(diagnostic), set()
            ) | module.pragmas.get(fn.node.lineno, set())
            if diagnostic.code in allow:
                report.suppressed.append(diagnostic)
            else:
                report.findings.append(diagnostic)
    return report


def _finding_line(diagnostic: Diagnostic) -> int:
    _, _, line = diagnostic.where.rpartition(":")
    try:
        return int(line)
    except ValueError:
        return -1


def _index_tree(root: Path) -> Dict[str, _ModuleInfo]:
    modules: Dict[str, _ModuleInfo] = {}
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        info = _ModuleInfo(
            relative=relative, tree=tree, pragmas=_parse_pragmas(source)
        )
        _index_module(info)
        modules[relative] = info
    return modules


def _index_module(info: _ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.module_aliases.add(local)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    info.module_globals.add(target.id)
                    if _is_mutable_literal(value):
                        info.mutable_globals.add(target.id)

    def visit_defs(body, class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = node.name
                qual = f"{class_name}.{name}" if class_name else name
                qualname = f"{info.relative}::{qual}"
                info.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=info.relative,
                    name=name,
                    class_name=class_name,
                    node=node,
                    is_contextmanager=_is_contextmanager(node),
                )
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = [
                    base for base in map(_base_name, node.bases) if base
                ]
                visit_defs(node.body, node.name)

    visit_defs(info.tree.body, None)


def _base_name(base: ast.expr) -> str:
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Name):
        return base.id
    return ""


def _is_contextmanager(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", ()):
        name = decorator
        if isinstance(name, ast.Attribute):
            name = name.attr
        elif isinstance(name, ast.Name):
            name = name.id
        else:
            continue
        if name in ("contextmanager", "asynccontextmanager"):
            return True
    return False


def _is_mutable_literal(value: Optional[ast.expr]) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(
            func, "id", ""
        )
        return name in _MUTABLE_FACTORIES
    return False


def _resolve_roots(
    modules: Dict[str, _ModuleInfo],
    functions: Dict[str, FunctionInfo],
    config: ScanConfig,
) -> List[str]:
    roots: List[str] = []
    for root in config.roots:
        if root not in functions:
            raise AnalysisError(
                f"sanitizer root {root!r} not found — worker entry points "
                f"moved; update ScanConfig.roots so the reachability "
                f"analysis stays anchored"
            )
        roots.append(root)
    if config.kernel_base:
        kernel_classes = _subclasses_of(modules, config.kernel_base)
        for qualname, fn in functions.items():
            if (
                fn.class_name in kernel_classes
                and fn.name in config.kernel_methods
            ):
                roots.append(qualname)
    return sorted(set(roots))


def _subclasses_of(
    modules: Dict[str, _ModuleInfo], base: str
) -> Set[str]:
    """Class names transitively deriving from ``base`` (name-based CHA)."""
    children: Dict[str, Set[str]] = {}
    for info in modules.values():
        for name, bases in info.classes.items():
            for parent in bases:
                children.setdefault(parent, set()).add(name)
    found: Set[str] = {base}
    frontier = [base]
    while frontier:
        for child in children.get(frontier.pop(), ()):
            if child not in found:
                found.add(child)
                frontier.append(child)
    return found


def _call_edges(
    modules: Dict[str, _ModuleInfo],
    functions: Dict[str, FunctionInfo],
    by_name: Dict[str, List[str]],
) -> Dict[str, Set[str]]:
    """caller qualname → callee qualnames (conservative name matching).

    A call to ``f``/``x.f`` links to every function *or method* named
    ``f``; instantiating a class links to every ``__init__`` of a class
    with that name.  Over-approximate — exactly what a reachability
    *upper bound* needs.
    """
    class_names: Set[str] = set()
    for info in modules.values():
        class_names.update(info.classes)
    edges: Dict[str, Set[str]] = {}
    for qualname, fn in functions.items():
        callees: Set[str] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                called = func.attr
            elif isinstance(func, ast.Name):
                called = func.id
            else:
                continue
            callees.update(by_name.get(called, ()))
            if called in class_names:
                for init in by_name.get("__init__", ()):
                    if functions[init].class_name == called:
                        callees.add(init)
        callees.discard(qualname)
        edges[qualname] = callees
    return edges


def _reach(
    roots: Sequence[str], edges: Dict[str, Set[str]]
) -> Dict[str, List[str]]:
    """BFS closure with one sample call chain per reached function."""
    chains: Dict[str, List[str]] = {}
    frontier = list(roots)
    for root in roots:
        chains.setdefault(root, [root])
    while frontier:
        current = frontier.pop(0)
        for callee in sorted(edges.get(current, ())):
            if callee not in chains:
                chains[callee] = chains[current] + [callee]
                frontier.append(callee)
    return chains


# ---------------------------------------------------------------------------
# Per-function rule checks.
# ---------------------------------------------------------------------------


def _short_chain(chain: Sequence[str]) -> str:
    names = [qual.rpartition("::")[2] for qual in chain]
    if len(names) > 5:
        names = names[:2] + ["..."] + names[-2:]
    return " -> ".join(names)


def _check_function(
    fn: FunctionInfo,
    module: _ModuleInfo,
    modules: Dict[str, _ModuleInfo],
    chain: Sequence[str],
    config: ScanConfig,
) -> Iterable[Diagnostic]:
    where = lambda node: (  # noqa: E731 — local formatter
        f"{config.where_prefix}{module.relative}:{node.lineno}"
    )
    via = _short_chain(chain)
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_shared_writes(fn, module, where, via))
    diagnostics.extend(_check_hook_arming(fn, where, via))
    diagnostics.extend(_check_determinism(fn, where, via))
    return diagnostics


def _global_decls(fn_node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _categorize(name: str) -> str:
    if _is_ambient_name(name):
        return "ambient"
    if _is_registry_name(name):
        return "registry"
    return "state"


def _shared_write_diag(
    name: str, category: str, detail: str, where: str, via: str
) -> Diagnostic:
    if category == "registry":
        return Diagnostic(
            code="REPRO009",
            severity=Severity.ERROR,
            message=(
                f"process-global registry {name!r} {detail} in "
                f"worker-reachable code (via {via}); after fork the worker "
                f"mutates a private copy the parent never observes"
            ),
            hint=(
                "register at import time (before any pool exists), or "
                "suppress a per-process cache fill with "
                "`# dsan: allow[REPRO009] <reason>`"
            ),
            where=where,
        )
    return Diagnostic(
        code="REPRO006",
        severity=Severity.ERROR,
        message=(
            f"module-level mutable state {name!r} {detail} in "
            f"worker-reachable code (via {via}); worker copies diverge "
            f"and merges silently drop the writes"
        ),
        hint=(
            "thread the state through the shard payload/reply instead, "
            "or suppress a process-local-by-design site with "
            "`# dsan: allow[REPRO006] <reason>`"
        ),
        where=where,
    )


def _check_shared_writes(
    fn: FunctionInfo, module: _ModuleInfo, where, via: str
) -> Iterable[Diagnostic]:
    """REPRO006/REPRO009: mutations of module-level containers/globals."""
    declared = _global_decls(fn.node)
    shared = module.module_globals
    findings: List[Diagnostic] = []

    def record(name: str, detail: str, node: ast.AST) -> None:
        category = _categorize(name)
        if category == "ambient":
            return  # ambient globals are REPRO007's jurisdiction
        findings.append(
            _shared_write_diag(name, category, detail, where(node), via)
        )

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in shared
                    and target.value.id in module.mutable_globals
                ):
                    record(target.value.id, "written by subscript", node)
                elif isinstance(target, ast.Name) and target.id in declared:
                    record(target.id, "rebound via `global`", node)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in module.mutable_globals
            ):
                record(func.value.id, f"mutated via .{func.attr}()", node)
    return findings


def _ambient_attr_target(target: ast.expr) -> Optional[Tuple[str, str]]:
    """(base, attr) when ``target`` assigns an ambient hook attribute."""
    if (
        isinstance(target, ast.Attribute)
        and target.attr in AMBIENT_ATTRS
        and isinstance(target.value, ast.Name)
    ):
        return (target.value.id, target.attr)
    return None


def _is_disarm_value(value: ast.expr, saved: Set[str]) -> bool:
    """True for reset values: None/False constants or a saved-previous name."""
    if isinstance(value, ast.Constant) and value.value in (None, False):
        return True
    if isinstance(value, ast.Name) and value.id in saved:
        return True
    return False


def _saved_previous_names(fn_node: ast.AST) -> Set[str]:
    """Names assigned from an ambient load (``previous = obj.trace_sink``).

    Assigning such a name back later is a *restore*, not an arming.  Tuple
    saves (``previous = (ENABLED, _RECORDER, _METRICS)``) count too.
    """

    def loads_ambient(expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr in AMBIENT_ATTRS:
                return True
            if isinstance(node, ast.Name) and _is_ambient_name(node.id):
                return True
        return False

    saved: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and loads_ambient(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    saved.add(target.id)
    return saved


def _guarded_lines(fn: FunctionInfo) -> Set[int]:
    """Line numbers where inline arming is structurally acceptable.

    Exactly one shape qualifies: a ``contextmanager``-decorated generator
    whose ``try`` wraps the ``yield`` and whose ``finally`` restores
    state — the canonical arming primitive
    (:func:`repro.core.isa.fault_injection`).  Arming inside somebody
    else's ``with`` block earns no exemption: the foreign context manager
    knows nothing about the hook, and hand-rolled arm/try/finally pairs
    still leave an unprotected window between the arm and the ``try``.
    """
    lines: Set[int] = set()
    if fn.is_contextmanager:
        has_guarded_yield = any(
            isinstance(node, ast.Try)
            and node.finalbody
            and any(
                isinstance(sub, ast.Yield)
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            for node in ast.walk(fn.node)
        )
        if has_guarded_yield:
            for node in ast.walk(fn.node):
                lines.add(getattr(node, "lineno", -1))
    return lines


def _check_hook_arming(
    fn: FunctionInfo, where, via: str
) -> Iterable[Diagnostic]:
    """REPRO007: inline ambient-hook arming outside a guarding CM."""
    findings: List[Diagnostic] = []
    saved = _saved_previous_names(fn.node)
    guarded = _guarded_lines(fn)
    in_init = fn.name == "__init__"
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        if _is_disarm_value(node.value, saved):
            continue
        for target in node.targets:
            spec = _ambient_attr_target(target)
            armed_name: Optional[str] = None
            if spec is not None:
                base, attr = spec
                if in_init and base == "self":
                    continue  # constructor wiring, not runtime arming
                armed_name = f"{base}.{attr}"
            elif isinstance(target, ast.Name) and _is_ambient_name(target.id):
                armed_name = target.id
            elif isinstance(target, ast.Tuple) and all(
                isinstance(el, ast.Name) and _is_ambient_name(el.id)
                for el in target.elts
            ):
                armed_name = ", ".join(el.id for el in target.elts)
            if armed_name is None:
                continue
            if node.lineno in guarded:
                continue
            findings.append(
                Diagnostic(
                    code="REPRO007",
                    severity=Severity.ERROR,
                    message=(
                        f"ambient hook {armed_name!r} armed inline in "
                        f"worker-reachable code (via {via}) without a "
                        f"context manager guaranteeing the reset; an "
                        f"exception here leaves the hook dangling for "
                        f"every later alignment in the process"
                    ),
                    hint=(
                        "arm through a contextmanager that restores the "
                        "previous value in a `finally` (the "
                        "`fault_injection`/`trace_capture` pattern)"
                    ),
                    where=where(node),
                )
            )
    return findings


def _check_determinism(
    fn: FunctionInfo, where, via: str
) -> Iterable[Diagnostic]:
    """REPRO008: wall clocks and unseeded RNGs in reachable code."""
    findings: List[Diagnostic] = []

    def report(offense: str, hint: str, node: ast.AST) -> None:
        findings.append(
            Diagnostic(
                code="REPRO008",
                severity=Severity.ERROR,
                message=(
                    f"{offense} in kernel/worker-reachable code (via "
                    f"{via}); results stop replaying bit-identically"
                ),
                hint=hint,
                where=where(node),
            )
        )

    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        base = None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
            elif isinstance(func.value, ast.Attribute) and isinstance(
                func.value.value, ast.Name
            ):
                # Module-qualified class: datetime.datetime.now() etc.
                base = func.value.attr
        if base is not None:
            attr = func.attr
            if base == "time" and attr in WALL_CLOCKS:
                report(
                    f"wall-clock read time.{attr}()",
                    "use time.perf_counter()/monotonic() for telemetry; "
                    "never let a wall-clock value feed a result",
                    node,
                )
            elif base in ("datetime", "date") and attr in DATETIME_NOW:
                report(
                    f"wall-clock read {base}.{attr}()",
                    "pass timestamps in from the caller; worker results "
                    "must not depend on when they ran",
                    node,
                )
            elif base == "os" and attr == "urandom":
                report(
                    "os.urandom() entropy draw",
                    "derive randomness from a seeded random.Random(seed)",
                    node,
                )
            elif base == "uuid" and attr in ("uuid1", "uuid4"):
                report(
                    f"uuid.{attr}() entropy draw",
                    "derive identifiers from the seeded shard index",
                    node,
                )
            elif base == "random":
                if attr == "Random" and not node.args and not node.keywords:
                    report(
                        "unseeded random.Random()",
                        "seed it: random.Random(seed) replays exactly",
                        node,
                    )
                elif attr in _GLOBAL_RNG_FUNCS:
                    report(
                        f"random.{attr}() drawing from the interpreter-wide "
                        f"global RNG",
                        "construct a local random.Random(seed)",
                        node,
                    )
        elif (
            isinstance(func, ast.Name)
            and func.id == "Random"
            and not node.args
            and not node.keywords
        ):
            report(
                "unseeded Random()",
                "seed it: Random(seed) replays exactly",
                node,
            )
    return findings
