"""Instruction-stream IR for the GMX program verifier.

A :class:`Program` is an ordered sequence of :class:`Instr` records over
which :mod:`repro.analysis.verifier` runs its abstract dataflow analysis.
Programs come from two sources:

* **Retired traces** — :attr:`repro.core.isa.GmxIsa.trace` event lists
  recorded by the aligners (``Program.from_trace``).  These carry concrete
  architectural values, enabling value-level checks (Δ domains, one-hot
  ``gmx_pos`` images, tile-edge provenance).
* **Binary programs** — 32-bit instruction words disassembled through
  :mod:`repro.core.encoding` (``Program.from_words`` / ``from_hex``).
  Register *numbers* are known but their contents are not, so the verifier
  falls back to order-level checks (CSR initialization, tb-before-tile,
  dead writes, register def-use).

Undecodable words are kept in the stream as ``op="unknown"`` records rather
than raised, so the verifier can report them as GMX008 diagnostics with the
right instruction index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.encoding import CsrInstruction, EncodingError, GmxInstruction, decode_any
from ..core.isa import IsaEvent
from ..core.tile import DEFAULT_TILE_SIZE

#: Mnemonics the verifier treats as tile computations.
TILE_OPS = ("gmx.v", "gmx.h", "gmx.vh")


@dataclass(frozen=True)
class Instr:
    """One instruction in a verifiable stream.

    For concrete (trace) programs ``rs1``/``rs2`` hold the packed operand
    *images* and ``out`` the produced values; for binary programs
    ``rd``/``rs1``/``rs2`` hold register *numbers* and values are unknown.

    Attributes:
        op: ``csrw``, ``csrr``, one of :data:`TILE_OPS`, ``gmx.tb``, or
            ``unknown`` for an undecodable word.
        csr: CSR name for CSR accesses.
        value: value written/read (concrete programs only).
        rs1 / rs2: operand images (concrete) or register numbers (binary).
        out: produced values (concrete programs only).
        rd: destination register number (binary programs only).
        word: the raw 32-bit word (binary programs only).
        note: decoder detail for ``unknown`` records.
    """

    op: str
    csr: Optional[str] = None
    value: object = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    out: Tuple = ()
    rd: Optional[int] = None
    word: Optional[int] = None
    note: str = ""


@dataclass(frozen=True)
class Program:
    """An ordered GMX instruction stream plus its analysis context.

    Attributes:
        instrs: the instruction records, in program order.
        tile_size: T of the target configuration (bounds gmx_pos slots).
        concrete: True when operand values are known (trace programs).
        label: source label used in diagnostic locations.
    """

    instrs: Tuple[Instr, ...]
    tile_size: int = DEFAULT_TILE_SIZE
    concrete: bool = True
    label: str = "program"

    def __len__(self) -> int:
        return len(self.instrs)

    @classmethod
    def from_trace(
        cls,
        events: Iterable[IsaEvent],
        *,
        tile_size: int = DEFAULT_TILE_SIZE,
        label: str = "trace",
    ) -> "Program":
        """Wrap a retired :class:`~repro.core.isa.IsaEvent` stream."""
        instrs = tuple(
            Instr(
                op=event.op,
                csr=event.csr,
                value=event.value,
                rs1=event.rs1,
                rs2=event.rs2,
                out=event.out,
            )
            for event in events
        )
        return cls(instrs=instrs, tile_size=tile_size, concrete=True, label=label)

    @classmethod
    def from_words(
        cls,
        words: Sequence[int],
        *,
        tile_size: int = DEFAULT_TILE_SIZE,
        label: str = "binary",
    ) -> "Program":
        """Disassemble 32-bit words, keeping undecodable ones in-stream."""
        instrs: List[Instr] = []
        for word in words:
            try:
                decoded = decode_any(word)
            except EncodingError as exc:
                instrs.append(Instr(op="unknown", word=word, note=str(exc)))
                continue
            if isinstance(decoded, GmxInstruction):
                instrs.append(
                    Instr(
                        op=decoded.mnemonic,
                        rd=decoded.rd,
                        rs1=decoded.rs1,
                        rs2=decoded.rs2,
                        word=word,
                    )
                )
            else:
                instrs.append(_csr_instr(decoded, word))
        return cls(
            instrs=tuple(instrs), tile_size=tile_size, concrete=False, label=label
        )

    @classmethod
    def from_hex(
        cls,
        text: str,
        *,
        tile_size: int = DEFAULT_TILE_SIZE,
        label: str = "hex",
    ) -> "Program":
        """Parse a hex program listing: one word per line, ``#`` comments."""
        words: List[int] = []
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            words.append(int(line, 16))
        return cls.from_words(words, tile_size=tile_size, label=label)


def _csr_instr(decoded: CsrInstruction, word: int) -> Instr:
    """Map a CSR word onto the verifier's csrw/csrr vocabulary."""
    op = "csrw" if decoded.is_write else "csrr"
    return Instr(
        op=op,
        csr=decoded.csr,
        rd=decoded.rd,
        rs1=decoded.rs1,
        word=word,
    )
