"""Lint driver: one entry point combining every analysis pass.

:func:`run_lint` is what ``repro lint``, ``repro verify --strict`` and the
experiment exporter share.  It runs, in order:

* the **stream check** — the GMX program verifier over the retired
  instruction streams of Full(GMX) (plain and fused), Banded(GMX) and
  Windowed(GMX) on seeded pairs (:func:`~repro.analysis.corpus.aligner_stream_programs`);
* the **repo lint** — AST invariants plus the aligner picklability probe
  (:mod:`repro.analysis.repolint`);
* optionally the **malformed corpus** — every seeded broken program, whose
  diagnostics are *expected*; running it makes ``repro lint --corpus`` exit
  non-zero by construction, which is the acceptance gate for the corpus.

The result is a :class:`LintReport` with the flat diagnostic list plus
enough structure for both the text renderer and the JSON exporter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .corpus import aligner_stream_programs, malformed_corpus
from .diagnostics import Diagnostic, render_text, summarize
from .repolint import lint_repo
from .verifier import verify_program


@dataclass
class LintReport:
    """Everything one lint run produced, ready to render or serialise.

    Attributes:
        diagnostics: all diagnostics from every pass, in pass order.
        programs_checked: instruction streams the verifier examined.
        programs_clean: how many of those verified with zero diagnostics.
        corpus_cases: malformed-corpus cases run (0 unless requested).
        corpus_matched: cases whose diagnostics matched their annotation.
        sections: pass name → diagnostics of that pass.
    """

    diagnostics: List[Diagnostic] = field(default_factory=list)
    programs_checked: int = 0
    programs_clean: int = 0
    corpus_cases: int = 0
    corpus_matched: int = 0
    sections: Dict[str, List[Diagnostic]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def to_dict(self) -> dict:
        """JSON-ready form (``repro lint --format json``)."""
        return {
            "clean": self.clean,
            "summary": summarize(self.diagnostics),
            "programs_checked": self.programs_checked,
            "programs_clean": self.programs_clean,
            "corpus_cases": self.corpus_cases,
            "corpus_matched": self.corpus_matched,
            "sections": {
                name: [d.to_dict() for d in diags]
                for name, diags in self.sections.items()
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable multi-section report."""
        lines: List[str] = []
        for name, diags in self.sections.items():
            status = "clean" if not diags else f"{len(diags)} diagnostics"
            lines.append(f"[{name}] {status}")
            if diags:
                lines.append(render_text(diags))
        if self.programs_checked:
            lines.append(
                f"instruction streams: {self.programs_clean}/"
                f"{self.programs_checked} verified clean"
            )
        if self.corpus_cases:
            lines.append(
                f"malformed corpus: {self.corpus_matched}/{self.corpus_cases} "
                f"cases produced their annotated diagnostics"
            )
        counts = summarize(self.diagnostics)
        lines.append(
            f"total: {counts['total']} diagnostics "
            f"({counts['errors']} errors, {counts['warnings']} warnings)"
        )
        return "\n".join(lines)


def run_lint(
    *,
    seed: int = 0,
    pairs: int = 4,
    tile_size: int = 32,
    corpus: bool = False,
    repo: bool = True,
    streams: bool = True,
    ports: int = 2,
) -> LintReport:
    """Run the configured analysis passes and collect a :class:`LintReport`.

    Args:
        seed: seed for the generated stream pairs (and corpus).
        pairs: seeded pairs per aligner in the stream check.
        tile_size: GMX tile dimension for the stream check.
        corpus: also run the malformed corpus (diagnostics expected).
        repo: run the repo invariant lint.
        streams: run the aligner stream check.
        ports: register write ports assumed by the verifier (gmx.vh
            requires 2; 1 flags every fused stream with GMX007).
    """
    report = LintReport()

    if streams:
        stream_diags: List[Diagnostic] = []
        for _label, program in aligner_stream_programs(
            seed=seed, pairs=pairs, tile_size=tile_size
        ):
            diags = verify_program(program, ports=ports)
            report.programs_checked += 1
            if diags:
                stream_diags.extend(diags)
            else:
                report.programs_clean += 1
        report.sections["program-verifier"] = stream_diags
        report.diagnostics.extend(stream_diags)

    if repo:
        repo_diags = lint_repo()  # includes the REPRO004 pickle probe
        report.sections["repo-lint"] = repo_diags
        report.diagnostics.extend(repo_diags)

    if corpus:
        corpus_diags: List[Diagnostic] = []
        for case in malformed_corpus(seed=seed):
            diags = verify_program(case.program, ports=case.ports)
            got: Tuple[Tuple[str, int], ...] = tuple(
                sorted((d.code, d.index) for d in diags)
            )
            if got == tuple(sorted(case.expect)):
                report.corpus_matched += 1
            report.corpus_cases += 1
            corpus_diags.extend(diags)
        report.sections["malformed-corpus"] = corpus_diags
        report.diagnostics.extend(corpus_diags)

    return report
