"""Seeded program corpora for the GMX program verifier.

Two corpora back the verifier's acceptance gate:

* :func:`malformed_corpus` — ≥ 10 deliberately broken programs (shuffled
  CSR writes, truncated programs, corrupt ``gmx_pos`` images, out-of-domain
  Δ encodings, foreign edges, single-port ``gmx.vh``, undecodable words),
  each annotated with the exact ``(code, index)`` diagnostics it must
  produce.  ``repro lint --corpus`` runs it and must exit non-zero.
* :func:`aligner_stream_programs` — the retired streams of Full(GMX),
  Banded(GMX) and Windowed(GMX) over seeded generated pairs, which must
  verify completely clean.

Every case is deterministic and replayable from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..core.bitvec import pack_deltas
from ..core.encoding import encode, encode_csr
from ..core.isa import encode_pos
from .program import Instr, Program

#: Tile size of the hand-checkable corpus programs.
CORPUS_TILE = 4

_DNA = "ACGT"


@dataclass(frozen=True)
class MalformedCase:
    """One corpus entry: a program plus the diagnostics it must trigger.

    Attributes:
        name: stable case identifier.
        program: the malformed program.
        expect: the exact ``(code, index)`` multiset the verifier must
            report (order-insensitive; ``index`` may be None).
        ports: register write ports to verify against (gmx.vh needs 2).
    """

    name: str
    program: Program
    expect: Tuple[Tuple[str, int], ...]
    ports: int = 2


def _chunk(rng: random.Random, length: int = CORPUS_TILE) -> str:
    return "".join(rng.choice(_DNA) for _ in range(length))


def _fill(count: int = CORPUS_TILE) -> int:
    """The all-+1 boundary fill image."""
    return pack_deltas([1] * count)


def _trace(instrs, label: str) -> Program:
    return Program(
        instrs=tuple(instrs),
        tile_size=CORPUS_TILE,
        concrete=True,
        label=label,
    )


def _tile_out(count: int = CORPUS_TILE) -> int:
    """A plausible tile output image (all-zero Δs)."""
    return pack_deltas([0] * count)


def malformed_corpus(seed: int = 0) -> List[MalformedCase]:
    """Build the seeded malformed-program corpus (every GMX code covered)."""
    rng = random.Random(f"gmx-corpus:{seed}")
    fill = _fill()
    cases: List[MalformedCase] = []

    def csrw(csr: str, value) -> Instr:
        return Instr("csrw", csr=csr, value=value)

    def csrr(csr: str, value=0) -> Instr:
        return Instr("csrr", csr=csr, value=value)

    def gmx_v(rs1: int = fill, rs2: int = fill) -> Instr:
        return Instr("gmx.v", rs1=rs1, rs2=rs2, out=(_tile_out(),))

    def gmx_tb(rs1: int = fill, rs2: int = fill) -> Instr:
        return Instr(
            "gmx.tb", rs1=rs1, rs2=rs2, out=(0, 0, encode_pos(0, 3, CORPUS_TILE))
        )

    pattern = _chunk(rng)
    text = _chunk(rng)
    other = _chunk(rng)

    # GMX001 — tile compute with gmx_text never initialised.
    cases.append(
        MalformedCase(
            name="uninit-text-read",
            program=_trace([csrw("gmx_pattern", pattern), gmx_v()], "uninit-text"),
            expect=(("GMX001", 1),),
        )
    )
    # GMX001 — csrr of a CSR nothing wrote.
    cases.append(
        MalformedCase(
            name="csrr-before-write",
            program=_trace([csrr("gmx_lo")], "csrr-first"),
            expect=(("GMX001", 0),),
        )
    )
    # GMX001 — gmx.tb without a gmx_pos image.
    cases.append(
        MalformedCase(
            name="tb-uninit-pos",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(),
                    gmx_tb(),
                    csrr("gmx_lo"),
                    csrr("gmx_hi"),
                    csrr("gmx_pos"),
                ],
                "tb-no-pos",
            ),
            expect=(("GMX001", 3),),
        )
    )
    # GMX002 — traceback with no tile ever computed.
    cases.append(
        MalformedCase(
            name="tb-before-tile",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    csrw("gmx_pos", encode_pos(3, 3, CORPUS_TILE)),
                    gmx_tb(),
                    csrr("gmx_lo"),
                    csrr("gmx_hi"),
                    csrr("gmx_pos"),
                ],
                "tb-first",
            ),
            expect=(("GMX002", 3),),
        )
    )
    # GMX002 — traceback of a tile other than the computed one.
    cases.append(
        MalformedCase(
            name="tb-wrong-tile",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(),
                    csrw("gmx_pattern", other),
                    csrw("gmx_pos", encode_pos(3, 3, CORPUS_TILE)),
                    gmx_tb(),
                    csrr("gmx_lo"),
                    csrr("gmx_hi"),
                    csrr("gmx_pos"),
                ],
                "tb-wrong-tile",
            ),
            expect=(("GMX002", 5),),
        )
    )
    # GMX003 — two-hot gmx_pos image (plus the trailing dead write).
    cases.append(
        MalformedCase(
            name="corrupt-pos-two-hot",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(),
                    csrw("gmx_pos", 0b0110),
                ],
                "pos-two-hot",
            ),
            expect=(("GMX003", 3), ("GMX005", 3)),
        )
    )
    # GMX003 — one-hot but outside the 2T edge slots.
    cases.append(
        MalformedCase(
            name="corrupt-pos-out-of-range",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(),
                    csrw("gmx_pos", 1 << (2 * CORPUS_TILE)),
                ],
                "pos-range",
            ),
            expect=(("GMX003", 3), ("GMX005", 3)),
        )
    )
    # GMX004 — the illegal 0b11 Δ field.
    cases.append(
        MalformedCase(
            name="bad-delta-encoding",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(rs1=0b11),
                ],
                "bad-delta",
            ),
            expect=(("GMX004", 2),),
        )
    )
    # GMX004 (warning) — garbage above the chunk's 2T bits.
    cases.append(
        MalformedCase(
            name="high-garbage-delta",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(rs1=fill | (1 << (2 * CORPUS_TILE + 1))),
                ],
                "high-garbage",
            ),
            expect=(("GMX004", 2),),
        )
    )
    # GMX005 — shuffled CSR writes: pattern written twice, no consumer.
    cases.append(
        MalformedCase(
            name="dead-write-shuffled",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_pattern", other),
                    csrw("gmx_text", text),
                    gmx_v(),
                ],
                "dead-write",
            ),
            expect=(("GMX005", 0),),
        )
    )
    # GMX005 — truncated program: setup with no compute at all.
    cases.append(
        MalformedCase(
            name="truncated-program",
            program=_trace(
                [csrw("gmx_pattern", pattern), csrw("gmx_text", text)],
                "truncated",
            ),
            expect=(("GMX005", 0), ("GMX005", 1)),
        )
    )
    # GMX006 — a legal Δ image that no boundary or prior tile supplied.
    cases.append(
        MalformedCase(
            name="foreign-edge",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    gmx_v(rs1=pack_deltas([-1, 1, 0, 1])),
                ],
                "foreign-edge",
            ),
            expect=(("GMX006", 2),),
        )
    )
    # GMX007 — gmx.vh on a single-write-port core.
    cases.append(
        MalformedCase(
            name="vh-single-port",
            program=_trace(
                [
                    csrw("gmx_pattern", pattern),
                    csrw("gmx_text", text),
                    Instr("gmx.vh", rs1=fill, rs2=fill, out=(_tile_out(), _tile_out())),
                ],
                "vh-1port",
            ),
            expect=(("GMX007", 2),),
            ports=1,
        )
    )
    # GMX008 — an undecodable word in a binary program.
    cases.append(
        MalformedCase(
            name="binary-undecodable-word",
            program=Program.from_words(
                [encode_csr("csrrw", "gmx_pattern", 0, 1), 0xFFFF_FFFF],
                tile_size=CORPUS_TILE,
                label="bin-undecodable",
            ),
            expect=(("GMX005", 0), ("GMX008", 1)),
        )
    )
    # GMX001 (binary) — tile compute before the CSR setup words.
    cases.append(
        MalformedCase(
            name="binary-shuffled-setup",
            program=Program.from_words(
                [encode("gmx.v", 5, 0, 0)],
                tile_size=CORPUS_TILE,
                label="bin-shuffled",
            ),
            expect=(("GMX001", 0), ("GMX001", 0)),
        )
    )
    # GMX002 (binary) — gmx.tb with no tile computation before it.
    cases.append(
        MalformedCase(
            name="binary-tb-first",
            program=Program.from_words(
                [
                    encode_csr("csrrw", "gmx_pattern", 0, 1),
                    encode_csr("csrrw", "gmx_text", 0, 2),
                    encode_csr("csrrw", "gmx_pos", 0, 3),
                    encode("gmx.tb", 0, 0, 0),
                    encode_csr("csrrs", "gmx_lo", 4, 0),
                    encode_csr("csrrs", "gmx_hi", 5, 0),
                    encode_csr("csrrs", "gmx_pos", 6, 0),
                ],
                tile_size=CORPUS_TILE,
                label="bin-tb-first",
            ),
            expect=(("GMX002", 3),),
        )
    )
    # GMX006 (binary) — operand register no prior instruction defined.
    cases.append(
        MalformedCase(
            name="binary-undefined-register",
            program=Program.from_words(
                [
                    encode_csr("csrrw", "gmx_pattern", 0, 1),
                    encode_csr("csrrw", "gmx_text", 0, 2),
                    encode("gmx.v", 6, 5, 0),
                ],
                tile_size=CORPUS_TILE,
                label="bin-undef-reg",
            ),
            expect=(("GMX006", 2),),
        )
    )
    return cases


def aligner_stream_programs(
    seed: int = 0,
    pairs: int = 6,
    *,
    tile_size: int = 32,
) -> List[Tuple[str, Program]]:
    """Retired streams of the three GMX aligners over seeded pairs.

    Returns ``(label, program)`` entries; every program must verify clean.
    Covers fused and non-fused Full(GMX), auto-widening Banded(GMX), and
    the per-window programs of Windowed(GMX).
    """
    from ..align.banded_gmx import BandedGmxAligner
    from ..align.full_gmx import FullGmxAligner
    from ..align.windowed_gmx import WindowedGmxAligner
    from ..workloads.generator import generate_pair

    rng = random.Random(f"gmx-streams:{seed}")
    programs: List[Tuple[str, Program]] = []
    for index in range(pairs):
        length = rng.randint(2 * tile_size, 4 * tile_size)
        error = rng.choice((0.02, 0.08, 0.20))
        pair = generate_pair(length, error, rng)
        for label, factory in (
            ("Full(GMX)", lambda s: FullGmxAligner(tile_size=tile_size, trace_sink=s)),
            (
                "Full(GMX,fused)",
                lambda s: FullGmxAligner(tile_size=tile_size, fused=True, trace_sink=s),
            ),
            ("Banded(GMX)", lambda s: BandedGmxAligner(tile_size=tile_size, trace_sink=s)),
            (
                "Windowed(GMX)",
                lambda s: WindowedGmxAligner(tile_size=tile_size, trace_sink=s),
            ),
        ):
            sink: List = []
            factory(sink).align(pair.pattern, pair.text)
            for sub_index, events in enumerate(sink):
                programs.append(
                    (
                        f"{label}[pair {index}, program {sub_index}]",
                        Program.from_trace(
                            events,
                            tile_size=tile_size,
                            label=f"{label}/pair{index}/prog{sub_index}",
                        ),
                    )
                )
    return programs
