"""Repo invariant lint: AST-enforced codebase contracts.

Four contracts the type system cannot express, each with a stable
``REPRO0xx`` code (see :mod:`repro.analysis.diagnostics`):

* **REPRO001** — no bare ``except:`` handlers anywhere in the package
  (they swallow ``KeyboardInterrupt``/``SystemExit`` and hide bugs).
* **REPRO002** — every exception class (name ending in ``Error`` or
  ``Exception``) derives from an error root: at least one base whose name
  also ends in ``Error``/``Exception`` (builtin roots such as
  ``RuntimeError``/``ValueError`` qualify).  This keeps each module's
  errors catchable through its documented root.
* **REPRO003** — no floating point in the core kernel hot paths
  (:data:`HOT_PATH_MODULES`): no float literals, ``float()`` calls, or
  true division.  The GMX kernels are exact integer/bit machines; a float
  sneaking in silently breaks bit-for-bit reproducibility.
* **REPRO004** — every default-constructible :class:`repro.align.base.Aligner`
  subclass must pickle round-trip, because :mod:`repro.align.parallel`
  ships aligners to worker processes.  The same contract covers the
  kernel backend layer: every available registered backend round-trips,
  and every backend-capable aligner round-trips *per backend* with the
  backend choice surviving the trip.
* **REPRO005** — tests and benchmarks must use seeded RNGs: no unseeded
  ``random.Random()`` and no calls through the module-level global RNG
  (``random.randint`` etc.).  Every suite in this repo is a determinism
  claim; an unseeded RNG turns failures into unreproducible flakes.

The syntactic checks (REPRO001/2/3/5) parse source ASTs and import
nothing; REPRO004 imports the aligner modules and pickles real instances.
REPRO005 runs only against a source checkout (it scans ``tests/`` and
``benchmarks/`` beside ``src/``), so installed-package lints skip it.
"""

from __future__ import annotations

import ast
import pickle
from pathlib import Path
from typing import List, Optional

from .diagnostics import Diagnostic, Severity

#: Package-relative modules whose function bodies must stay float-free.
HOT_PATH_MODULES = (
    "core/tile.py",
    "core/delta.py",
    "core/bitvec.py",
    "core/isa.py",
    "core/traceback.py",
    "align/backends.py",
)

#: Suffixes identifying an exception class by name.
_ERROR_SUFFIXES = ("Error", "Exception")

#: ``random.<name>`` calls that draw from (or reseed) the interpreter-wide
#: global RNG — hidden shared state between tests.
_GLOBAL_RNG_FUNCS = frozenset(
    {
        "seed", "random", "randint", "randrange", "randbytes", "getrandbits",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "expovariate", "betavariate",
        "gammavariate", "paretovariate", "vonmisesvariate", "weibullvariate",
    }
)


def package_root() -> Path:
    """Filesystem root of the installed ``repro`` package."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """Repository root when running from a source checkout (``src`` layout)."""
    return package_root().parent.parent


def lint_repo(
    root: Optional[Path] = None, *, pickle_check: bool = True
) -> List[Diagnostic]:
    """Run every repo invariant check; returns all findings.

    Args:
        root: package directory to walk (defaults to the installed
            ``repro`` package).
        pickle_check: also run the dynamic aligner-picklability probe
            (REPRO004); disable when linting a synthetic tree.
    """
    root = Path(root) if root is not None else package_root()
    diagnostics: List[Diagnostic] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        tree = ast.parse(path.read_text(), filename=str(path))
        diagnostics.extend(_check_bare_except(tree, relative))
        diagnostics.extend(_check_exception_roots(tree, relative))
        if relative in HOT_PATH_MODULES:
            diagnostics.extend(_check_no_floats(tree, relative))
    if pickle_check:
        diagnostics.extend(check_aligner_picklability())
    if root == package_root():
        diagnostics.extend(lint_test_determinism())
    return diagnostics


def lint_test_determinism(root: Optional[Path] = None) -> List[Diagnostic]:
    """REPRO005: every RNG in ``tests/`` and ``benchmarks/`` is seeded.

    Scans the suite directories beside ``src/`` for unseeded
    ``random.Random()`` constructions and calls through the module-level
    global RNG.  Returns no findings when the directories do not exist
    (installed package, synthetic lint trees).
    """
    root = Path(root) if root is not None else repo_root()
    findings: List[Diagnostic] = []
    for directory in ("tests", "benchmarks"):
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            relative = path.relative_to(root).as_posix()
            tree = ast.parse(path.read_text(), filename=str(path))
            findings.extend(_check_seeded_rng(tree, relative))
    return findings


def _check_seeded_rng(tree: ast.AST, relative: str) -> List[Diagnostic]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        offense = None
        hint = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            if func.attr == "Random" and not node.args and not node.keywords:
                offense = "unseeded random.Random() in a test suite"
                hint = (
                    "pass an explicit seed (random.Random(0xSEED)) so "
                    "failures replay bit-identically"
                )
            elif func.attr in _GLOBAL_RNG_FUNCS:
                offense = (
                    f"random.{func.attr}() draws from the interpreter-wide "
                    f"global RNG"
                )
                hint = (
                    "construct a local random.Random(seed) instead of "
                    "sharing hidden global state between tests"
                )
        elif (
            isinstance(func, ast.Name)
            and func.id == "Random"
            and not node.args
            and not node.keywords
        ):
            offense = "unseeded Random() in a test suite"
            hint = (
                "pass an explicit seed (Random(0xSEED)) so failures "
                "replay bit-identically"
            )
        if offense is None:
            continue
        findings.append(
            Diagnostic(
                code="REPRO005",
                severity=Severity.ERROR,
                message=offense,
                hint=hint,
                where=f"{relative}:{node.lineno}",
            )
        )
    return findings


def _where(relative: str, node: ast.AST) -> str:
    return f"src/repro/{relative}:{node.lineno}"


def _check_bare_except(tree: ast.AST, relative: str) -> List[Diagnostic]:
    findings = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(
                Diagnostic(
                    code="REPRO001",
                    severity=Severity.ERROR,
                    message="bare `except:` swallows every exception "
                    "including KeyboardInterrupt",
                    hint="catch the narrowest exception type that can occur",
                    where=_where(relative, node),
                )
            )
    return findings


def _base_name(base: ast.expr) -> str:
    """Last dotted component of a base-class expression ('' if dynamic)."""
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Name):
        return base.id
    return ""


def _check_exception_roots(tree: ast.AST, relative: str) -> List[Diagnostic]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith(_ERROR_SUFFIXES):
            continue
        bases = [_base_name(base) for base in node.bases]
        if any(name.endswith(_ERROR_SUFFIXES) for name in bases):
            continue
        findings.append(
            Diagnostic(
                code="REPRO002",
                severity=Severity.ERROR,
                message=f"exception class {node.name} does not derive from "
                f"an error root (bases: {', '.join(bases) or 'none'})",
                hint="derive from the module's *Error root (or a builtin "
                "*Error) so callers can catch the documented hierarchy",
                where=_where(relative, node),
            )
        )
    return findings


def _check_no_floats(tree: ast.AST, relative: str) -> List[Diagnostic]:
    findings = []
    for node in ast.walk(tree):
        offense = None
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            offense = f"float literal {node.value!r}"
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            offense = "true division (`/`)"
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            offense = "float() conversion"
        if offense is None:
            continue
        findings.append(
            Diagnostic(
                code="REPRO003",
                severity=Severity.ERROR,
                message=f"{offense} in kernel hot path {relative}",
                hint="the GMX kernels are exact integer machines; use `//` "
                "and integer arithmetic, or move the code out of the hot "
                "path modules",
                where=_where(relative, node),
            )
        )
    return findings


def check_aligner_picklability() -> List[Diagnostic]:
    """REPRO004: pickle round-trip every default-constructible Aligner.

    Subclasses whose constructor requires arguments (e.g. the generic
    windowed driver, which needs an inner aligner) are exercised through
    their concrete default-constructible subclasses instead.

    Backend-capable aligners (``supports_backend``) are additionally
    round-tripped once per available registered backend, asserting the
    restored instance still carries the same backend — the property the
    parallel engine relies on when a backend-configured aligner ships to
    a pool worker.  Backend singletons themselves round-trip too.
    """
    import repro.align as align_pkg
    import repro.baselines as baselines_pkg
    from repro.align.backends import backend_names, get_backend
    from repro.align.base import Aligner

    del align_pkg, baselines_pkg  # imported for their subclass side effects

    findings = []

    def report(where: str, exc: Exception) -> None:
        findings.append(
            Diagnostic(
                code="REPRO004",
                severity=Severity.ERROR,
                message=f"{where} does not pickle round-trip: {exc}",
                hint="align.parallel ships aligners (and their kernel "
                "backends) to worker processes; keep constructor state "
                "picklable (no lambdas, open files, or local classes)",
                where=where,
            )
        )

    backends = backend_names()
    for backend_name in backends:
        backend = get_backend(backend_name)
        try:
            restored = pickle.loads(pickle.dumps(backend))
            if type(restored) is not type(backend):
                raise pickle.PicklingError(
                    f"round-trip produced {type(restored).__name__}"
                )
        except Exception as exc:  # noqa: BLE001 — report, never crash the lint
            report(f"backend {backend_name!r}", exc)

    seen = set()
    stack = list(Aligner.__subclasses__())
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        stack.extend(cls.__subclasses__())
        try:
            instance = cls()
        except TypeError:
            continue  # requires constructor arguments; covered via subclasses
        try:
            restored = pickle.loads(pickle.dumps(instance))
            if type(restored) is not cls:
                raise pickle.PicklingError(
                    f"round-trip produced {type(restored).__name__}"
                )
        except Exception as exc:  # noqa: BLE001 — report, never crash the lint
            report(f"{cls.__module__}.{cls.__name__}", exc)
            continue
        if not getattr(instance, "supports_backend", False):
            continue
        for backend_name in backends:
            where = (
                f"{cls.__module__}.{cls.__name__}(backend={backend_name!r})"
            )
            try:
                configured = instance.with_backend(backend_name)
                restored = pickle.loads(pickle.dumps(configured))
                restored_backend = getattr(restored, "backend", None)
                if getattr(restored_backend, "name", None) != backend_name:
                    raise pickle.PicklingError(
                        f"backend became "
                        f"{getattr(restored_backend, 'name', None)!r}"
                    )
            except Exception as exc:  # noqa: BLE001
                report(where, exc)
    return findings
