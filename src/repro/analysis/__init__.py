"""Static analysis for the GMX reproduction (``repro lint``).

Two passes, one diagnostic vocabulary:

* :mod:`repro.analysis.verifier` — the **GMX program verifier**: abstract
  CSR/register dataflow analysis over instruction streams, both retired
  :class:`~repro.core.isa.IsaEvent` traces and raw binary programs decoded
  through :mod:`repro.core.encoding` (codes ``GMX0xx``).
* :mod:`repro.analysis.repolint` — the **repo invariant lint**: AST-based
  enforcement of codebase contracts the type system can't express
  (codes ``REPRO0xx``).

See ``docs/analysis.md`` for the full diagnostic catalogue and CLI usage.
"""

from .corpus import MalformedCase, aligner_stream_programs, malformed_corpus
from .driver import LintReport, run_lint
from .diagnostics import (
    CODES,
    AnalysisError,
    Diagnostic,
    Severity,
    render_text,
    summarize,
    worst_severity,
)
from .program import Instr, Program
from .repolint import (
    check_aligner_picklability,
    lint_repo,
    lint_test_determinism,
)
from .verifier import verify_program, verify_trace, verify_words

__all__ = [
    "CODES",
    "AnalysisError",
    "Diagnostic",
    "Instr",
    "LintReport",
    "MalformedCase",
    "Program",
    "Severity",
    "aligner_stream_programs",
    "check_aligner_picklability",
    "lint_repo",
    "lint_test_determinism",
    "malformed_corpus",
    "render_text",
    "run_lint",
    "summarize",
    "verify_program",
    "verify_trace",
    "verify_words",
    "worst_severity",
]
