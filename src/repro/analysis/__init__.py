"""Static analysis for the GMX reproduction (``repro lint`` / ``repro sanitize``).

Three passes, one diagnostic vocabulary:

* :mod:`repro.analysis.verifier` — the **GMX program verifier**: abstract
  CSR/register dataflow analysis over instruction streams, both retired
  :class:`~repro.core.isa.IsaEvent` traces and raw binary programs decoded
  through :mod:`repro.core.encoding` (codes ``GMX0xx``).
* :mod:`repro.analysis.repolint` — the **repo invariant lint**: AST-based
  enforcement of codebase contracts the type system can't express
  (codes ``REPRO001``–``005``).
* :mod:`repro.analysis.sanitizer` — the **concurrency & determinism
  sanitizer** ("dsan"): worker-reachability analysis (codes ``REPRO006``–
  ``009``), registry guards with batch-boundary leak checks, and shadow
  execution diffing parallel-vs-serial content digests.

Findings export as text, JSON, or SARIF (:mod:`repro.analysis.sarif`).
See ``docs/analysis.md`` and ``docs/sanitizer.md`` for the diagnostic
catalogue and CLI usage.
"""

from .corpus import MalformedCase, aligner_stream_programs, malformed_corpus
from .driver import LintReport, run_lint
from .diagnostics import (
    CODES,
    AnalysisError,
    Diagnostic,
    Severity,
    render_text,
    summarize,
    worst_severity,
)
from .program import Instr, Program
from .repolint import (
    check_aligner_picklability,
    lint_repo,
    lint_test_determinism,
)
from .sanitizer import (
    SanitizeReport,
    SanitizerError,
    ScanReport,
    ShadowReport,
    run_sanitize,
    sanitize,
    scan_package,
    shadow_execute,
    violation_corpus,
)
from .sarif import render_sarif, to_sarif
from .verifier import verify_program, verify_trace, verify_words

__all__ = [
    "CODES",
    "AnalysisError",
    "Diagnostic",
    "Instr",
    "LintReport",
    "MalformedCase",
    "Program",
    "SanitizeReport",
    "SanitizerError",
    "ScanReport",
    "Severity",
    "ShadowReport",
    "aligner_stream_programs",
    "check_aligner_picklability",
    "lint_repo",
    "lint_test_determinism",
    "malformed_corpus",
    "render_sarif",
    "render_text",
    "run_lint",
    "run_sanitize",
    "sanitize",
    "scan_package",
    "shadow_execute",
    "summarize",
    "to_sarif",
    "verify_program",
    "verify_trace",
    "verify_words",
    "worst_severity",
]
