"""Diagnostic vocabulary shared by the static-analysis passes.

Two code families, mirroring the two passes of :mod:`repro.analysis`:

* ``GMX0xx`` — the GMX *program verifier* (:mod:`repro.analysis.verifier`):
  dataflow violations in an instruction stream;
* ``REPRO0xx`` — the *repo invariant lint* (:mod:`repro.analysis.repolint`,
  codes 001–005) and the *concurrency & determinism sanitizer*
  (:mod:`repro.analysis.sanitizer`, codes 006–009): codebase contracts the
  type system cannot express.

Every finding is a structured :class:`Diagnostic` with a stable code, a
severity, a location (instruction index or ``file:line``), and a fix hint,
so the CLI can render it as text or JSON and CI can gate on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


class AnalysisError(RuntimeError):
    """Raised when an analysis pass cannot run (not on findings)."""


class Severity(enum.Enum):
    """How bad a finding is: errors gate, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


#: Registry of every diagnostic code with its one-line meaning.
CODES: Dict[str, str] = {
    "GMX001": "CSR read before any write (uninitialized architectural state)",
    "GMX002": "gmx.tb traces a tile no prior gmx.v/gmx.h/gmx.vh computed",
    "GMX003": "malformed gmx_pos image (not one-hot on the 2T edge slots)",
    "GMX004": "out-of-domain delta encoding in a tile operand",
    "GMX005": "dead CSR write (overwritten or program ends before a consumer)",
    "GMX006": "tile-edge dependency violation (edge no prior tile produced)",
    "GMX007": "gmx.vh on a single-write-port target",
    "GMX008": "undecodable or non-GMX instruction word",
    "REPRO001": "bare `except:` handler",
    "REPRO002": "exception class outside the module's error-root hierarchy",
    "REPRO003": "floating point in a core kernel hot path",
    "REPRO004": "Aligner subclass is not picklable (breaks align.parallel)",
    "REPRO005": "unseeded or global RNG in a test/benchmark suite",
    "REPRO006": "worker-reachable write to module-level mutable state",
    "REPRO007": "ambient hook armed without a guaranteed exception-path reset",
    "REPRO008": "wall-clock or unseeded RNG in kernel/worker-reachable code",
    "REPRO009": "process-global registry mutated in worker-reachable code",
}


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding from a static-analysis pass.

    Attributes:
        code: stable code from :data:`CODES`.
        severity: :class:`Severity` of the finding.
        message: what is wrong, with the offending values spelled out.
        hint: how to fix it.
        where: location — ``<label>[<index>]`` for instruction streams,
            ``path:line`` for repo files.
        index: instruction index in the stream (``None`` for repo findings
            and program-level findings).
    """

    code: str
    severity: Severity
    message: str
    hint: str = ""
    where: str = ""
    index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise AnalysisError(f"unregistered diagnostic code {self.code!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the `repro lint --format json` shape)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": CODES[self.code],
            "message": self.message,
            "hint": self.hint,
            "where": self.where,
            "index": self.index,
        }

    def __str__(self) -> str:
        location = f" at {self.where}" if self.where else ""
        hint = f" (fix: {self.hint})" if self.hint else ""
        return f"{self.code} {self.severity.value}{location}: {self.message}{hint}"


def summarize(diagnostics: Iterable[Diagnostic]) -> Dict[str, object]:
    """Roll a diagnostic list up into the summary block reports embed."""
    items = list(diagnostics)
    by_code: Dict[str, int] = {}
    for diagnostic in items:
        by_code[diagnostic.code] = by_code.get(diagnostic.code, 0) + 1
    return {
        "total": len(items),
        "errors": sum(1 for d in items if d.severity is Severity.ERROR),
        "warnings": sum(1 for d in items if d.severity is Severity.WARNING),
        "by_code": dict(sorted(by_code.items())),
    }


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The most severe level present (``None`` for a clean run)."""
    worst: Optional[Severity] = None
    for diagnostic in diagnostics:
        if diagnostic.severity is Severity.ERROR:
            return Severity.ERROR
        worst = Severity.WARNING
    return worst


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Stable ordering: errors first, then by location and code."""
    return (
        0 if diagnostic.severity is Severity.ERROR else 1,
        diagnostic.where,
        diagnostic.index if diagnostic.index is not None else -1,
        diagnostic.code,
    )


def render_text(diagnostics: List[Diagnostic]) -> str:
    """Plain-text report: one line per finding plus a summary line."""
    lines = [str(d) for d in sorted(diagnostics, key=sort_key)]
    counts = summarize(diagnostics)
    lines.append(
        f"{counts['total']} diagnostic(s): "
        f"{counts['errors']} error(s), {counts['warnings']} warning(s)"
    )
    return "\n".join(lines)
