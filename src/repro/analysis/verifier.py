"""GMX program verifier: abstract dataflow analysis over instruction streams.

The verifier replays a :class:`~repro.analysis.program.Program` through an
abstract machine that tracks, per instruction:

* which CSRs have been written (uninitialized-read detection, GMX001);
* which (pattern, text) chunk pairs earlier tile instructions computed
  (``gmx.tb`` must trace a computed tile, GMX002);
* the concrete values flowing through ``gmx_pos`` and the ΔV/ΔH operands,
  when the program is a retired trace (GMX003 / GMX004);
* the set of edge images prior tiles produced, so a tile consuming an edge
  that is neither a boundary fill nor a prior output is caught (GMX006);
* pending CSR writes with no consumer yet (dead writes and truncated
  programs, GMX005);
* for binary programs, register def-use over the GMX/CSR instructions
  (an operand register no prior instruction defined is a GMX006 at the
  register level) and undecodable words (GMX008).

``ports=1`` models a core with a single register write port, on which the
dual-destination ``gmx.vh`` cannot retire — it is flagged as GMX007 instead
of silently accepted (see ``docs/analysis.md``).

The pass is linear in the stream length and allocates O(distinct edges).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.bitvec import pack_deltas
from ..core.isa import CSR_NAMES, IsaEvent
from .diagnostics import Diagnostic, Severity
from .program import TILE_OPS, Instr, Program

#: CSRs a tile computation consumes.
_TILE_READS = ("gmx_pattern", "gmx_text")
#: CSRs gmx.tb consumes / produces.
_TB_READS = ("gmx_pattern", "gmx_text", "gmx_pos")
_TB_WRITES = ("gmx_lo", "gmx_hi", "gmx_pos")


class _State:
    """Mutable abstract machine state while walking one program."""

    def __init__(self) -> None:
        self.written: Set[str] = set()
        self.pending: Dict[str, int] = {}  # csr -> index of unconsumed write
        self.computed_pairs: Set[Tuple[str, str]] = set()
        self.tile_ops_seen = 0
        self.produced_edges: Set[int] = set()
        self.pattern: Optional[str] = None
        self.text: Optional[str] = None
        self.defined_regs: Set[int] = {0}  # binary mode: x0 always defined


def verify_program(program: Program, *, ports: int = 2) -> List[Diagnostic]:
    """Run the dataflow analysis; returns the diagnostics, in stream order.

    Args:
        program: the stream to verify (trace or binary).
        ports: register-file write ports of the target core; ``gmx.vh``
            needs two, so ``ports=1`` flags every use as GMX007.
    """
    checker = _Checker(program, ports=ports)
    for index, instr in enumerate(program.instrs):
        checker.step(index, instr)
    checker.finish()
    return checker.diagnostics


def verify_trace(
    events,
    *,
    tile_size: int,
    label: str = "trace",
    ports: int = 2,
) -> List[Diagnostic]:
    """Verify a retired :class:`~repro.core.isa.IsaEvent` stream."""
    program = Program.from_trace(events, tile_size=tile_size, label=label)
    return verify_program(program, ports=ports)


def verify_words(
    words,
    *,
    tile_size: int = 32,
    label: str = "binary",
    ports: int = 2,
) -> List[Diagnostic]:
    """Verify a raw binary program (sequence of 32-bit words)."""
    program = Program.from_words(words, tile_size=tile_size, label=label)
    return verify_program(program, ports=ports)


class _Checker:
    """One verification walk; collects diagnostics into :attr:`diagnostics`."""

    def __init__(self, program: Program, *, ports: int) -> None:
        self.program = program
        self.ports = ports
        self.state = _State()
        self.diagnostics: List[Diagnostic] = []

    # -- reporting helpers ---------------------------------------------------

    def _report(
        self,
        code: str,
        index: Optional[int],
        message: str,
        hint: str,
        severity: Severity = Severity.ERROR,
    ) -> None:
        where = (
            f"{self.program.label}[{index}]"
            if index is not None
            else self.program.label
        )
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                hint=hint,
                where=where,
                index=index,
            )
        )

    # -- per-instruction dispatch --------------------------------------------

    def step(self, index: int, instr: Instr) -> None:
        if instr.op == "csrw":
            self._check_csrw(index, instr)
        elif instr.op == "csrr":
            self._check_csrr(index, instr)
        elif instr.op in TILE_OPS:
            self._check_tile(index, instr)
        elif instr.op == "gmx.tb":
            self._check_tb(index, instr)
        else:
            word = f" {instr.word:#010x}" if instr.word is not None else ""
            self._report(
                "GMX008",
                index,
                f"undecodable instruction word{word}: {instr.note or instr.op}",
                "assemble GMX programs from the custom-0 and csrrw/csrrs "
                "encodings in repro.core.encoding",
            )

    def finish(self) -> None:
        """End-of-program: every still-pending write went unconsumed."""
        for csr, write_index in sorted(
            self.state.pending.items(), key=lambda item: item[1]
        ):
            self._report(
                "GMX005",
                write_index,
                f"write to {csr} is never consumed before the program ends "
                f"(truncated program?)",
                "drop the write or finish the compute/traceback sequence "
                "that should consume it",
                severity=Severity.WARNING,
            )

    # -- CSR accesses ---------------------------------------------------------

    def _check_csrw(self, index: int, instr: Instr) -> None:
        state = self.state
        csr = instr.csr
        if csr not in CSR_NAMES:
            self._report(
                "GMX008",
                index,
                f"CSR access targets {csr!r}, not a GMX CSR",
                f"use one of {', '.join(CSR_NAMES)}",
            )
            return
        if csr in state.pending:
            self._report(
                "GMX005",
                state.pending[csr],
                f"dead write: {csr} written here is overwritten at "
                f"instruction {index} with no consumer in between",
                "remove the dead write or reorder the CSR setup so every "
                "write reaches a gmx.{v,h,vh,tb} or csrr",
            )
        state.written.add(csr)
        state.pending[csr] = index
        if self.program.concrete:
            if csr == "gmx_pattern":
                state.pattern = instr.value if isinstance(instr.value, str) else None
            elif csr == "gmx_text":
                state.text = instr.value if isinstance(instr.value, str) else None
            elif csr == "gmx_pos":
                self._check_pos_image(index, instr.value)
        if not self.program.concrete and instr.rd is not None:
            state.defined_regs.add(instr.rd)

    def _check_csrr(self, index: int, instr: Instr) -> None:
        state = self.state
        csr = instr.csr
        if csr not in CSR_NAMES:
            self._report(
                "GMX008",
                index,
                f"CSR access targets {csr!r}, not a GMX CSR",
                f"use one of {', '.join(CSR_NAMES)}",
            )
            return
        if csr not in state.written:
            self._report(
                "GMX001",
                index,
                f"{csr} is read before any write initialises it",
                f"csrw {csr} before reading it",
            )
        state.pending.pop(csr, None)
        if not self.program.concrete and instr.rd is not None:
            state.defined_regs.add(instr.rd)

    def _check_pos_image(self, index: int, value: object) -> None:
        if not isinstance(value, int):
            return
        tile_size = self.program.tile_size
        one_hot = value > 0 and not (value & (value - 1))
        in_range = one_hot and value.bit_length() - 1 < 2 * tile_size
        if not one_hot:
            self._report(
                "GMX003",
                index,
                f"gmx_pos image {value:#x} is not one-hot",
                "encode the start cell with repro.core.isa.encode_pos",
            )
        elif not in_range:
            self._report(
                "GMX003",
                index,
                f"gmx_pos slot {value.bit_length() - 1} is outside the "
                f"2T = {2 * tile_size} edge slots",
                "the one-hot bit must index a bottom-row or right-column cell",
            )

    # -- tile computation ------------------------------------------------------

    def _require_csrs(self, index: int, op: str, names) -> None:
        for csr in names:
            if csr not in self.state.written:
                self._report(
                    "GMX001",
                    index,
                    f"{op} consumes {csr}, which no instruction has written",
                    f"csrw {csr} before issuing {op}",
                )

    def _consume(self, names) -> None:
        for csr in names:
            self.state.pending.pop(csr, None)

    def _check_tile(self, index: int, instr: Instr) -> None:
        state = self.state
        if instr.op == "gmx.vh" and self.ports < 2:
            self._report(
                "GMX007",
                index,
                "gmx.vh needs two register write ports; this target has "
                f"{self.ports}",
                "recompile with the gmx.v/gmx.h pair, or verify against a "
                "2-port configuration",
            )
        self._require_csrs(index, instr.op, _TILE_READS)
        self._consume(_TILE_READS)
        if self.program.concrete:
            self._check_operands(index, instr)
            for image in instr.out:
                state.produced_edges.add(image)
            if state.pattern is not None and state.text is not None:
                state.computed_pairs.add((state.pattern, state.text))
        else:
            self._check_register_uses(index, instr)
            if instr.rd:
                state.defined_regs.add(instr.rd)
                if instr.op == "gmx.vh" and instr.rd < 31:
                    state.defined_regs.add(instr.rd + 1)
        state.tile_ops_seen += 1

    def _check_tb(self, index: int, instr: Instr) -> None:
        state = self.state
        self._require_csrs(index, "gmx.tb", _TB_READS)
        if self.program.concrete:
            pair = (state.pattern, state.text)
            if None not in pair and pair not in state.computed_pairs:
                self._report(
                    "GMX002",
                    index,
                    "gmx.tb traces the tile "
                    f"(pattern={pair[0]!r}, text={pair[1]!r}) that no prior "
                    "gmx.v/gmx.h/gmx.vh computed",
                    "compute the tile before tracing it back (Algorithm 1 "
                    "before Algorithm 2)",
                )
            self._check_operands(index, instr)
        else:
            if state.tile_ops_seen == 0:
                self._report(
                    "GMX002",
                    index,
                    "gmx.tb issued before any tile computation instruction",
                    "compute the tile before tracing it back (Algorithm 1 "
                    "before Algorithm 2)",
                )
            self._check_register_uses(index, instr)
        self._consume(_TB_READS)
        for csr in _TB_WRITES:
            if csr in state.pending:
                self._report(
                    "GMX005",
                    state.pending[csr],
                    f"dead write: {csr} written here is overwritten by the "
                    f"gmx.tb at instruction {index} with no consumer in "
                    "between",
                    "read gmx_lo/gmx_hi/gmx_pos after each gmx.tb before the "
                    "next one replaces them",
                )
            state.written.add(csr)
            state.pending[csr] = index

    # -- operand-value checks (concrete programs) ------------------------------

    def _operand_lengths(self) -> Tuple[Optional[int], Optional[int]]:
        pattern = self.state.pattern
        text = self.state.text
        return (
            len(pattern) if pattern is not None else None,
            len(text) if text is not None else None,
        )

    def _check_operands(self, index: int, instr: Instr) -> None:
        pattern_len, text_len = self._operand_lengths()
        for name, image, count in (
            ("rs1 (ΔV_in)", instr.rs1, pattern_len),
            ("rs2 (ΔH_in)", instr.rs2, text_len),
        ):
            if image is None or count is None:
                continue
            if self._check_delta_image(index, instr.op, name, image, count):
                self._check_edge_provenance(index, instr.op, name, image, count)

    def _check_delta_image(
        self, index: int, op: str, name: str, image: int, count: int
    ) -> bool:
        """Validate the 2-bit Δ fields; True when the image is well-formed."""
        for position in range(count):
            if (image >> (2 * position)) & 0b11 == 0b11:
                self._report(
                    "GMX004",
                    index,
                    f"{op} {name} holds the illegal Δ bit pattern 0b11 "
                    f"at element {position} (image {image:#x})",
                    "pack operands with repro.core.bitvec.pack_deltas; "
                    "0b11 encodes no Δ value",
                )
                return False
        if image >> (2 * count):
            self._report(
                "GMX004",
                index,
                f"{op} {name} has non-zero bits above the {count}-element "
                f"chunk (image {image:#x})",
                "mask operand registers to 2 bits per chunk element",
                severity=Severity.WARNING,
            )
            return False
        return True

    def _check_edge_provenance(
        self, index: int, op: str, name: str, image: int, count: int
    ) -> None:
        boundary_fills = (0, pack_deltas([1] * count))
        if image in boundary_fills or image in self.state.produced_edges:
            return
        self._report(
            "GMX006",
            index,
            f"{op} {name} consumes edge image {image:#x}, which is neither "
            "a boundary fill (all +1 / all 0) nor an edge a prior tile "
            "produced",
            "feed tile inputs from DP boundary fills or stored gmx.v/gmx.h "
            "outputs",
        )

    # -- register def-use (binary programs) ------------------------------------

    def _check_register_uses(self, index: int, instr: Instr) -> None:
        for name, reg in (("rs1", instr.rs1), ("rs2", instr.rs2)):
            if reg is None or reg in self.state.defined_regs:
                continue
            self._report(
                "GMX006",
                index,
                f"{instr.op} {name} reads x{reg}, which no prior GMX/CSR "
                "instruction in this program defined",
                "produce the edge with an earlier gmx.v/gmx.h/csrr, or use "
                "x0 for an all-zero boundary",
            )


def verify_events_clean(events: List[IsaEvent], *, tile_size: int) -> bool:
    """True when a retired stream verifies with no diagnostics at all."""
    return not verify_trace(events, tile_size=tile_size)
