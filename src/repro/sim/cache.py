"""Set-associative cache simulator.

A classic write-back/write-allocate LRU cache, composable into multi-level
hierarchies.  The figure-level timing models use an analytic working-set
classification (see :mod:`repro.sim.memory`) because full-length runs would
need billions of accesses; this simulator exists to *validate* that
classification on down-scaled kernels (tests replay synthetic access
streams shaped like each aligner's) and for the cache-behaviour example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        name: label ("L1d", "L2", ...).
        size_bytes: total capacity.
        associativity: ways per set.
        line_bytes: cache-line size.
        latency_cycles: access (hit) latency.
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    latency_cycles: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError(f"invalid cache geometry: {self}")
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ValueError(
                f"{self.name}: size must be a multiple of ways × line size"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass
class CacheStats:
    """Hit/miss accounting for one level."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig, next_level: Optional["Cache"] = None):
        self.config = config
        self.next_level = next_level
        self.stats = CacheStats()
        # sets[index] maps tag -> dirty flag; dict preserves insertion order,
        # which we maintain as LRU order (oldest first).
        self._sets: List[Dict[int, bool]] = [
            {} for _ in range(config.num_sets)
        ]

    def access(self, address: int, *, write: bool = False) -> int:
        """Access one byte address; returns the latency in cycles."""
        line = address // self.config.line_bytes
        index = line % self.config.num_sets
        tag = line // self.config.num_sets
        ways = self._sets[index]
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or write  # refresh LRU position
            return self.config.latency_cycles
        self.stats.misses += 1
        latency = self.config.latency_cycles
        if self.next_level is not None:
            latency += self.next_level.access(address, write=False)
        latency += self._fill(index, tag, write)
        return latency

    def _fill(self, index: int, tag: int, write: bool) -> int:
        """Install a line, evicting LRU if needed; returns writeback latency."""
        ways = self._sets[index]
        extra = 0
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = next(iter(ways.items()))
            del ways[victim_tag]
            if victim_dirty:
                self.stats.writebacks += 1
                if self.next_level is not None:
                    victim_line = victim_tag * self.config.num_sets + index
                    extra = self.next_level.access(
                        victim_line * self.config.line_bytes, write=True
                    )
        ways[tag] = write
        return extra

    def flush(self) -> int:
        """Write back all dirty lines; returns the number written back."""
        count = 0
        for index, ways in enumerate(self._sets):
            for tag, dirty in list(ways.items()):
                if dirty:
                    count += 1
                    self.stats.writebacks += 1
                    if self.next_level is not None:
                        line = tag * self.config.num_sets + index
                        self.next_level.access(
                            line * self.config.line_bytes, write=True
                        )
            ways.clear()
        return count


class CacheHierarchy:
    """A linear chain of cache levels in front of memory.

    Args:
        configs: level configurations, innermost first.
        memory_latency_cycles: latency charged on a last-level miss.
    """

    def __init__(
        self, configs: List[CacheConfig], memory_latency_cycles: int = 100
    ):
        if not configs:
            raise ValueError("at least one cache level is required")
        self.memory_latency_cycles = memory_latency_cycles
        self.levels: List[Cache] = []
        next_cache: Optional[Cache] = None
        for config in reversed(configs):
            next_cache = Cache(config, next_cache)
            self.levels.append(next_cache)
        self.levels.reverse()
        self.memory_accesses = 0

    def access(self, address: int, *, write: bool = False) -> int:
        """Access through the hierarchy; returns total latency."""
        latency = self.levels[0].access(address, write=write)
        return latency

    def finalize(self) -> None:
        """Account memory traffic for last-level misses and writebacks."""
        last = self.levels[-1]
        self.memory_accesses = last.stats.misses + last.stats.writebacks

    @property
    def stats_by_level(self) -> Dict[str, CacheStats]:
        """Per-level statistics keyed by level name."""
        return {cache.config.name: cache.stats for cache in self.levels}
