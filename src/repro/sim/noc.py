"""Mesh network-on-chip model for the 16-core system (paper §7.1).

The multicore evaluation runs on "a 16-core network-on-chip (NoC) with two
DDR4 memory controllers".  The scaling model in :mod:`repro.sim.multicore`
treats interconnect contention with a single coefficient; this module
provides the structural level underneath it: a 2D mesh with XY routing,
distance-dependent LLC-slice latency, bisection bandwidth, and an
M/M/1-style contention factor — the quantities an architect would check
before believing the flat coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..obs import runtime as obs


@dataclass(frozen=True)
class MeshNoc:
    """A rows×cols 2D mesh with XY dimension-ordered routing.

    Attributes:
        rows / cols: mesh dimensions (4×4 for the paper's 16 cores).
        hop_cycles: link traversal cycles per hop.
        router_cycles: per-router pipeline cycles.
        link_bandwidth_gbs: per-link bandwidth for bisection analysis.
    """

    rows: int = 4
    cols: int = 4
    hop_cycles: int = 1
    router_cycles: int = 2
    link_bandwidth_gbs: float = 32.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"mesh must be at least 1×1, got {self.rows}×{self.cols}")
        if self.hop_cycles < 0 or self.router_cycles < 0:
            raise ValueError("hop and router cycles must be non-negative")

    @property
    def nodes(self) -> int:
        """Number of mesh nodes (cores / LLC slices)."""
        return self.rows * self.cols

    def coordinates(self, node: int) -> Tuple[int, int]:
        """(row, col) of a node id."""
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} outside the {self.rows}×{self.cols} mesh")
        return divmod(node, self.cols)[0], node % self.cols

    def hops(self, source: int, destination: int) -> int:
        """Manhattan (XY-routed) hop count between two nodes."""
        sr, sc = self.coordinates(source)
        dr, dc = self.coordinates(destination)
        return abs(sr - dr) + abs(sc - dc)

    def latency_cycles(self, source: int, destination: int) -> int:
        """Zero-load latency of one traversal (routers + links)."""
        hop_count = self.hops(source, destination)
        return hop_count * self.hop_cycles + (hop_count + 1) * self.router_cycles

    @property
    def average_hops(self) -> float:
        """Mean hop count over all (source, destination) pairs.

        For address-interleaved LLC slices, every core spreads its accesses
        uniformly over all nodes, so this is the expected distance of an
        LLC access.
        """
        with obs.span("sim.noc.average_hops", nodes=self.nodes):
            total = 0
            for source in range(self.nodes):
                for destination in range(self.nodes):
                    total += self.hops(source, destination)
        obs.inc("sim.noc.sweeps")
        return total / (self.nodes * self.nodes)

    def average_llc_latency(self) -> float:
        """Expected zero-load cycles added to a shared-LLC access."""
        return (
            self.average_hops * self.hop_cycles
            + (self.average_hops + 1) * self.router_cycles
        )

    @property
    def bisection_links(self) -> int:
        """Links crossing the mesh's narrower bisection cut."""
        if self.cols >= self.rows:
            return self.rows  # vertical cut crosses one link per row
        return self.cols

    @property
    def bisection_bandwidth_gbs(self) -> float:
        """Aggregate bandwidth across the bisection (both directions)."""
        return 2 * self.bisection_links * self.link_bandwidth_gbs

    def contention_factor(self, utilization: float) -> float:
        """Queueing latency multiplier at a link utilisation in [0, 1).

        M/M/1 waiting-time inflation, capped at 8× to keep the model out
        of the (unstable) saturated regime — by then the bandwidth cap in
        the multicore model dominates anyway.
        """
        if utilization < 0:
            raise ValueError(f"utilization must be non-negative, got {utilization}")
        if utilization >= 1:
            return 8.0
        return min(8.0, 1.0 / (1.0 - utilization))


#: The paper's 16-core configuration.
MESH_4X4 = MeshNoc(rows=4, cols=4)
