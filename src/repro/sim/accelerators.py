"""Performance/area models of the DSA comparators (paper §7.4, Table 2).

The paper compares one GMX-enabled core against one GenASM vault and one
Darwin GACT PE "based on the material reported by these works" — i.e. by
modelling, exactly as we must.  Each model turns the published peak rates
and the algorithmic work of the accelerator's kernel into a window-level
throughput:

* **GenASM vault** (MICRO 2020, 28nm): Bitap-based, processes one window
  column per error level per cycle — W·(d+1) cycles per W-wide window plus
  a traceback pass; published peak 64 GCUPS/PE and 0.33 mm²/PE.
* **Darwin GACT PE** (ASPLOS 2018, 28nm): a 64-element systolic array
  computing one antidiagonal slice per cycle — (W²/64 + W) cycles per
  window; published 54.2 GCUPS across 64 PEs and 1.34 mm²/PE.
* **GMX** occupies 0.0216 mm² (unit) / 1.24 mm² (core+GMX) and computes a
  32×32 tile every cycle once pipelined: 1024 GCUPS peak.

Table 2's full GCUPS/PE roster is included as published data for the
comparison harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: §7.4 windowed configuration shared by all three accelerators.
DSA_WINDOW = 96
DSA_OVERLAP = 32


@dataclass(frozen=True)
class AcceleratorSpec:
    """Published characteristics of one accelerator PE (Table 2).

    Attributes:
        name: study name.
        device: implementation technology.
        pes: processing engines the study reports.
        area_per_pe: mm² per PE (None for GPU SMs / FPGA LUT counts).
        area_note: textual area when not in mm².
        peak_gcups_per_pe: peak giga cell-updates per second per PE.
        gap_affine: True when the study implements gap-affine scores.
    """

    name: str
    device: str
    pes: int
    area_per_pe: float | None
    peak_gcups_per_pe: float
    gap_affine: bool = False
    area_note: str = ""


#: Table 2 of the paper, verbatim.
TABLE2_SPECS: Tuple[AcceleratorSpec, ...] = (
    AcceleratorSpec("GMX Unit", "ASIC", 1, 0.02, 1024.0),
    AcceleratorSpec("Core+GMX", "ASIC", 1, 1.24, 1024.0),
    AcceleratorSpec("GenASM", "ASIC", 32, 0.33, 64.0),
    AcceleratorSpec("ABSW", "ASIC", 1, 5.51, 61.4, gap_affine=True),
    AcceleratorSpec("GenAX", "ASIC", 4, 1.34, 112.0),
    AcceleratorSpec("Darwin", "ASIC", 64, 1.34, 54.2, gap_affine=True),
    AcceleratorSpec("ASAP", "FPGA", 1, None, 51.2, area_note="277K LUTs"),
    AcceleratorSpec(
        "FPGASW", "FPGA", 1, None, 105.9, gap_affine=True, area_note="58K LUTs"
    ),
    AcceleratorSpec("DPX", "GPU", 132, None, 42.4, gap_affine=True),
    AcceleratorSpec("GASAL2", "GPU", 28, None, 2.3, gap_affine=True),
    AcceleratorSpec("BPM-GPU", "GPU", 8, None, 287.5),
    AcceleratorSpec("NVBio", "GPU", 15, None, 66.6),
)


@dataclass(frozen=True)
class WindowedDsaModel:
    """Cycle model of a windowed accelerator PE.

    Attributes:
        name: accelerator name.
        frequency_ghz: PE clock.
        area_mm2: silicon area of one PE.
        compute_cycles_per_window: a callable signature is avoided — the
            harness fills per-window cycles via :meth:`window_cycles`.
    """

    name: str
    frequency_ghz: float
    area_mm2: float
    cycles_per_column: float
    traceback_cycles_per_window: float
    host_cycles_per_window: float = 0.0
    window: int = DSA_WINDOW
    overlap: int = DSA_OVERLAP

    def window_cycles(self) -> float:
        """Cycles to process one W×W window: compute + traceback + host."""
        return (
            self.window * self.cycles_per_column
            + self.traceback_cycles_per_window
            + self.host_cycles_per_window
        )

    def windows_for(self, length: int) -> int:
        """Windows needed to traverse a length-``length`` pair."""
        if length <= self.window:
            return 1
        step = self.window - self.overlap
        return 1 + -(-(length - self.window) // step)

    def alignments_per_second(self, length: int, error_rate: float) -> float:
        """Modelled throughput on pairs of the given length/divergence."""
        cycles = self.windows_for(length) * self.window_cycles()
        # Bitap-style engines repeat columns per error level; encode the
        # error sensitivity through cycles_per_column at model build time.
        del error_rate
        return self.frequency_ghz * 1e9 / cycles


def genasm_vault_model() -> WindowedDsaModel:
    """One GenASM vault: wide Bitap hardware with a serial traceback.

    GenASM-DC computes all (k+1) error-level vectors of a text column with
    parallel hardware, so a column costs only a few cycles regardless of
    divergence; the traceback (GenASM-TB) walks one operation per cycle.
    Constants are calibrated so one vault reproduces GenASM's published
    per-vault alignment rates (the paper's §7.4 comparison method).  The
    published vault area is 0.334 mm² — 15.46× the GMX unit (§7.4).
    """
    return WindowedDsaModel(
        name="GenASM vault",
        frequency_ghz=1.0,
        area_mm2=0.334,
        cycles_per_column=3.0,
        traceback_cycles_per_window=DSA_WINDOW,
        host_cycles_per_window=100,
    )


def darwin_gact_model() -> WindowedDsaModel:
    """One Darwin GACT PE: 64-wide systolic array over the window.

    Per window: ~3·W²/64 compute cycles (three gap-affine matrices on the
    64-element array), streaming the 4-bit traceback pointers to SRAM
    (W²·4/64 cycles), a serial 3W-cycle traceback, and — decisive in the
    paper's §7.4 comparison — host/device orchestration per window, since
    Darwin is a loosely-coupled co-processor (calibrated so a window costs
    what Darwin's published end-to-end alignments/s imply).  Area per GACT
    PE: 26.29× the GMX unit (§7.4), i.e. ≈0.568 mm².
    """
    return WindowedDsaModel(
        name="Darwin GACT PE",
        frequency_ghz=0.8,
        area_mm2=26.29 * 0.0216,
        cycles_per_column=3 * DSA_WINDOW / 64,
        traceback_cycles_per_window=3 * DSA_WINDOW + DSA_WINDOW**2 * 4 // 64,
        host_cycles_per_window=2000,
    )


def throughput_per_area(spec: AcceleratorSpec) -> float | None:
    """GCUPS per mm² for ASIC entries (None when area is not in mm²)."""
    if spec.area_per_pe is None:
        return None
    return spec.peak_gcups_per_pe / spec.area_per_pe


def table2_rows() -> List[Dict[str, object]]:
    """Table 2 as report rows, with derived GCUPS/mm² where available."""
    rows = []
    for spec in TABLE2_SPECS:
        rows.append(
            {
                "study": spec.name,
                "device": spec.device,
                "pes": spec.pes,
                "area_per_pe": spec.area_per_pe
                if spec.area_per_pe is not None
                else spec.area_note,
                "pgcups_per_pe": spec.peak_gcups_per_pe,
                "gap_affine": spec.gap_affine,
                "gcups_per_mm2": throughput_per_area(spec),
            }
        )
    return rows
