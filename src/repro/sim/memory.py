"""Analytic memory-system model: residence classification and DRAM bandwidth.

The figure-level timing pipeline cannot replay billion-access traces, so it
classifies each kernel's memory behaviour analytically:

* the *hot* working set (``KernelStats.hot_bytes`` — e.g. one column of tile
  edges) is served by the smallest cache level that contains it;
* the *streamed* state (traceback matrices, written once and re-read once
  much later) costs DRAM traffic whenever the total DP footprint exceeds the
  last-level cache.

This matches the paper's own narrative for Figure 12: Full(BPM) scales
until its DP matrices stop fitting in the caches, after which the DDR4
controllers' 47.8 GB/s peak becomes the wall, while the GMX variants' tiny
footprints keep them compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .cache import CacheConfig

#: Peak bandwidth of the evaluated two-controller DDR4 system (§7.1).
DDR4_PEAK_BANDWIDTH_GBS = 47.8


@dataclass(frozen=True)
class MemorySystemConfig:
    """Cache hierarchy geometry plus DRAM characteristics.

    Attributes:
        levels: cache levels, innermost first.
        dram_latency_cycles: last-level miss latency.
        dram_bandwidth_gbs: peak DRAM bandwidth available to the chip.
    """

    levels: Tuple[CacheConfig, ...]
    dram_latency_cycles: int = 100
    dram_bandwidth_gbs: float = DDR4_PEAK_BANDWIDTH_GBS

    def residence_level(self, footprint_bytes: int) -> int:
        """Index of the smallest level containing ``footprint_bytes``.

        Returns ``len(levels)`` when nothing contains it (DRAM residence).
        """
        for index, level in enumerate(self.levels):
            if footprint_bytes <= level.size_bytes:
                return index
        return len(self.levels)

    def access_latency(self, level_index: int) -> int:
        """Load-to-use latency of a hit at the given level (DRAM past the end)."""
        if level_index >= len(self.levels):
            return (
                sum(level.latency_cycles for level in self.levels)
                + self.dram_latency_cycles
            )
        return sum(
            level.latency_cycles for level in self.levels[: level_index + 1]
        )

    @property
    def llc_bytes(self) -> int:
        """Capacity of the last cache level."""
        return self.levels[-1].size_bytes


@dataclass(frozen=True)
class TrafficEstimate:
    """DRAM traffic and stall estimate for one kernel invocation.

    Attributes:
        hot_level: cache level index serving the hot working set.
        load_latency_cycles: average latency of a DP-state load.
        dram_bytes: bytes exchanged with DRAM.
    """

    hot_level: int
    load_latency_cycles: int
    dram_bytes: int


def classify_kernel(
    config: MemorySystemConfig,
    hot_bytes: int,
    total_bytes: int,
    bytes_read: int,
    bytes_written: int,
) -> TrafficEstimate:
    """Classify a kernel's memory behaviour.

    Args:
        hot_bytes: short-reuse-distance working set.
        total_bytes: peak DP-state footprint.
        bytes_read/bytes_written: DP-state traffic totals.
    """
    hot_level = config.residence_level(hot_bytes)
    load_latency = config.access_latency(hot_level)
    # DP-state *reads* in every implemented kernel touch recently written
    # state (the previous column / the hot working set), so they are served
    # by the caches and modelled through ``load_latency``.  The write-once
    # stream (traceback matrices) is what reaches DRAM: dirty lines beyond
    # the LLC are evicted exactly once.  Traceback re-reads touch only the
    # alignment path — negligible traffic.
    if total_bytes > config.llc_bytes:
        spill_fraction = 1.0 - config.llc_bytes / total_bytes
        dram_bytes = int(bytes_written * spill_fraction)
    else:
        dram_bytes = 0
    del bytes_read
    return TrafficEstimate(
        hot_level=hot_level,
        load_latency_cycles=load_latency,
        dram_bytes=dram_bytes,
    )


def bandwidth_limited_time(
    dram_bytes: int, seconds_compute: float, bandwidth_gbs: float
) -> float:
    """Total runtime once DRAM streaming is overlapped with compute.

    The kernel cannot finish faster than its DRAM traffic allows; below the
    bandwidth wall the compute time stands.
    """
    if dram_bytes <= 0:
        return seconds_compute
    transfer = dram_bytes / (bandwidth_gbs * 1e9)
    return max(seconds_compute, transfer)
