"""Named system configurations from the paper's evaluation (§7.1, Table 1).

* ``gem5-InOrder`` — simple single-issue in-order core, private 64 kB L1 and
  1 MB L2, 1 MB LLC per core;
* ``gem5-OoO`` — 8-way superscalar out-of-order, Arm Neoverse-V1-like, same
  hierarchy;
* ``RTL-InOrder`` — the Sargantana-based edge SoC of Table 1: 7-stage
  in-order RV64G, 32 kB L1d / 16 kB L1i, 512 kB LLC, bimodal predictor;
* the 16-core NoC multicore with two DDR4 controllers at 47.8 GB/s peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cache import CacheConfig
from .core_model import CoreConfig
from .memory import DDR4_PEAK_BANDWIDTH_GBS, MemorySystemConfig

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class SystemConfig:
    """A complete evaluated system: one core model + one memory system."""

    name: str
    core: CoreConfig
    memory: MemorySystemConfig
    cores: int = 1


#: gem5-InOrder (§7.1): single-issue in-order, 64 kB L1, 1 MB L2, 1 MB LLC.
GEM5_INORDER = SystemConfig(
    name="gem5-InOrder",
    core=CoreConfig(
        name="gem5-InOrder",
        frequency_ghz=2.0,
        issue_width=1,
        out_of_order=False,
        mlp=1.0,
        branch_mispredict_rate=0.02,
        branch_penalty=5,
    ),
    memory=MemorySystemConfig(
        levels=(
            CacheConfig("L1d", 64 * KB, 4, latency_cycles=2),
            CacheConfig("L2", 1 * MB, 8, latency_cycles=12),
            CacheConfig("LLC", 1 * MB, 16, latency_cycles=30),
        ),
        dram_latency_cycles=120,
        dram_bandwidth_gbs=DDR4_PEAK_BANDWIDTH_GBS,
    ),
)

#: gem5-OoO (§7.1): 8-way superscalar, Neoverse-V1-like.  The issue width
#: is the *sustained* IPC on these dependence-heavy kernels, not the
#: nominal 8-wide front end; both gem5 cores run at the same clock so the
#: Figure-11 speedups isolate the microarchitecture.
GEM5_OOO = SystemConfig(
    name="gem5-OoO",
    core=CoreConfig(
        name="gem5-OoO",
        frequency_ghz=2.0,
        issue_width=4,
        out_of_order=True,
        mlp=16.0,
        branch_mispredict_rate=0.01,
        branch_penalty=12,
    ),
    memory=GEM5_INORDER.memory,
)

#: RTL-InOrder (Table 1): the Sargantana-based edge SoC at 1 GHz.
RTL_INORDER = SystemConfig(
    name="RTL-InOrder",
    core=CoreConfig(
        name="RTL-InOrder",
        frequency_ghz=1.0,
        issue_width=1,
        out_of_order=False,
        mlp=1.0,
        branch_mispredict_rate=0.03,  # 128-entry bimodal predictor
        branch_penalty=4,  # 7-stage pipeline
    ),
    memory=MemorySystemConfig(
        levels=(
            CacheConfig("L1d", 32 * KB, 4, latency_cycles=3),
            CacheConfig("LLC", 512 * KB, 8, latency_cycles=14),
        ),
        dram_latency_cycles=100,
        # Narrow single-channel edge memory system: this is what makes
        # Full(BPM) "strongly limited by the memory bandwidth on the RTL
        # SoC" (§7.3) while the GMX variants stay compute-bound.
        dram_bandwidth_gbs=1.0,
    ),
)

#: The 16-core gem5-OoO NoC system with two DDR4 controllers (§7.1).
#: The per-core 1 MB LLC slices aggregate into one shared 16 MB LLC.
MULTICORE_OOO = SystemConfig(
    name="16-core gem5-OoO",
    core=GEM5_OOO.core,
    memory=MemorySystemConfig(
        levels=(
            CacheConfig("L1d", 64 * KB, 4, latency_cycles=2),
            CacheConfig("L2", 1 * MB, 8, latency_cycles=12),
            CacheConfig("LLC", 16 * MB, 16, latency_cycles=40),
        ),
        dram_latency_cycles=120,
        dram_bandwidth_gbs=DDR4_PEAK_BANDWIDTH_GBS,
    ),
    cores=16,
)

#: Table-1 raw parameters, for the configuration-dump experiment.
RTL_INORDER_SOC_TABLE: Dict[str, str] = {
    "Pipeline": "64-bit RISC-V (RV64G), 7-stages, 128-entry bimodal "
    "predictor, 32-entry graduation list",
    "Memory Unit": "8-entry LSQ, 8-entry Store Buffer, 16 misses in flight",
    "iTLB & dTLB": "Fully associative, 16 entries per TLB",
    "Data cache": "32 KB 4-way, 3-cycle, VIPT, 2-entry MSHR",
    "Inst. cache": "16 KB 4-way, 2-cycle, VIPT",
    "LLC": "512 KBytes, 8-way set associative",
}


def system_registry() -> Dict[str, SystemConfig]:
    """Name → system map of every evaluated configuration."""
    return {
        system.name: system
        for system in (GEM5_INORDER, GEM5_OOO, RTL_INORDER, MULTICORE_OOO)
    }
