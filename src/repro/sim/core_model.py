"""Core timing models: in-order and out-of-order cycle estimation.

These are deliberately simple bottleneck models (the reproduction's gem5
substitute): a kernel's cycles follow from its retired-instruction mix,
its memory behaviour (via :mod:`repro.sim.memory`), and a handful of
microarchitectural parameters.

* **In-order, single-issue** (gem5-InOrder, RTL-InOrder): one instruction
  per cycle plus exposed load-use latency beyond the L1, exposed GMX
  latencies, and branch-misprediction penalties.
* **Out-of-order, W-wide** (gem5-OoO, Neoverse-V1-like): throughput-bound
  at ``instructions / width``, or at the single GMX unit, or at memory —
  whichever is the bottleneck; load latency is mostly hidden by
  memory-level parallelism.

Both cap the result with the DRAM bandwidth wall, which is what bends the
Full(BPM) curves in Figures 12 and 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..align.base import KernelStats
from .memory import MemorySystemConfig, bandwidth_limited_time, classify_kernel


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of a modelled core.

    Attributes:
        name: label used in reports.
        frequency_ghz: core clock.
        issue_width: sustained instructions per cycle.
        out_of_order: enables latency hiding (MLP, GMX overlap).
        mlp: outstanding-miss parallelism used to hide load latency.
        branch_mispredict_rate: fraction of branches mispredicted.
        branch_penalty: cycles lost per misprediction.
        gmx_ac_latency: gmx.v / gmx.h latency (paper: 2 cycles at 1 GHz).
        gmx_tb_latency: gmx.tb latency (paper: 6 cycles).
    """

    name: str
    frequency_ghz: float = 1.0
    issue_width: int = 1
    out_of_order: bool = False
    mlp: float = 1.0
    branch_mispredict_rate: float = 0.02
    branch_penalty: int = 5
    gmx_ac_latency: int = 2
    gmx_tb_latency: int = 6


@dataclass(frozen=True)
class PerformanceEstimate:
    """Modelled execution of one kernel invocation on one core.

    Attributes:
        cycles: total cycles including memory stalls.
        compute_cycles: cycles before the DRAM bandwidth cap.
        mem_stall_cycles: exposed load-latency cycles.
        dram_bytes: DRAM traffic attributed to the kernel.
        seconds: wall time at the core clock (after the bandwidth cap).
    """

    cycles: float
    compute_cycles: float
    mem_stall_cycles: float
    dram_bytes: int
    seconds: float

    @property
    def bandwidth_bound(self) -> bool:
        """True when DRAM streaming, not compute, set the runtime."""
        return self.dram_bytes > 0 and self.cycles > self.compute_cycles * 1.001


def estimate_kernel(
    stats: KernelStats,
    core: CoreConfig,
    memory: MemorySystemConfig,
    *,
    bandwidth_share: float = 1.0,
) -> PerformanceEstimate:
    """Estimate the execution time of one kernel invocation.

    Args:
        bandwidth_share: fraction of the DRAM peak available to this core
            (used by the multicore model to express contention).
    """
    if not 0 < bandwidth_share <= 1.0:
        raise ValueError(f"bandwidth share must be in (0, 1], got {bandwidth_share}")
    instr = stats.instructions
    total = stats.total_instructions
    traffic = classify_kernel(
        memory,
        stats.effective_hot_bytes,
        stats.dp_bytes_peak,
        stats.dp_bytes_read,
        stats.dp_bytes_written,
    )
    l1_latency = memory.access_latency(0)
    extra_load_latency = max(0, traffic.load_latency_cycles - l1_latency)
    branch_cycles = (
        instr["branch"] * core.branch_mispredict_rate * core.branch_penalty
    )
    if core.out_of_order:
        issue_cycles = total / core.issue_width
        # One GMX unit.  gmx.v/gmx.h issue back-to-back but neighbouring
        # tiles are data-dependent (edge vectors flow right/down), so about
        # half the 2-cycle latency is exposed even out of order; gmx.tb is
        # fully serialised through gmx_pos.
        gmx_cycles = (
            instr["gmx"] * (1 + 0.5 * (core.gmx_ac_latency - 1))
            + instr["gmx_tb"] * core.gmx_tb_latency
        )
        mem_stalls = instr["load"] * extra_load_latency / max(core.mlp, 1.0)
        compute_cycles = max(issue_cycles, gmx_cycles) + mem_stalls + branch_cycles
    else:
        gmx_extra = (
            instr["gmx"] * (core.gmx_ac_latency - 1) * 0.5
            + instr["gmx_tb"] * (core.gmx_tb_latency - 1)
        )
        mem_stalls = instr["load"] * extra_load_latency
        compute_cycles = total + gmx_extra + mem_stalls + branch_cycles
    seconds_compute = compute_cycles / (core.frequency_ghz * 1e9)
    seconds = bandwidth_limited_time(
        traffic.dram_bytes,
        seconds_compute,
        memory.dram_bandwidth_gbs * bandwidth_share,
    )
    cycles = seconds * core.frequency_ghz * 1e9
    return PerformanceEstimate(
        cycles=cycles,
        compute_cycles=compute_cycles,
        mem_stall_cycles=mem_stalls,
        dram_bytes=traffic.dram_bytes,
        seconds=seconds,
    )


def throughput_alignments_per_second(
    stats: KernelStats,
    pairs: int,
    core: CoreConfig,
    memory: MemorySystemConfig,
    *,
    bandwidth_share: float = 1.0,
) -> float:
    """Alignments per second for a batch whose total stats are ``stats``."""
    if pairs < 1:
        raise ValueError(f"pairs must be positive, got {pairs}")
    estimate = estimate_kernel(
        stats, core, memory, bandwidth_share=bandwidth_share
    )
    return pairs / estimate.seconds
