"""Micro-op-level in-order pipeline simulator.

The figure models use closed-form cycle estimates
(:mod:`repro.sim.core_model`).  This module provides the next level of
fidelity down: a single-issue, stall-on-use, in-order pipeline that
executes an explicit micro-op stream with true data dependencies — the
reproduction's stand-in for gem5's ``MinorCPU``-style model, and the tool
used to *validate* the analytic in-order recipe (see
``tests/sim/test_pipeline.py``).

A :class:`MicroOp` names its producer micro-ops; the pipeline issues one
op per cycle, stalling when a source's result is not yet ready and
flushing on mispredicted branches.  Synthesizers build the dependency
graphs of the paper's kernels:

* :func:`synthesize_full_gmx_compute` — Algorithm 1's inner loop, with the
  ΔH chain flowing down each tile column (the dependence that exposes part
  of the 2-cycle gmx.v/gmx.h latency);
* :func:`synthesize_bpm_column` — the 17-op Myers block step, a serial
  dependency chain per column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..obs import runtime as obs

#: Default result latencies per micro-op kind (cycles).
DEFAULT_LATENCIES: Dict[str, int] = {
    "int_alu": 1,
    "load": 3,  # L1 load-to-use
    "store": 1,
    "branch": 1,
    "csr": 1,
    "gmx": 2,  # gmx.v / gmx.h (paper: 2-cycle pipelined)
    "gmx_tb": 6,  # gmx.tb (paper: 6-cycle multicycle)
}


@dataclass(frozen=True)
class MicroOp:
    """One dynamic micro-operation.

    Attributes:
        kind: instruction class (keys of DEFAULT_LATENCIES).
        sources: ids (indices in the stream) of producer micro-ops whose
            results this op consumes.
        mispredicted: True for a branch that flushes the front end.
    """

    kind: str
    sources: Tuple[int, ...] = ()
    mispredicted: bool = False


@dataclass
class PipelineResult:
    """Outcome of one pipeline run.

    Attributes:
        instructions: micro-ops retired.
        cycles: total execution cycles.
        stall_cycles: cycles lost waiting on operands.
        flush_cycles: cycles lost to branch mispredictions.
    """

    instructions: int = 0
    cycles: int = 0
    stall_cycles: int = 0
    flush_cycles: int = 0

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class InOrderPipeline:
    """Single-issue in-order pipeline with stall-on-use and branch flushes.

    Args:
        latencies: per-kind result latencies (defaults merged in).
        branch_penalty: cycles lost per mispredicted branch.
    """

    def __init__(
        self,
        latencies: Optional[Dict[str, int]] = None,
        branch_penalty: int = 4,
    ):
        self.latencies = dict(DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        self.branch_penalty = branch_penalty

    def run(self, stream: Iterable[MicroOp]) -> PipelineResult:
        """Execute a micro-op stream; returns cycle accounting.

        Only a sliding window of producer ready-times is kept, so streams
        of millions of micro-ops run in O(1) memory — sources must
        therefore reference ops no further than 4096 positions back.
        """
        with obs.span("sim.pipeline.in_order"):
            result = self._run(stream)
        obs.inc("sim.pipeline.runs")
        return result

    def _run(self, stream: Iterable[MicroOp]) -> PipelineResult:
        window = 4096
        ready: Dict[int, int] = {}
        result = PipelineResult()
        cycle = 0
        for index, op in enumerate(stream):
            latency = self.latencies.get(op.kind)
            if latency is None:
                raise ValueError(f"unknown micro-op kind {op.kind!r}")
            issue = cycle + 1
            for source in op.sources:
                if source >= index:
                    raise ValueError(
                        f"micro-op {index} sources the future op {source}"
                    )
                if index - source > window:
                    raise ValueError(
                        f"micro-op {index} sources {source}, beyond the "
                        f"{window}-op dependency window"
                    )
                available = ready.get(source, 0)
                if available > issue:
                    result.stall_cycles += available - issue
                    issue = available
            cycle = issue
            ready[index] = issue + latency - 1
            if op.mispredicted:
                cycle += self.branch_penalty
                result.flush_cycles += self.branch_penalty
            result.instructions += 1
            if index % 1024 == 0 and index > 2 * window:
                stale = index - 2 * window
                for key in [k for k in ready if k < stale]:
                    del ready[key]
        result.cycles = cycle
        return result


class OutOfOrderPipeline:
    """W-wide out-of-order engine with a ROB and per-kind functional units.

    The model captures the three effects that matter for the Figure-11
    comparison: dispatch width, dataflow-limited issue (ops start when
    their operands are ready, not in program order), and structural
    hazards on scarce units (one GMX unit; gmx.tb occupies it for its full
    multicycle latency, everything else is pipelined).

    Args:
        width: dispatch/retire bandwidth per cycle.
        rob_size: reorder-buffer entries (limits how far issue runs ahead).
        functional_units: available units per kind (defaults below).
        latencies: per-kind result latencies (defaults merged in).
    """

    DEFAULT_UNITS: Dict[str, int] = {
        "int_alu": 4,
        "load": 2,
        "store": 2,
        "branch": 1,
        "csr": 1,
        "gmx": 1,
        "gmx_tb": 1,
    }

    #: Kinds whose unit stays busy for the full latency (unpipelined).
    UNPIPELINED = ("gmx_tb",)

    def __init__(
        self,
        width: int = 4,
        rob_size: int = 128,
        functional_units: Optional[Dict[str, int]] = None,
        latencies: Optional[Dict[str, int]] = None,
        branch_penalty: int = 12,
    ):
        if width < 1 or rob_size < width:
            raise ValueError(
                f"need width ≥ 1 and rob_size ≥ width, got {width}/{rob_size}"
            )
        self.width = width
        self.rob_size = rob_size
        self.units = dict(self.DEFAULT_UNITS)
        if functional_units:
            self.units.update(functional_units)
        self.latencies = dict(DEFAULT_LATENCIES)
        if latencies:
            self.latencies.update(latencies)
        self.branch_penalty = branch_penalty

    def run(self, stream: Iterable[MicroOp]) -> PipelineResult:
        """Execute a micro-op stream out of order; returns cycle accounting."""
        with obs.span("sim.pipeline.out_of_order", width=self.width):
            result = self._run(stream)
        obs.inc("sim.pipeline.runs")
        return result

    def _run(self, stream: Iterable[MicroOp]) -> PipelineResult:
        result = PipelineResult()
        finish: Dict[int, int] = {}  # op id -> completion cycle
        retire_times: List[int] = []  # sliding window of retire cycles
        retired_before = 0  # ops already dropped from the window
        # Per-kind pipelined unit next-free cycles (round-robin).
        unit_free: Dict[str, List[int]] = {
            kind: [0] * count for kind, count in self.units.items()
        }
        fetch_cycle = 0
        fetch_slots = self.width
        for index, op in enumerate(stream):
            latency = self.latencies.get(op.kind)
            if latency is None:
                raise ValueError(f"unknown micro-op kind {op.kind!r}")
            # In-order dispatch, `width` per cycle, bounded by the ROB.
            if fetch_slots == 0:
                fetch_cycle += 1
                fetch_slots = self.width
            fetch_slots -= 1
            dispatch = fetch_cycle
            rob_tail = index - self.rob_size
            if rob_tail >= retired_before:
                dispatch = max(
                    dispatch, retire_times[rob_tail - retired_before]
                )
            # Dataflow issue: wait for operands and a functional unit.
            start = dispatch + 1
            for source in op.sources:
                if source >= index:
                    raise ValueError(
                        f"micro-op {index} sources the future op {source}"
                    )
                start = max(start, finish.get(source, 0))
            units = unit_free[op.kind]
            slot = min(range(len(units)), key=units.__getitem__)
            start = max(start, units[slot])
            busy = latency if op.kind in self.UNPIPELINED else 1
            units[slot] = start + busy
            done = start + latency
            finish[index] = done
            if op.mispredicted:
                # Later fetch resumes after resolution.
                fetch_cycle = max(fetch_cycle, done + self.branch_penalty)
                fetch_slots = self.width
                result.flush_cycles += self.branch_penalty
            # In-order retirement, `width` per cycle.
            previous_retire = retire_times[-1] if retire_times else 0
            retire = max(done, previous_retire)
            if len(retire_times) >= self.width and retire_times[-self.width] >= retire:
                retire = retire_times[-self.width] + 1
            retire_times.append(retire)
            result.instructions += 1
            # Keep the windows bounded.
            if len(retire_times) > 2 * self.rob_size:
                drop = len(retire_times) - self.rob_size
                retired_before += drop
                del retire_times[:drop]
                stale = index - 2 * self.rob_size
                for key in [k for k in finish if k < stale]:
                    del finish[key]
        result.cycles = retire_times[-1] if retire_times else 0
        return result


# ---------------------------------------------------------------------------
# Kernel micro-op synthesizers
# ---------------------------------------------------------------------------

def synthesize_full_gmx_compute(
    tile_rows: int,
    tile_columns: int,
    *,
    store_edges: bool = True,
    mispredict_every: int = 64,
) -> Iterator[MicroOp]:
    """Micro-op stream of Algorithm 1's tile loop.

    Per tile: two edge loads, a csrw of the pattern chunk, gmx.v and gmx.h
    consuming both loads (and the previous tile's gmx.h through the ΔH
    column chain), address arithmetic, edge stores, and the loop branch.
    """
    index = 0
    branch_count = 0

    def emit(kind: str, sources: Tuple[int, ...] = (), mispredicted=False):
        nonlocal index
        op = MicroOp(kind=kind, sources=sources, mispredicted=mispredicted)
        index += 1
        return op

    for _column in range(tile_columns):
        yield emit("csr")  # csrw gmx_text
        yield emit("int_alu")
        yield emit("branch")
        previous_gmx_h: Optional[int] = None
        for _row in range(tile_rows):
            load_v = index
            yield emit("load")
            load_h = index
            yield emit("load")
            yield emit("csr")  # csrw gmx_pattern
            chain = (previous_gmx_h,) if previous_gmx_h is not None else ()
            gmx_v = index
            yield emit("gmx", (load_v, load_h) + chain)
            gmx_h = index
            yield emit("gmx", (load_v, load_h) + chain)
            previous_gmx_h = gmx_h
            if store_edges:
                yield emit("store", (gmx_v,))
                yield emit("store", (gmx_h,))
            for _ in range(4):
                yield emit("int_alu")
            branch_count += 1
            yield emit(
                "branch", mispredicted=branch_count % mispredict_every == 0
            )
        for _ in range(3):
            yield emit("int_alu")


def synthesize_bpm_column(
    blocks: int,
    columns: int,
    *,
    mispredict_every: int = 64,
) -> Iterator[MicroOp]:
    """Micro-op stream of the Myers block step (17 chained ALU ops).

    The 17 bitwise/arithmetic operations of a block update form an almost
    fully serial dependency chain — which is why BPM's IPC is high but its
    per-cell cost cannot drop below ~17/w instructions.
    """
    index = 0
    branch_count = 0

    def emit(kind: str, sources: Tuple[int, ...] = (), mispredicted=False):
        nonlocal index
        op = MicroOp(kind=kind, sources=sources, mispredicted=mispredicted)
        index += 1
        return op

    for _column in range(columns):
        carry: Optional[int] = None
        for _block in range(blocks):
            load_pv = index
            yield emit("load")
            load_mv = index
            yield emit("load")
            load_eq = index
            yield emit("load")
            previous = [load_pv, load_mv, load_eq]
            if carry is not None:
                previous.append(carry)
            last = None
            for step in range(17):
                sources = tuple(previous[-2:]) if last is None else (last,)
                last = index
                yield emit("int_alu", sources)
            carry = last
            yield emit("store", (last,))
            yield emit("store", (last,))
            branch_count += 1
            yield emit(
                "branch", mispredicted=branch_count % mispredict_every == 0
            )
