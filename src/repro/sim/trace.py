"""Memory address-trace generators for the alignment kernels.

The figure-level timing pipeline uses the *analytic* residence model of
:mod:`repro.sim.memory`; these generators produce the actual byte-address
streams of each kernel's DP-state accesses so that the set-associative
cache simulator (:mod:`repro.sim.cache`) can validate that model on
scaled-down kernels — the test suite replays them and checks the
classification (fits-in-cache vs streams-to-DRAM, hot-set residence level)
against what the simulator observes.

Layouts mirror the natural implementations:

* **Full(GMX)** — the edge matrix ``M`` is tile-row-major; each tile
  computation reads its left neighbour's ΔV and upper neighbour's ΔH and
  writes its own pair; the traceback re-reads edges along the tile
  antidiagonal.
* **Full(BPM)** — column-major history of (Pv, Mv, Ph, Mh) words per
  (block, column); distance-only mode keeps one column in place.
* **Full(DP)** — the classic row-major int matrix; each cell reads up,
  left, and diagonal and writes itself.

All traces yield ``(byte_address, is_write)`` tuples.
"""

from __future__ import annotations

from typing import Iterator, Tuple

Access = Tuple[int, bool]

#: Base address of the DP state in the synthetic address space.
DP_BASE = 0x1000_0000


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def full_gmx_trace(
    n: int,
    m: int,
    *,
    tile_size: int = 32,
    traceback: bool = True,
) -> Iterator[Access]:
    """DP-state accesses of Full(GMX) (Algorithm 1 + 2).

    ``M[i][j]`` occupies two 8-byte registers at
    ``DP_BASE + (i·m_tiles + j)·16``.
    """
    nt = _ceil_div(n, tile_size)
    mt = _ceil_div(m, tile_size)
    edge_pair = 16  # ΔV + ΔH registers

    def address(ti: int, tj: int) -> int:
        return DP_BASE + (ti * mt + tj) * edge_pair

    if not traceback:
        # Distance-only mode: one in-place column of ΔV edges (the ΔH
        # carry stays in a register while flowing down the column).
        for _tj in range(mt):
            for ti in range(nt):
                slot = DP_BASE + ti * 8
                yield slot, False
                yield slot, True
        return

    for tj in range(mt):
        for ti in range(nt):
            if tj > 0:
                yield address(ti, tj - 1), False  # left neighbour's ΔV
            if ti > 0:
                yield address(ti - 1, tj), False  # upper neighbour's ΔH
            yield address(ti, tj), True
            yield address(ti, tj) + 8, True
    if traceback:
        # The walk visits ~one tile per tile antidiagonal, re-reading the
        # two input edges of each.
        ti, tj = nt - 1, mt - 1
        while ti >= 0 and tj >= 0:
            if tj > 0:
                yield address(ti, tj - 1), False
            if ti > 0:
                yield address(ti - 1, tj), False
            if ti >= tj:
                ti -= 1
            else:
                tj -= 1


def bpm_trace(
    n: int,
    m: int,
    *,
    word_size: int = 64,
    traceback: bool = True,
) -> Iterator[Access]:
    """DP-state accesses of Full(BPM) (multi-block Myers).

    With traceback, the four difference words of (block, column) live at
    ``DP_BASE + (column·blocks + block)·32``; distance-only mode updates a
    single column of (Pv, Mv) words in place.
    """
    blocks = _ceil_div(n, word_size)
    word = word_size // 8
    if traceback:
        entry = 4 * word
        for column in range(m):
            for block in range(blocks):
                # Read the previous column's vertical state...
                if column > 0:
                    previous = DP_BASE + ((column - 1) * blocks + block) * entry
                    yield previous, False
                    yield previous + word, False
                # ...and write all four masks of this column.
                current = DP_BASE + (column * blocks + block) * entry
                for index in range(4):
                    yield current + index * word, True
    else:
        entry = 2 * word
        for _column in range(m):
            for block in range(blocks):
                slot = DP_BASE + block * entry
                yield slot, False
                yield slot + word, False
                yield slot, True
                yield slot + word, True


def nw_trace(n: int, m: int, *, cell_bytes: int = 4) -> Iterator[Access]:
    """DP-state accesses of Full(DP) with the stored row-major matrix."""
    stride = (m + 1) * cell_bytes

    def address(i: int, j: int) -> int:
        return DP_BASE + i * stride + j * cell_bytes

    for i in range(1, n + 1):
        for j in range(1, m + 1):
            yield address(i - 1, j), False  # up
            yield address(i, j - 1), False  # left
            yield address(i - 1, j - 1), False  # diagonal
            yield address(i, j), True


def replay(trace: Iterator[Access], hierarchy) -> None:
    """Feed a trace through a :class:`~repro.sim.cache.CacheHierarchy`."""
    for address, is_write in trace:
        hierarchy.access(address, write=is_write)
    hierarchy.finalize()
