"""Closed-form kernel-statistics predictors.

Functional runs of every aligner are feasible up to ~10 kbp in Python, but
the paper's scalability points (1 Mbp pairs, §7.3) execute 10⁸–10¹¹ DP
cells — far beyond interpreter speed.  This module predicts the
:class:`~repro.align.base.KernelStats` of each aligner *without running it*
by mirroring the aligners' instruction recipes over closed-form (or cheap
dry-run) iteration counts.

Fidelity contract, enforced by the test suite:

* distance-only predictions match the instrumented aligners **exactly**
  (same Counter, same traffic) on randomised inputs;
* traceback predictions match within a few percent (the traceback path's
  tile count and operation mix depend on the data; we use their expected
  values).

``distance`` inputs default to the expected edit distance of the workload
generator, ``≈ 0.85 · error_rate · length`` (edits partially cancel).
"""

from __future__ import annotations

from typing import Optional

from ..align.base import KernelStats
from ..align.full_gmx import _edge_bytes

#: Expected edit distance per generated error (edits partially cancel).
DISTANCE_PER_ERROR = 0.85


def expected_distance(length: int, error_rate: float) -> int:
    """Expected edit distance of a generated pair."""
    return round(DISTANCE_PER_ERROR * error_rate * length)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ---------------------------------------------------------------------------
# GMX aligners
# ---------------------------------------------------------------------------

def predict_full_gmx(
    n: int,
    m: int,
    *,
    traceback: bool = True,
    distance: int = 0,
    tile_size: int = 32,
    fused: bool = False,
) -> KernelStats:
    """Predict Full(GMX) stats (mirrors ``FullGmxAligner.align``).

    Args:
        fused: model the dual-destination ``gmx.vh`` variant (§5): one
            tile instruction instead of the gmx.v/gmx.h pair.
    """
    stats = KernelStats()
    nt = _ceil_div(n, tile_size)
    mt = _ceil_div(m, tile_size)
    tiles = nt * mt
    edge = _edge_bytes(tile_size)
    stats.tiles = tiles
    stats.dp_cells = n * m
    stats.add_instr("csr", mt + tiles)
    stats.add_instr("gmx", tiles if fused else 2 * tiles)
    stats.add_instr("load", 2 * tiles)
    stats.add_instr("int_alu", 5 * mt + 4 * tiles)
    stats.add_instr("branch", mt + tiles)
    stats.dp_bytes_read += 2 * edge * tiles
    stats.hot_bytes = edge * (nt + 1)
    if not traceback:
        stats.dp_bytes_peak = stats.hot_bytes
        return stats
    stats.add_instr("store", 2 * tiles)
    stats.dp_bytes_written += 2 * edge * tiles
    stats.dp_bytes_peak = 2 * edge * tiles
    _add_gmx_traceback(stats, n, m, distance, tile_size)
    return stats


def _add_gmx_traceback(
    stats: KernelStats, n: int, m: int, distance: int, tile_size: int
) -> None:
    """Expected-value model of the Algorithm-2 traceback phase."""
    edge = _edge_bytes(tile_size)
    nt = _ceil_div(n, tile_size)
    mt = _ceil_div(m, tile_size)
    # The path visits roughly one tile per tile-antidiagonal.
    tb_tiles = nt + mt - 1
    stats.add_instr("csr", 1 + 5 * tb_tiles)
    stats.add_instr("gmx_tb", tb_tiles)
    stats.add_instr("load", 2 * tb_tiles)
    stats.add_instr("int_alu", 6 * tb_tiles + 4)
    stats.add_instr("branch", 2 * tb_tiles)
    stats.add_instr("store", 2 * tb_tiles)
    stats.dp_bytes_read += 2 * edge * tb_tiles
    stats.dp_bytes_written += 2 * edge * tb_tiles


def _expected_ops(n: int, m: int, distance: int) -> int:
    """Expected alignment length: diagonal steps plus indel detours."""
    return max(n, m) + distance // 2


def banded_gmx_band_schedule(
    n: int, m: int, distance: int, tile_size: int
) -> list:
    """Band sizes Banded(GMX)'s auto-widening actually tries."""
    band = max(abs(n - m), 2 * tile_size)
    max_band = max(n, m)
    schedule = [band]
    while band < distance and band < max_band:
        band = min(2 * band, max_band)
        schedule.append(band)
    return schedule


def predict_banded_gmx(
    n: int,
    m: int,
    *,
    traceback: bool = True,
    distance: int = 0,
    tile_size: int = 32,
    band: Optional[int] = None,
) -> KernelStats:
    """Predict Banded(GMX) stats, including the auto-widening restarts."""
    stats = KernelStats()
    if band is not None:
        schedule = [max(band, abs(n - m))]
    else:
        schedule = banded_gmx_band_schedule(n, m, distance, tile_size)
    edge = _edge_bytes(tile_size)
    nt = _ceil_div(n, tile_size)
    mt = _ceil_div(m, tile_size)
    for pass_band in schedule:
        bt = _ceil_div(pass_band, tile_size)
        tiles = sum(
            min(nt - 1, tj + bt) - max(0, tj - bt) + 1 for tj in range(mt)
        )
        cells = _banded_cells(n, m, bt, tile_size)
        stats.tiles += tiles
        stats.dp_cells += cells
        stats.add_instr("csr", mt + tiles)
        stats.add_instr("gmx", 2 * tiles)
        stats.add_instr("load", 2 * tiles)
        stats.add_instr("int_alu", 6 * mt + 5 * tiles)
        stats.add_instr("branch", mt + tiles)
        stats.dp_bytes_read += 2 * edge * tiles
        stats.hot_bytes = max(stats.hot_bytes or 0, edge * (2 * bt + 2))
        if traceback:
            stats.add_instr("store", 2 * tiles)
            stats.dp_bytes_written += 2 * edge * tiles
            stats.dp_bytes_peak = max(stats.dp_bytes_peak, 2 * edge * tiles)
            _add_gmx_traceback(stats, n, m, distance, tile_size)
        else:
            stats.dp_bytes_peak = max(stats.dp_bytes_peak, stats.hot_bytes)
    return stats


def _banded_cells(n: int, m: int, bt: int, tile_size: int) -> int:
    """DP cells inside the tile band (exact tile-by-tile sum, vectorised)."""
    nt = _ceil_div(n, tile_size)
    mt = _ceil_div(m, tile_size)
    last_rows = n - (nt - 1) * tile_size
    last_cols = m - (mt - 1) * tile_size
    cells = 0
    for tj in range(mt):
        lo = max(0, tj - bt)
        hi = min(nt - 1, tj + bt)
        cols = last_cols if tj == mt - 1 else tile_size
        full_rows = hi - lo + 1
        rows = full_rows * tile_size
        if hi == nt - 1:
            rows += last_rows - tile_size
        cells += rows * cols
    return cells


def predict_windowed_gmx(
    n: int,
    m: int,
    *,
    distance: int = 0,
    window: Optional[int] = None,
    overlap: Optional[int] = None,
    tile_size: int = 32,
) -> KernelStats:
    """Predict Windowed(GMX) stats.

    Each window is a Full(GMX) run of W×W with traceback; the driver
    commits ~(W − O) cells of progress per window.
    """
    window = window if window is not None else 3 * tile_size
    overlap = overlap if overlap is not None else tile_size
    windows = _expected_windows(n, m, window, overlap)
    per_window = predict_full_gmx(
        min(window, n),
        min(window, m),
        traceback=True,
        distance=round(distance * window / max(n, m, 1)),
        tile_size=tile_size,
    )
    stats = KernelStats()
    for _ in range(windows):
        stats.merge(per_window)
    _add_window_driver(stats, n, m, distance, windows)
    tiles_per_side = _ceil_div(window, tile_size)
    stats.dp_bytes_peak = 2 * _edge_bytes(tile_size) * tiles_per_side**2
    stats.hot_bytes = stats.dp_bytes_peak
    return stats


def _add_window_driver(
    stats: KernelStats, n: int, m: int, distance: int, windows: int
) -> None:
    """Software window-driver work (setup and position-based commits)."""
    del n, m, distance
    stats.add_instr("int_alu", 40 * windows)
    stats.add_instr("branch", 6 * windows)


def _expected_windows(n: int, m: int, window: int, overlap: int) -> int:
    """Expected number of windows the driver opens."""
    span = min(n, m)
    if span <= window:
        return 1
    return 1 + _ceil_div(span - window, window - overlap)


# ---------------------------------------------------------------------------
# Software baselines
# ---------------------------------------------------------------------------

def predict_nw(n: int, m: int, *, traceback: bool = True, distance: int = 0) -> KernelStats:
    """Predict Full(DP) stats (mirrors ``NeedlemanWunschAligner``)."""
    stats = KernelStats()
    stats.dp_cells = n * m
    stats.add_instr("int_alu", 5 * n * m)
    stats.add_instr("load", n * m)
    stats.add_instr("store", n * m)
    stats.add_instr("branch", n)
    stats.dp_bytes_written += 4 * n * m
    stats.dp_bytes_read += 12 * n * m
    stats.hot_bytes = 4 * 2 * (m + 1)
    if traceback:
        ops = _expected_ops(n, m, distance)
        stats.dp_bytes_peak = 4 * (n + 1) * (m + 1)
        stats.add_instr("int_alu", 4 * ops)
        stats.add_instr("load", 3 * ops)
        stats.dp_bytes_read += 12 * ops
    else:
        stats.dp_bytes_peak = 4 * 2 * (m + 1)
    return stats


def predict_hirschberg(
    n: int, m: int, *, traceback: bool = True, distance: int = 0
) -> KernelStats:
    """Predict linear-memory Hirschberg stats (mirrors ``HirschbergAligner``).

    The divide-and-conquer recursion executes ~2x the cells of one
    distance-only NW sweep while never holding more than two score rows —
    the canonical time-for-memory trade the stream pipeline's bridge
    repair relies on.
    """
    stats = KernelStats()
    cells = 2 * n * m
    stats.dp_cells = cells
    stats.add_instr("int_alu", 5 * cells)
    stats.add_instr("load", cells)
    stats.add_instr("store", cells)
    stats.add_instr("branch", 2 * n)
    stats.dp_bytes_written += 4 * cells
    stats.dp_bytes_read += 12 * cells
    stats.hot_bytes = 4 * 4 * (m + 1)
    stats.dp_bytes_peak = 4 * 4 * (m + 1)
    if traceback:
        ops = _expected_ops(n, m, distance)
        stats.add_instr("int_alu", 2 * ops)
    return stats


def predict_bpm(
    n: int, m: int, *, traceback: bool = True, distance: int = 0, word_size: int = 64
) -> KernelStats:
    """Predict Full(BPM) stats (mirrors ``BpmAligner``)."""
    stats = KernelStats()
    blocks = _ceil_div(n, word_size)
    steps = blocks * m
    word_bytes = word_size // 8
    stats.dp_cells = n * m
    stats.add_instr("int_alu", 17 * steps)
    stats.add_instr("load", 3 * steps)
    stats.add_instr("branch", steps)
    stats.dp_bytes_read += 2 * word_bytes * steps
    stats.hot_bytes = 2 * word_bytes * blocks
    if traceback:
        stats.add_instr("store", 4 * steps)
        stats.dp_bytes_written += 4 * word_bytes * steps
        stats.dp_bytes_peak = 4 * word_bytes * blocks * m
        ops = _expected_ops(n, m, distance)
        stats.add_instr("int_alu", 6 * ops)
        stats.add_instr("load", 2 * ops)
    else:
        stats.add_instr("store", 2 * steps)
        stats.dp_bytes_written += 2 * word_bytes * steps
        stats.dp_bytes_peak = 2 * word_bytes * blocks
    return stats


def edlib_k_schedule(n: int, m: int, distance: int, word_size: int = 64) -> list:
    """Band thresholds Edlib's doubling search actually tries."""
    k = max(abs(n - m), word_size // 2)
    limit = n + m
    schedule = [k]
    while k < distance and k < limit:
        k = min(2 * k, limit)
        schedule.append(k)
    return schedule


def predict_edlib(
    n: int,
    m: int,
    *,
    traceback: bool = True,
    distance: int = 0,
    word_size: int = 64,
) -> KernelStats:
    """Predict Banded(Edlib) stats (mirrors ``EdlibAligner``)."""
    stats = KernelStats()
    word_bytes = word_size // 8
    n_blocks = _ceil_div(n, word_size)
    for k in edlib_k_schedule(n, m, distance, word_size):
        stats.add_instr("int_alu", 2 * n)
        stats.add_instr("store", n // 8 + 1)
        steps = 0
        cells = 0
        max_live = 0
        for j in range(m):
            lo = max(0, (j - k) // word_size)
            hi = min(n_blocks - 1, (j + k) // word_size)
            live = hi - lo + 1
            steps += live
            max_live = max(max_live, live)
            cells += live * word_size
            if hi == n_blocks - 1:
                cells -= n_blocks * word_size - n
        stats.dp_cells += cells
        stats.add_instr("int_alu", 17 * steps)
        stats.add_instr("load", 3 * steps)
        stats.add_instr("branch", steps)
        stats.dp_bytes_read += 2 * word_bytes * steps
        stats.hot_bytes = max(stats.hot_bytes or 0, 2 * word_bytes * max_live)
        if traceback:
            stats.add_instr("store", 4 * steps)
            stats.dp_bytes_written += 4 * word_bytes * steps
            stats.dp_bytes_peak = max(
                stats.dp_bytes_peak, 4 * word_bytes * steps
            )
            ops = _expected_ops(n, m, distance)
            stats.add_instr("int_alu", 6 * ops)
            stats.add_instr("load", 2 * ops)
        else:
            stats.add_instr("store", 2 * steps)
            stats.dp_bytes_written += 2 * word_bytes * steps
            stats.dp_bytes_peak = max(
                stats.dp_bytes_peak, 2 * word_bytes * max_live
            )
    return stats


def bitap_k_schedule(n: int, m: int, distance: int) -> list:
    """Error bounds the Bitap doubling search actually tries."""
    k = max(abs(n - m), 2)
    limit = n + m
    schedule = [min(k, limit)]
    while k < distance and k < limit:
        k = min(2 * k, limit)
        schedule.append(k)
    return schedule


def predict_bitap(
    n: int, m: int, *, distance: int = 0, traceback: bool = True, word_size: int = 64
) -> KernelStats:
    """Predict Bitap aligner stats (mirrors ``BitapAligner``)."""
    stats = KernelStats()
    words = _ceil_div(n, word_size)
    word_bytes = word_size // 8
    final_k = 0
    for k in bitap_k_schedule(n, m, distance):
        k = min(k, n + m)
        final_k = k
        steps = (k + 1) * words
        stats.add_instr("int_alu", 7 * steps * m)
        stats.add_instr("load", 2 * steps * m)
        stats.add_instr("store", steps * m)
        stats.add_instr("branch", (k + 1) * m)
        stats.dp_cells += n * m
        stats.dp_bytes_read += 2 * steps * word_bytes * m
        stats.dp_bytes_written += steps * word_bytes * m
    stats.hot_bytes = 2 * (final_k + 1) * words * word_bytes
    if traceback:
        stats.dp_bytes_peak = (final_k + 1) * (m + 1) * words * word_bytes
        ops = _expected_ops(n, m, distance)
        stats.add_instr("int_alu", 8 * ops)
        stats.add_instr("load", 3 * ops)
    else:
        stats.dp_bytes_peak = stats.hot_bytes
    return stats


def predict_genasm_cpu(
    n: int,
    m: int,
    *,
    distance: int = 0,
    window: int = 96,
    overlap: int = 32,
    word_size: int = 64,
) -> KernelStats:
    """Predict Windowed(GenASM-CPU) stats: Bitap per window plus stitching."""
    windows = _expected_windows(n, m, window, overlap)
    window_distance = max(2, round(distance * window / max(n, m, 1)))
    per_window = predict_bitap(
        min(window, n),
        min(window, m),
        distance=window_distance,
        traceback=True,
        word_size=word_size,
    )
    stats = KernelStats()
    for _ in range(windows):
        stats.merge(per_window)
    _add_window_driver(stats, n, m, distance, windows)
    return stats


def predict_darwin_gact(
    n: int,
    m: int,
    *,
    window: int = 96,
    overlap: int = 32,
) -> KernelStats:
    """Predict Darwin GACT stats: full affine DP per window."""
    windows = _expected_windows(n, m, window, overlap)
    stats = KernelStats()
    w_rows = min(window, n)
    w_cols = min(window, m)
    cells = w_rows * w_cols
    for _ in range(windows):
        stats.dp_cells += cells
        stats.add_instr("int_alu", 12 * cells)
        stats.add_instr("load", 3 * cells)
        stats.add_instr("store", 3 * cells)
        stats.dp_bytes_written += 12 * cells
        stats.dp_bytes_read += 24 * cells
    stats.dp_bytes_peak = 12 * (window + 1) * (window + 1)
    stats.hot_bytes = stats.dp_bytes_peak
    return stats


#: Predictor registry keyed by the aligners' figure labels.
PREDICTORS = {
    "Full(GMX)": predict_full_gmx,
    "Banded(GMX)": predict_banded_gmx,
    "Windowed(GMX)": predict_windowed_gmx,
    "Full(DP)": predict_nw,
    "Full(BPM)": predict_bpm,
    "Banded(Edlib)": predict_edlib,
    "Hirschberg": predict_hirschberg,
    "Windowed(GenASM-CPU)": predict_genasm_cpu,
    "Darwin(GACT)": predict_darwin_gact,
}


def predict_pair_cost(aligner, n: int, m: int, *, traceback: bool = True) -> int:
    """Predicted instruction cost of aligning one ``n x m`` pair.

    The distributed coordinator's shard packer calls this per pair to cut
    cost-balanced shards for heterogeneous nodes — without running a
    kernel.  Dispatches on the aligner's class to the matching closed-form
    predictor and returns ``KernelStats.total_instructions``; an aligner
    without a predictor (wrappers, test doubles) falls back to the
    quadratic cell count ``n * m``, which preserves relative ordering.
    """
    name = type(aligner).__name__
    tile = getattr(aligner, "tile_size", 32)
    try:
        if name == "FullGmxAligner":
            stats = predict_full_gmx(
                n,
                m,
                traceback=traceback,
                tile_size=tile,
                fused=bool(getattr(aligner, "fused", False)),
            )
        elif name == "BandedGmxAligner":
            stats = predict_banded_gmx(
                n, m, traceback=traceback, tile_size=tile
            )
        elif name == "WindowedAligner":
            stats = predict_windowed_gmx(n, m, tile_size=tile)
        elif name == "NeedlemanWunschAligner":
            stats = predict_nw(n, m, traceback=traceback)
        elif name == "BpmAligner":
            stats = predict_bpm(
                n,
                m,
                traceback=traceback,
                word_size=getattr(aligner, "word_size", 64),
            )
        elif name == "EdlibAligner":
            stats = predict_edlib(
                n,
                m,
                traceback=traceback,
                word_size=getattr(aligner, "word_size", 64),
            )
        elif name == "HirschbergAligner":
            stats = predict_hirschberg(n, m, traceback=traceback)
        else:
            return n * m
    except (ValueError, ZeroDivisionError):
        return n * m
    return max(1, stats.total_instructions)


#: Predicted-instruction budget per shard of stream chunk jobs — sized so
#: a shard is coarse enough to amortise dispatch but small enough that a
#: retried or re-leased shard stays cheap.
DEFAULT_STREAM_SHARD_COST = 50_000_000


def plan_stream_shard_size(
    aligner,
    n: int,
    m: int,
    *,
    target_cost: int = DEFAULT_STREAM_SHARD_COST,
    traceback: bool = True,
    max_shard: int = 64,
) -> int:
    """Chunk jobs per shard for the streaming pipeline's batch engines.

    Uses :func:`predict_pair_cost` on the representative chunk-job shape
    ``n x m`` (query span x window) so shards carry a roughly constant
    predicted cost regardless of chunk geometry or engine.
    """
    if n <= 0 or m <= 0:
        return 1
    cost = predict_pair_cost(aligner, n, m, traceback=traceback)
    return max(1, min(max_shard, target_cost // max(1, cost)))
