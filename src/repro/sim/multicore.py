"""Multicore scaling model (paper §7.2, Figure 12).

The paper parallelises across sequence pairs (inter-sequence parallelism):
16 gem5-OoO cores, each with a private GMX unit, share two DDR4 controllers
(47.8 GB/s peak).  Scaling behaviour then follows from per-pair compute
time versus per-pair memory traffic:

* kernels whose DP state fits in the private caches scale linearly;
* Full(BPM) streams its 4·n·m-bit matrices through DRAM — past ~1 kbp the
  aggregate demand exceeds the controllers and the speedup flattens
  (the paper reports >65 % of peak demanded);
* Windowed(GMX) does so little compute per character that even its modest
  streaming (sequences in, alignment out) raises contention, whose latency
  inflation makes its scaling slightly sub-linear — matching §7.2.

Besides the analytic model, :func:`measured_scaling` backs the same
inter-sequence decomposition with *real* parallel execution: it runs the
sharded batch engine (:mod:`repro.align.parallel`) at each worker count on
the host, verifies the parallel results stay identical to serial, and
reports measured wall-clock speedups next to the modelled ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..align.base import Aligner, KernelStats
from .core_model import CoreConfig, estimate_kernel
from .memory import MemorySystemConfig

#: Latency-inflation coefficient under full bandwidth utilisation.
CONTENTION_BETA = 0.15


@dataclass(frozen=True)
class ScalingPoint:
    """Modelled execution at one thread count.

    Attributes:
        threads: cores used.
        speedup: relative to single-thread execution.
        bandwidth_gbs: aggregate DRAM bandwidth actually consumed.
        utilization: fraction of peak DRAM bandwidth consumed.
    """

    threads: int
    speedup: float
    bandwidth_gbs: float
    utilization: float


def _per_pair_dram_bytes(
    stats: KernelStats, pairs: int, n: int, m: int, dram_state_bytes: int
) -> float:
    """Per-pair DRAM traffic: spilled DP state + sequences + alignment out."""
    ops_bytes = (n + m) // 4
    return dram_state_bytes / pairs + (n + m) + ops_bytes


def multicore_scaling(
    stats: KernelStats,
    pairs: int,
    n: int,
    m: int,
    core: CoreConfig,
    memory: MemorySystemConfig,
    thread_counts: List[int],
) -> List[ScalingPoint]:
    """Model inter-sequence scaling across thread counts.

    Args:
        stats: aggregate kernel stats for ``pairs`` alignments.
        n, m: nominal sequence lengths (for sequence/alignment traffic).
        thread_counts: e.g. ``[1, 2, 4, 8, 16]``.
    """
    if pairs < 1:
        raise ValueError(f"pairs must be positive, got {pairs}")
    base = estimate_kernel(stats, core, memory)
    compute_per_pair = base.compute_cycles / (core.frequency_ghz * 1e9) / pairs
    dram_per_pair = _per_pair_dram_bytes(stats, pairs, n, m, base.dram_bytes)
    peak = memory.dram_bandwidth_gbs * 1e9

    def pair_rate(threads: int) -> tuple:
        """(pairs/second, bandwidth bytes/s) at a thread count."""
        # First-cut demand assuming no contention.
        demand = threads * dram_per_pair / compute_per_pair
        utilization = min(1.0, demand / peak)
        inflated_compute = compute_per_pair * (
            1.0 + CONTENTION_BETA * utilization
        )
        compute_rate = threads / inflated_compute
        bandwidth_rate = peak / dram_per_pair if dram_per_pair > 0 else float("inf")
        rate = min(compute_rate, bandwidth_rate)
        return rate, rate * dram_per_pair

    base_rate, _ = pair_rate(1)
    points = []
    for threads in thread_counts:
        rate, bandwidth = pair_rate(threads)
        points.append(
            ScalingPoint(
                threads=threads,
                speedup=rate / base_rate,
                bandwidth_gbs=bandwidth / 1e9,
                utilization=min(1.0, bandwidth / peak),
            )
        )
    return points


# ---------------------------------------------------------------------------
# Measured scaling: the analytic model's claims, executed for real
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MeasuredPoint:
    """One real parallel execution of a batch at a fixed worker count.

    Attributes:
        workers: worker processes used.
        wall_seconds: measured end-to-end batch wall time.
        speedup: wall-clock speedup relative to the 1-worker run.
        pairs_per_second: measured host throughput.
        worker_utilization: busy-time fraction of the worker pool.
        executor: how the engine ran (``serial``/``inline``/``fork``/...).
    """

    workers: int
    wall_seconds: float
    speedup: float
    pairs_per_second: float
    worker_utilization: float
    executor: str


def measured_scaling(
    aligner: Aligner,
    pairs: Sequence,
    worker_counts: Sequence[int] = (1, 2, 4),
    *,
    shard_size: Optional[int] = None,
    traceback: bool = True,
) -> List[MeasuredPoint]:
    """Measure real inter-sequence scaling of the sharded batch engine.

    Runs ``pairs`` through :func:`repro.align.batch.align_batch` once per
    worker count and reports measured wall-clock speedups relative to the
    first count (callers conventionally put 1 first).  Every parallel run
    is checked for result/stat identity against the first run — the
    determinism contract of the engine — so a reported speedup can never
    come from diverging work.

    Host caveat: wall-clock reflects the *host* core count, not the
    modelled 16-core SoC; on a single-CPU host all speedups hover near (or
    below, from pool overhead) 1.0 while the modelled Figure-12 scaling is
    unaffected.
    """
    from ..align.batch import align_batch

    if not worker_counts:
        raise ValueError("worker_counts must be non-empty")
    pairs = list(pairs)
    points: List[MeasuredPoint] = []
    reference = None
    base_wall = None
    for workers in worker_counts:
        batch = align_batch(
            aligner, pairs,
            workers=workers, shard_size=shard_size, traceback=traceback,
        )
        if reference is None:
            reference = batch
        elif (
            batch.results != reference.results
            or batch.stats != reference.stats
        ):
            raise AssertionError(
                f"parallel run at workers={workers} diverged from the "
                f"workers={worker_counts[0]} reference"
            )
        telemetry = batch.telemetry
        if base_wall is None:
            base_wall = telemetry.wall_seconds
        points.append(
            MeasuredPoint(
                workers=workers,
                wall_seconds=telemetry.wall_seconds,
                speedup=(
                    base_wall / telemetry.wall_seconds
                    if telemetry.wall_seconds > 0 else 1.0
                ),
                pairs_per_second=telemetry.pairs_per_second,
                worker_utilization=telemetry.worker_utilization,
                executor=telemetry.executor,
            )
        )
    return points
