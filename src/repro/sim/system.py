"""Detailed kernel simulation: micro-op pipeline + cache replay combined.

The figure harness uses the fast analytic path
(:func:`repro.sim.core_model.estimate_kernel`).  This module is the slow,
high-fidelity path for cross-checking it on small kernels: it

1. synthesizes the kernel's micro-op stream with true data dependencies
   (:mod:`repro.sim.pipeline`) and runs it through the in-order or
   out-of-order pipeline model matching the target system;
2. replays the kernel's DP-state address trace (:mod:`repro.sim.trace`)
   through a real set-associative :class:`~repro.sim.cache.CacheHierarchy`
   built from the system's cache geometry;
3. combines them: total cycles = pipeline cycles + the *extra* memory
   latency the simulated misses expose beyond the L1 hits the pipeline's
   load latency already charges.

``tests/sim/test_system.py`` requires this detailed estimate and the
analytic one to agree within a small factor and to preserve the GMX-vs-BPM
ranking — the consistency argument for trusting the fast path at scales
the detailed path cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .cache import CacheHierarchy, CacheStats
from .pipeline import (
    InOrderPipeline,
    OutOfOrderPipeline,
    PipelineResult,
    synthesize_bpm_column,
    synthesize_full_gmx_compute,
)
from .soc import SystemConfig
from .trace import bpm_trace, full_gmx_trace

#: Kernels with both a micro-op synthesizer and an address-trace generator.
DETAILED_KERNELS = ("full-gmx", "bpm")


@dataclass(frozen=True)
class DetailedEstimate:
    """Outcome of one detailed kernel simulation.

    Attributes:
        pipeline: micro-op pipeline accounting.
        cache_stats: per-level hit/miss statistics from the replay.
        extra_memory_cycles: exposed latency beyond L1 hits.
        cycles: combined total.
    """

    pipeline: PipelineResult
    cache_stats: Dict[str, CacheStats]
    extra_memory_cycles: float
    cycles: float

    def seconds(self, frequency_ghz: float) -> float:
        """Wall time at a given clock."""
        return self.cycles / (frequency_ghz * 1e9)


def _pipeline_for(system: SystemConfig):
    core = system.core
    if core.out_of_order:
        return OutOfOrderPipeline(
            width=core.issue_width,
            branch_penalty=core.branch_penalty,
        )
    return InOrderPipeline(branch_penalty=core.branch_penalty)


def _hierarchy_for(system: SystemConfig) -> CacheHierarchy:
    return CacheHierarchy(
        list(system.memory.levels),
        memory_latency_cycles=system.memory.dram_latency_cycles,
    )


def simulate_kernel_detailed(
    kernel: str,
    n: int,
    m: int,
    system: SystemConfig,
    *,
    tile_size: int = 32,
    word_size: int = 64,
    traceback: bool = True,
) -> DetailedEstimate:
    """Run one kernel at micro-op + cache fidelity on one system.

    Args:
        kernel: ``"full-gmx"`` or ``"bpm"``.
        n, m: sequence lengths (keep modest — this path is O(cells) work).
    """
    if kernel not in DETAILED_KERNELS:
        raise ValueError(
            f"kernel must be one of {DETAILED_KERNELS}, got {kernel!r}"
        )
    if kernel == "full-gmx":
        tiles_rows = -(-n // tile_size)
        tiles_cols = -(-m // tile_size)
        stream = synthesize_full_gmx_compute(
            tiles_rows, tiles_cols, store_edges=traceback
        )
        trace = full_gmx_trace(n, m, tile_size=tile_size, traceback=traceback)
    else:
        blocks = -(-n // word_size)
        stream = synthesize_bpm_column(blocks, m)
        trace = bpm_trace(n, m, word_size=word_size, traceback=traceback)
    pipeline_result = _pipeline_for(system).run(stream)
    hierarchy = _hierarchy_for(system)
    # The pipeline already charges an L1 load-to-use latency on every load,
    # so only *read* accesses that miss expose additional latency; store
    # misses drain through the store buffer (Table 1: 8-entry store buffer,
    # 16 misses in flight) without stalling the pipeline.  Out-of-order
    # cores additionally overlap read misses via memory-level parallelism.
    l1_latency = hierarchy.levels[0].config.latency_cycles
    extra = 0.0
    for address, is_write in trace:
        latency = hierarchy.access(address, write=is_write)
        if not is_write and latency > l1_latency:
            extra += latency - l1_latency
    hierarchy.finalize()
    if system.core.out_of_order:
        extra /= max(system.core.mlp, 1.0)
    total = pipeline_result.cycles + extra
    return DetailedEstimate(
        pipeline=pipeline_result,
        cache_stats=hierarchy.stats_by_level,
        extra_memory_cycles=extra,
        cycles=total,
    )
