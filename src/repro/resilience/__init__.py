"""Fault injection and fault-tolerant batch execution.

The robustness layer of the harness, in two halves:

* **Injection** (:mod:`.faults`, :mod:`.injectors`) — deterministic,
  seeded fault plans striking three layers: the GMX hardware model
  (bit flips, stuck-at output bits, corrupted CSR writes), the worker
  processes (crash, hang, slow, unpicklable replies), and the data path
  (truncated or garbled in-flight records).
* **Tolerance** (:mod:`.engine`, :mod:`.checkpoint`) — a supervised
  batch executor with per-shard deadlines, seeded-backoff retries,
  shard bisection, cross-checked results, a graceful-degradation chain
  ending in quarantine, and checkpoint/resume journalling.

:mod:`.campaign` closes the loop: N injected faults, and the batch must
come out byte-identical to a fault-free serial run with every fault
accounted for.  See ``docs/resilience.md`` for the full story.
"""

from .campaign import ACCOUNTED_OUTCOMES, CampaignReport, run_campaign
from .checkpoint import (
    CheckpointError,
    CheckpointJournal,
    deserialize_result,
    serialize_result,
)
from .engine import (
    DEFAULT_CHAOS_TIMEOUT,
    CrossCheckError,
    FaultRecord,
    QuarantinedPair,
    ResilientBatchResult,
    RetryPolicy,
    align_batch_resilient,
)
from .faults import (
    LAYER_KINDS,
    LAYERS,
    FaultError,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedCrashError,
)
from .injectors import (
    FaultHookChain,
    HardwareFaultInjector,
    apply_worker_fault,
    corrupt_pair,
    corrupt_shard,
    pair_checksum,
)

__all__ = [
    "ACCOUNTED_OUTCOMES",
    "CampaignReport",
    "CheckpointError",
    "CheckpointJournal",
    "CrossCheckError",
    "DEFAULT_CHAOS_TIMEOUT",
    "FaultError",
    "FaultHookChain",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecord",
    "FaultSpec",
    "HardwareFaultInjector",
    "InjectedCrashError",
    "LAYERS",
    "LAYER_KINDS",
    "QuarantinedPair",
    "ResilientBatchResult",
    "RetryPolicy",
    "align_batch_resilient",
    "apply_worker_fault",
    "corrupt_pair",
    "corrupt_shard",
    "deserialize_result",
    "pair_checksum",
    "run_campaign",
    "serialize_result",
]
