"""Chaos campaigns: inject N seeded faults, demand a perfect batch.

A campaign is the resilience framework's end-to-end proof obligation:

1. generate a workload and a :class:`~.faults.FaultPlan` from one seed;
2. run the batch fault-free and serially — the ground truth;
3. run it again through :func:`~.engine.align_batch_resilient` with the
   plan armed, cross-checking on, and real worker processes dying;
4. assert the chaos run's results and merged stats are **byte-identical**
   to the ground truth, and that every planned fault is accounted for in
   the ledger (detected / retried / degraded / quarantined — never
   silent, never masked).

``repro chaos`` (the CLI) and the CI chaos job are thin wrappers around
:func:`run_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..align.base import Aligner, ResilienceCounters
from ..align.batch import align_batch
from ..workloads.generator import generate_pair_set
from .engine import FaultRecord, ResilientBatchResult, align_batch_resilient
from .faults import FaultPlan

#: Ledger outcomes that count as *accounted for* — the fault either
#: forced a visible recovery action or was survived by degradation.
ACCOUNTED_OUTCOMES = ("detected", "retried", "degraded", "quarantined")


@dataclass
class CampaignReport:
    """Outcome of one chaos campaign.

    Attributes:
        seed / faults / pairs / length / workers / shard_size: campaign
            configuration, echoed for the record.
        identical: chaos results byte-identical to the fault-free serial
            run (results, stats, and ordering).
        unaccounted: ledger entries whose outcome is not in
            :data:`ACCOUNTED_OUTCOMES` (silent corruption, masked
            faults, never-armed faults) — empty on a passing campaign.
        ledger: every planned fault with its outcome.
        counters: the run's :class:`ResilienceCounters`.
        wall_seconds: chaos-run wall time.
    """

    seed: int
    faults: int
    pairs: int
    length: int
    workers: int
    shard_size: int
    identical: bool
    unaccounted: List[FaultRecord] = field(default_factory=list)
    ledger: List[FaultRecord] = field(default_factory=list)
    counters: ResilienceCounters = field(default_factory=ResilienceCounters)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Campaign verdict: identical output and full accounting."""
        return self.identical and not self.unaccounted

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": self.faults,
            "pairs": self.pairs,
            "length": self.length,
            "workers": self.workers,
            "shard_size": self.shard_size,
            "ok": self.ok,
            "identical": self.identical,
            "unaccounted": [record.to_dict() for record in self.unaccounted],
            "counters": self.counters.to_dict(),
            "wall_seconds": self.wall_seconds,
        }

    def render(self) -> str:
        """Human-readable campaign summary (the CLI's output)."""
        lines = [
            f"chaos campaign: seed={self.seed} faults={self.faults} "
            f"pairs={self.pairs} workers={self.workers} "
            f"shard_size={self.shard_size}",
            f"  identical to fault-free serial run: "
            f"{'yes' if self.identical else 'NO'}",
            f"  faults injected={self.counters.faults_injected} "
            f"detected={self.counters.faults_detected} "
            f"retries={self.counters.retries} "
            f"timeouts={self.counters.timeouts} "
            f"crashes={self.counters.crashes}",
            f"  cross-check mismatches="
            f"{self.counters.cross_check_mismatches} "
            f"data faults={self.counters.data_faults} "
            f"slow shards={self.counters.slow_shards}",
            f"  bisections={self.counters.bisections} "
            f"fallbacks={self.counters.fallbacks} "
            f"quarantined={self.counters.quarantined_pairs}",
        ]
        if self.unaccounted:
            lines.append(f"  UNACCOUNTED faults: {len(self.unaccounted)}")
            for record in self.unaccounted:
                lines.append(
                    f"    {record.spec.describe()} -> {record.outcome} "
                    f"({record.detail})"
                )
        lines.append(f"  verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def run_campaign(
    *,
    seed: int = 7,
    faults: int = 25,
    pairs: Optional[int] = None,
    length: int = 64,
    error_rate: float = 0.08,
    workers: int = 2,
    shard_size: int = 4,
    shard_timeout: float = 1.0,
    max_retries: int = 3,
    aligner: Optional[Aligner] = None,
    checkpoint: Optional[str] = None,
) -> CampaignReport:
    """Run one seeded chaos campaign and report the verdict.

    Args:
        seed: master seed for the workload and the fault plan.
        faults: planned faults (spread across all three layers).
        pairs: batch size (default: enough pairs that every fault has
            room — ``max(16, faults)``).
        length / error_rate: workload shape (§7.1-style synthetic pairs).
        workers / shard_size / shard_timeout / max_retries: engine knobs.
        aligner: system under test (default: the full GMX aligner).
        checkpoint: optional journal path (exercises checkpointing too).
    """
    if pairs is None:
        pairs = max(16, faults)
    if aligner is None:
        from ..align.full_gmx import FullGmxAligner

        aligner = FullGmxAligner()
    workload = generate_pair_set(
        name=f"chaos-{seed}",
        length=length,
        error_rate=error_rate,
        count=pairs,
        seed=seed,
    )
    plan = FaultPlan.generate(seed, faults, pairs)

    reference = align_batch(aligner, workload, traceback=True)
    chaos: ResilientBatchResult = align_batch_resilient(
        aligner,
        workload,
        workers=workers,
        shard_size=shard_size,
        traceback=True,
        cross_check=True,
        max_retries=max_retries,
        shard_timeout=shard_timeout,
        fault_plan=plan,
        checkpoint=checkpoint,
    )

    identical = (
        chaos.results == reference.results
        and chaos.stats == reference.stats
        and not chaos.quarantined
    )
    unaccounted = [
        record
        for record in chaos.ledger
        if record.outcome not in ACCOUNTED_OUTCOMES
    ]
    assert chaos.telemetry is not None
    assert chaos.telemetry.resilience is not None
    return CampaignReport(
        seed=seed,
        faults=faults,
        pairs=pairs,
        length=length,
        workers=workers,
        shard_size=shard_size,
        identical=identical,
        unaccounted=unaccounted,
        ledger=chaos.ledger,
        counters=chaos.telemetry.resilience,
        wall_seconds=chaos.telemetry.wall_seconds,
    )
