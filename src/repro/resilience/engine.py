"""Fault-tolerant batch alignment: retry, bisect, degrade, checkpoint.

:func:`align_batch_resilient` wraps the sharded batch engine
(:mod:`repro.align.parallel`) in a supervision loop that keeps a batch
correct — byte-identical to a fault-free serial run — while workers
crash, hang, return garbage, or the (modelled) hardware corrupts values:

* **deadlines** — each shard attempt runs under ``shard_timeout``;
  process-mode attempts are terminated at the deadline, inline attempts
  are rejected retroactively (soft deadline).
* **retry with seeded backoff** — failed attempts are retried up to
  ``max_retries`` times with exponentially growing, deterministically
  jittered delays (:class:`RetryPolicy`), so campaigns replay exactly.
* **detection** — results are rejected when the shard's input checksum
  disagrees (data corruption in flight), when a reply cannot cross the
  transport, and — with ``cross_check=True`` — when the aligner's score
  disagrees with the bit-parallel BPM baseline, the traced instruction
  stream fails the static program verifier, or the alignment fails
  replay validation.
* **bisection → fallback → quarantine** — a shard that exhausts its
  retries is split in half to isolate the poison; a single pair that
  still fails is re-aligned with the ``fallback`` aligner (BPM by
  default); if even that fails the pair is quarantined and reported,
  never silently dropped and never allowed to abort the batch.
* **checkpoint/resume** — with ``checkpoint=<path>``, completed shards
  are journalled (:mod:`.checkpoint`); a rerun resumes from the journal
  and produces the same :class:`~repro.align.batch.BatchResult`.

Fault injection (``fault_plan=``) drives the same machinery with planned,
seeded faults — see :mod:`.faults` — and every planned fault is accounted
for in the returned ledger.
"""

from __future__ import annotations

import contextlib
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..align.base import (
    Aligner,
    AlignmentResult,
    ResilienceCounters,
)
from ..analysis.sanitizer import runtime as dsan
from ..align.batch import BatchResult, PairLike
from ..align.parallel import (
    DEFAULT_SHARD_SIZE,
    BatchTelemetry,
    ShardTelemetry,
    _pickling_failure,
    _resolve_start_method,
    iter_shards,
)
from ..common.retry import RetryPolicy
from ..core.cigar import AlignmentError
from ..obs import runtime as obs
from ..obs.metrics import snapshot_from_dict
from .checkpoint import CheckpointJournal
from .faults import FaultError, FaultPlan, FaultSpec
from .injectors import (
    FaultHookChain,
    HardwareFaultInjector,
    apply_worker_fault,
    corrupt_pair,
    pair_checksum,
)

#: Deadline applied when a fault plan is present but none was chosen —
#: hang faults are only detectable under a deadline.
DEFAULT_CHAOS_TIMEOUT = 5.0


class CrossCheckError(RuntimeError):
    """A result failed independent verification (score/CIGAR/trace)."""


@dataclass
class FaultRecord:
    """Ledger entry: what happened to one planned fault.

    Outcomes: ``planned`` (never armed), ``armed`` (injected, verdict
    pending), ``retried`` (struck an attempt that failed and was
    retried), ``detected`` (observed without needing a retry — e.g. a
    slow shard), ``degraded`` (its pair recovered via the fallback
    aligner), ``quarantined`` (its pair was quarantined), ``masked``
    (armed but physically changed nothing), ``silent`` (corrupted a
    value yet the attempt passed every check — a detection gap),
    ``resumed`` (its shard was replayed from a checkpoint journal).
    """

    spec: FaultSpec
    outcome: str = "planned"
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "fault": self.spec.to_dict(),
            "outcome": self.outcome,
            "detail": self.detail,
        }


@dataclass
class QuarantinedPair:
    """A pair excluded from the batch after the full degradation chain."""

    index: int
    pattern: str
    text: str
    reason: str

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "pattern": self.pattern,
            "text": self.text,
            "reason": self.reason,
        }


@dataclass
class ResilientBatchResult(BatchResult):
    """A :class:`BatchResult` plus the resilience run's accounting.

    Attributes:
        quarantined: pairs excluded after retry → bisection → fallback
            all failed (empty on healthy runs; ``results`` then covers
            every input pair in order).
        ledger: one :class:`FaultRecord` per planned fault.
    """

    quarantined: List[QuarantinedPair] = field(default_factory=list)
    ledger: List[FaultRecord] = field(default_factory=list)


@dataclass
class _ShardTask:
    """Picklable description of one shard attempt (worker payload)."""

    lo: int
    hi: int
    pairs: Tuple[Tuple[str, str], ...]
    traceback: bool
    validate: bool
    cross_check: bool
    armed: Tuple[FaultSpec, ...]
    hang_seconds: float
    slow_seconds: float
    obs: bool = False


@dataclass
class _ShardReply:
    """Successful shard attempt, as shipped back over the transport."""

    results: List[AlignmentResult]
    checksum: int
    elapsed: float
    poison: bool
    fired: Tuple[int, ...]
    unfired: Tuple[int, ...]
    #: Observability freight captured in the worker (drained span dicts +
    #: metrics snapshot payload); absorbed by the supervisor on success.
    spans: Tuple[dict, ...] = ()
    metrics: Optional[dict] = None


@dataclass
class _ShardFailure:
    """Failed shard attempt: a classification plus human-readable detail."""

    kind: str  # timeout | crash | exception | unpicklable | cross-check | data
    detail: str


class _PoisonedReply:
    """Deliberately unpicklable wrapper (injected ``unpicklable`` fault)."""

    def __init__(self, reply: _ShardReply):
        self.reply = reply
        self.trap = lambda: None  # closures never pickle


@dataclass
class _WorkItem:
    lo: int
    hi: int
    pairs: List[Tuple[str, str]]
    checksum: int
    attempt: int = 0
    ready_at: float = 0.0
    armed: Tuple[FaultSpec, ...] = ()


@dataclass
class _Done:
    lo: int
    hi: int
    results: List[AlignmentResult]
    quarantined: List[QuarantinedPair]
    elapsed: float
    worker: str
    resumed: bool = False


def _shard_checksum(pairs: Sequence[Tuple[str, str]]) -> int:
    checksum = 0
    for pattern, text in pairs:
        checksum = (checksum * 1000003 + pair_checksum(pattern, text)) & 0xFFFFFFFF
    return checksum


def _verify_result(
    aligner: Aligner,
    pattern: str,
    text: str,
    result: AlignmentResult,
    abs_index: int,
    traces: Optional[List],
) -> None:
    """Independent checks on one result; raises CrossCheckError on any."""
    if result.exact:
        from ..baselines.bpm import BpmAligner

        reference = BpmAligner().align(pattern, text, traceback=False)
        if reference.score != result.score:
            raise CrossCheckError(
                f"pair {abs_index}: score {result.score} disagrees with "
                f"BPM reference {reference.score}"
            )
    if result.alignment is not None and result.alignment.score != result.score:
        raise CrossCheckError(
            f"pair {abs_index}: alignment score {result.alignment.score} "
            f"!= result score {result.score}"
        )
    if traces:
        tile_size = getattr(aligner, "tile_size", None)
        if tile_size:
            from ..analysis import verify_trace
            from ..analysis.diagnostics import Severity

            for pass_index, events in enumerate(traces):
                diagnostics = verify_trace(
                    events,
                    tile_size=tile_size,
                    label=f"pair{abs_index}.{pass_index}",
                )
                errors = [
                    d for d in diagnostics if d.severity is Severity.ERROR
                ]
                if errors:
                    raise CrossCheckError(
                        f"pair {abs_index}: program verifier: "
                        f"{errors[0].code} {errors[0].message}"
                    )


def _execute_item(aligner: Aligner, task: _ShardTask) -> _ShardReply:
    """Align one shard attempt, injecting any armed faults.

    Runs in the worker (process mode) or in the parent (inline mode);
    raises on injected crashes and on any failed verification.  When the
    parent has observability on (``task.obs``) and this attempt runs in a
    worker process, the attempt's spans and metrics are captured locally
    and shipped back inside the reply for the supervisor to absorb.
    """
    if task.obs and not obs.owns_recorder():
        with obs.capture() as (recorder, registry):
            reply = _execute_item_body(aligner, task)
        reply.spans = tuple(recorder.drain())
        reply.metrics = registry.snapshot().to_dict()
        return reply
    return _execute_item_body(aligner, task)


@contextlib.contextmanager
def _trace_capture(
    aligner: Aligner, enabled: bool
) -> Iterator[Optional[List]]:
    """Redirect ``aligner.trace_sink`` into a fresh buffer for one block.

    Yields the buffer (``None`` when disabled or the aligner has no
    sink); the previous sink comes back in a ``finally``, so a raising
    alignment cannot leave the sink dangling for later pairs.
    """
    if not enabled or not hasattr(aligner, "trace_sink"):
        yield None
        return
    previous = aligner.trace_sink
    traces: List = []
    aligner.trace_sink = traces
    try:
        yield traces
    finally:
        aligner.trace_sink = previous


def _execute_item_body(aligner: Aligner, task: _ShardTask) -> _ShardReply:
    from ..core.isa import fault_injection

    start = time.perf_counter()
    fired: List[int] = []
    unfired: List[int] = []
    poison = False
    for spec in task.armed:
        if spec.layer != "worker":
            continue
        marker = apply_worker_fault(
            spec,
            hang_seconds=task.hang_seconds,
            slow_seconds=task.slow_seconds,
        )
        fired.append(spec.fault_id)
        if marker == "unpicklable":
            poison = True
    pairs = list(task.pairs)
    for spec in task.armed:
        if spec.layer != "data":
            continue
        offset = spec.pair_index - task.lo
        pattern, text = pairs[offset]
        mutated = corrupt_pair(spec, pattern, text)
        if mutated != (pattern, text):
            pairs[offset] = mutated
            fired.append(spec.fault_id)
        else:
            unfired.append(spec.fault_id)
    hardware: Dict[int, List[FaultSpec]] = {}
    for spec in task.armed:
        if spec.layer == "hardware":
            hardware.setdefault(spec.pair_index - task.lo, []).append(spec)
    results: List[AlignmentResult] = []
    with obs.span(
        "shard.attempt", lo=task.lo, hi=task.hi, armed=len(task.armed)
    ):
        for offset, (pattern, text) in enumerate(pairs):
            injectors = [
                HardwareFaultInjector(spec)
                for spec in hardware.get(offset, ())
            ]
            with _trace_capture(aligner, task.cross_check) as traces:
                if injectors:
                    with fault_injection(FaultHookChain(injectors)):
                        result = aligner.align(
                            pattern, text, traceback=task.traceback
                        )
                else:
                    result = aligner.align(
                        pattern, text, traceback=task.traceback
                    )
            for injector in injectors:
                target = fired if injector.fired else unfired
                target.append(injector.spec.fault_id)
            if (
                (task.validate or task.cross_check)
                and result.alignment is not None
            ):
                result.alignment.validate()
            if task.cross_check:
                _verify_result(
                    aligner, pattern, text, result, task.lo + offset, traces
                )
            results.append(result)
    return _ShardReply(
        results=results,
        checksum=_shard_checksum(pairs),
        elapsed=time.perf_counter() - start,
        poison=poison,
        fired=tuple(fired),
        unfired=tuple(unfired),
    )


_PICKLE_FAILURES = (pickle.PicklingError, TypeError, AttributeError)


def _classify(exc: Exception) -> _ShardFailure:
    if isinstance(exc, (CrossCheckError, AlignmentError)):
        return _ShardFailure("cross-check", str(exc))
    if isinstance(exc, FaultError):
        return _ShardFailure("crash", str(exc))
    return _ShardFailure("exception", f"{type(exc).__name__}: {exc}")


def _process_entry(conn, aligner: Aligner, task: _ShardTask) -> None:
    """Worker-process body: run the attempt, ship one payload back."""
    try:
        reply = _execute_item(aligner, task)
        payload = _PoisonedReply(reply) if reply.poison else reply
        try:
            conn.send(payload)
        except _PICKLE_FAILURES as exc:
            conn.send(
                _ShardFailure(
                    "unpicklable",
                    f"shard [{task.lo},{task.hi}) reply failed to "
                    f"pickle: {type(exc).__name__}",
                )
            )
    except Exception as exc:
        conn.send(_classify(exc))
    finally:
        conn.close()


def _run_inline(
    aligner: Aligner, task: _ShardTask, deadline: Optional[float]
):
    """Inline attempt with the same failure surface as a worker process."""
    try:
        reply = _execute_item(aligner, task)
    except Exception as exc:
        return _classify(exc)
    if reply.poison:
        return _ShardFailure(
            "unpicklable",
            f"shard [{task.lo},{task.hi}) reply poisoned (injected)",
        )
    if deadline is not None and reply.elapsed > deadline:
        return _ShardFailure(
            "timeout",
            f"shard [{task.lo},{task.hi}) took {reply.elapsed:.3f}s "
            f"(soft deadline {deadline}s)",
        )
    return reply


@dataclass
class _Active:
    item: _WorkItem
    process: object
    conn: object
    started: float


_FAILURE_COUNTERS = {
    "timeout": "timeouts",
    "crash": "crashes",
    "exception": "crashes",
    "unpicklable": "crashes",
    "cross-check": "cross_check_mismatches",
    "data": "data_faults",
}


class _Supervisor:
    """Shared state machine of the resilient engine (both executors)."""

    def __init__(
        self,
        aligner: Aligner,
        shards: Iterable[List[Tuple[str, str]]],
        *,
        traceback: bool,
        validate: bool,
        cross_check: bool,
        retry: RetryPolicy,
        shard_timeout: Optional[float],
        slow_threshold: Optional[float],
        plan: Optional[FaultPlan],
        journal: Optional[CheckpointJournal],
        fallback: Optional[Aligner],
        inline: bool,
    ):
        self.aligner = aligner
        self._shards = iter(shards)
        self.traceback = traceback
        self.validate = validate
        self.cross_check = cross_check
        self.retry = retry
        self.shard_timeout = shard_timeout
        self.slow_threshold = slow_threshold
        self.plan = plan
        self.journal = journal
        self._fallback = fallback
        self.counters = ResilienceCounters()
        self.ledger: Dict[int, FaultRecord] = {}
        if plan is not None:
            for spec in plan.faults:
                self.ledger[spec.fault_id] = FaultRecord(spec=spec)
        self._untriggered = {
            spec.fault_id for spec in (plan.faults if plan else ())
        }
        self._injected: set = set()
        self.completed: Dict[int, _Done] = {}
        self._retry_queue: List[_WorkItem] = []
        self._next_lo = 0
        self._stream_done = False
        if shard_timeout is not None:
            self.hang_seconds = shard_timeout * (1.2 if inline else 3.0)
            self.slow_seconds = shard_timeout * 0.6
        else:
            self.hang_seconds = 0.5
            self.slow_seconds = 0.05

    # -- work supply --------------------------------------------------------

    def _cut_next(self) -> Optional[_WorkItem]:
        if self._stream_done:
            return None
        shard = next(self._shards, None)
        if shard is None:
            self._stream_done = True
            return None
        lo = self._next_lo
        self._next_lo += len(shard)
        return _WorkItem(
            lo=lo,
            hi=lo + len(shard),
            pairs=shard,
            checksum=_shard_checksum(shard),
        )

    def next_ready(self, now: float) -> Optional[_WorkItem]:
        """Next runnable item: due retries first, then the stream."""
        due = [item for item in self._retry_queue if item.ready_at <= now]
        if due:
            item = min(due, key=lambda entry: entry.ready_at)
            self._retry_queue.remove(item)
            return item
        return self._cut_next()

    def next_ready_in(self, now: float) -> float:
        """Seconds until the earliest queued retry becomes due."""
        if not self._retry_queue:
            return 0.0
        earliest = min(item.ready_at for item in self._retry_queue)
        return max(0.0, earliest - now)

    def drained(self) -> bool:
        return self._stream_done and not self._retry_queue

    # -- arming and resume --------------------------------------------------

    def arm(self, item: _WorkItem) -> None:
        """Select the faults that strike this attempt (transient: once)."""
        if self.plan is None:
            item.armed = ()
            return
        armed = []
        for spec in self.plan.for_pairs(item.lo, item.hi):
            if spec.persistent:
                armed.append(spec)
            elif spec.fault_id in self._untriggered:
                self._untriggered.discard(spec.fault_id)
                armed.append(spec)
        for spec in armed:
            if spec.fault_id not in self._injected:
                self._injected.add(spec.fault_id)
                self.counters.faults_injected += 1
            record = self.ledger[spec.fault_id]
            if record.outcome == "planned":
                record.outcome = "armed"
        item.armed = tuple(armed)

    def try_resume(self, item: _WorkItem) -> bool:
        """Replay the item from the journal when already completed."""
        if self.journal is None:
            return False
        stored = self.journal.lookup(item.lo, item.hi, item.checksum)
        if stored is None:
            return False
        results, quarantined = stored
        self.counters.shards_resumed += 1
        obs.inc("resilience.shards_resumed")
        if self.plan is not None:
            for spec in self.plan.for_pairs(item.lo, item.hi):
                record = self.ledger[spec.fault_id]
                if record.outcome == "planned":
                    record.outcome = "resumed"
                    record.detail = "shard replayed from checkpoint journal"
                self._untriggered.discard(spec.fault_id)
        self.complete(
            item,
            results,
            [QuarantinedPair(**entry) for entry in quarantined],
            elapsed=0.0,
            worker="journal",
            resumed=True,
        )
        return True

    # -- outcome handling ---------------------------------------------------

    def handle(self, item: _WorkItem, payload, worker: str) -> None:
        if isinstance(payload, _ShardReply) and payload.checksum != item.checksum:
            payload = _ShardFailure(
                "data",
                f"shard [{item.lo},{item.hi}) input checksum mismatch "
                f"(corrupted in flight)",
            )
        if isinstance(payload, _ShardFailure):
            self._on_failure(item, payload)
            return
        self._on_success(item, payload, worker)

    def _on_success(
        self, item: _WorkItem, reply: _ShardReply, worker: str
    ) -> None:
        if obs.enabled():
            if reply.spans:
                obs.recorder().absorb(list(reply.spans))
            if reply.metrics:
                obs.metrics().absorb(snapshot_from_dict(reply.metrics))
        slow_hit = (
            self.slow_threshold is not None
            and reply.elapsed > self.slow_threshold
        )
        if slow_hit:
            self.counters.slow_shards += 1
        for spec in item.armed:
            record = self.ledger[spec.fault_id]
            if spec.fault_id in reply.unfired:
                record.outcome = "masked"
                record.detail = "armed but changed nothing"
            elif spec.layer == "worker" and spec.kind == "slow":
                if slow_hit:
                    record.outcome = "detected"
                    record.detail = f"slow shard ({reply.elapsed:.3f}s)"
                    self.counters.faults_detected += 1
                else:
                    record.outcome = "silent"
                    record.detail = "slept below the slow threshold"
            else:
                record.outcome = "silent"
                record.detail = "corrupted a value but every check passed"
        self.complete(item, reply.results, [], reply.elapsed, worker)

    def _on_failure(self, item: _WorkItem, failure: _ShardFailure) -> None:
        counter = _FAILURE_COUNTERS.get(failure.kind, "crashes")
        setattr(
            self.counters, counter, getattr(self.counters, counter) + 1
        )
        obs.inc(f"resilience.{counter}")
        if item.armed:
            self.counters.faults_detected += len(item.armed)
        item.attempt += 1
        if item.attempt <= self.retry.max_retries:
            self.counters.retries += 1
            obs.inc("resilience.retries")
            for spec in item.armed:
                record = self.ledger[spec.fault_id]
                record.outcome = "retried"
                record.detail = f"{failure.kind}: {failure.detail}"
            item.ready_at = time.monotonic() + self.retry.delay(
                item.lo, item.attempt
            )
            self._retry_queue.append(item)
            return
        self._exhausted(item, failure)

    def _exhausted(self, item: _WorkItem, failure: _ShardFailure) -> None:
        if item.hi - item.lo > 1:
            self.counters.bisections += 1
            mid = (item.lo + item.hi) // 2
            split = mid - item.lo
            for lo, hi, pairs in (
                (item.lo, mid, item.pairs[:split]),
                (mid, item.hi, item.pairs[split:]),
            ):
                self._retry_queue.append(
                    _WorkItem(
                        lo=lo,
                        hi=hi,
                        pairs=pairs,
                        checksum=_shard_checksum(pairs),
                        ready_at=time.monotonic(),
                    )
                )
            return
        self._degrade(item, failure)

    def _degrade(self, item: _WorkItem, failure: _ShardFailure) -> None:
        pattern, text = item.pairs[0]
        targeting = (
            self.plan.for_pairs(item.lo, item.hi) if self.plan else ()
        )
        try:
            result = self.fallback.align(
                pattern, text, traceback=self.traceback
            )
            if (
                (self.validate or self.cross_check)
                and result.alignment is not None
            ):
                result.alignment.validate()
        except Exception as exc:
            self.counters.quarantined_pairs += 1
            obs.inc("resilience.quarantined_pairs")
            reason = (
                f"primary: {failure.kind}: {failure.detail}; fallback "
                f"{type(self.fallback).__name__}: "
                f"{type(exc).__name__}: {exc}"
            )
            for spec in targeting:
                record = self.ledger[spec.fault_id]
                record.outcome = "quarantined"
                record.detail = reason
            self.complete(
                item,
                [],
                [
                    QuarantinedPair(
                        index=item.lo,
                        pattern=pattern,
                        text=text,
                        reason=reason,
                    )
                ],
                elapsed=0.0,
                worker="quarantine",
            )
            return
        self.counters.fallbacks += 1
        obs.inc("resilience.fallbacks")
        for spec in targeting:
            record = self.ledger[spec.fault_id]
            record.outcome = "degraded"
            record.detail = (
                f"pair recovered via {type(self.fallback).__name__} after "
                f"{failure.kind}"
            )
        self.complete(
            item, [result], [], elapsed=0.0, worker="fallback"
        )

    @property
    def fallback(self) -> Aligner:
        if self._fallback is None:
            from ..baselines.bpm import BpmAligner

            self._fallback = BpmAligner()
        return self._fallback

    def complete(
        self,
        item: _WorkItem,
        results: List[AlignmentResult],
        quarantined: List[QuarantinedPair],
        elapsed: float,
        worker: str,
        resumed: bool = False,
    ) -> None:
        self.completed[item.lo] = _Done(
            lo=item.lo,
            hi=item.hi,
            results=results,
            quarantined=quarantined,
            elapsed=elapsed,
            worker=worker,
            resumed=resumed,
        )
        if self.journal is not None and not resumed:
            self.journal.record(
                item.lo,
                item.hi,
                item.checksum,
                results,
                [entry.to_dict() for entry in quarantined],
            )
            self.counters.checkpoints_written += 1

    # -- final assembly -----------------------------------------------------

    def assemble(self, telemetry: BatchTelemetry) -> ResilientBatchResult:
        batch = ResilientBatchResult()
        cursor = 0
        for index, lo in enumerate(sorted(self.completed)):
            done = self.completed[lo]
            if done.lo != cursor:
                raise RuntimeError(
                    f"resilient engine lost coverage: gap before pair "
                    f"{done.lo} (have up to {cursor})"
                )
            cursor = done.hi
            batch.results.extend(done.results)
            for result in done.results:
                batch.stats.merge(result.stats)
            batch.quarantined.extend(done.quarantined)
            telemetry.shards.append(
                ShardTelemetry(
                    index=index,
                    pairs=len(done.results),
                    wall_seconds=done.elapsed,
                    worker=done.worker,
                )
            )
        if cursor != self._next_lo:
            raise RuntimeError(
                f"resilient engine lost coverage: completed {cursor} of "
                f"{self._next_lo} pairs"
            )
        batch.ledger = [
            self.ledger[fault_id] for fault_id in sorted(self.ledger)
        ]
        telemetry.resilience = self.counters
        batch.telemetry = telemetry
        return batch


def align_batch_resilient(
    aligner: Aligner,
    pairs: Iterable[PairLike],
    *,
    workers: int = 1,
    shard_size: Optional[int] = None,
    traceback: bool = True,
    validate: bool = False,
    cross_check: bool = False,
    max_retries: Optional[int] = None,
    shard_timeout: Optional[float] = None,
    slow_threshold: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional[str] = None,
    journal_meta: Optional[dict] = None,
    fallback: Optional[Aligner] = None,
    start_method: Optional[str] = None,
) -> ResilientBatchResult:
    """Align a batch under supervision: deadlines, retries, quarantine.

    A healthy run returns results, stats and ordering byte-identical to
    :func:`repro.align.batch.align_batch` run serially; so does a run
    whose faults are all transient (each planned fault fires at most
    once, the struck attempts are retried on healthy hardware).

    Args:
        workers: concurrent shard processes (1 = supervised inline
            execution with the same retry/degradation semantics).
        shard_size: pairs per shard (default ``DEFAULT_SHARD_SIZE``).
        cross_check: independently verify every result — BPM score
            comparison, alignment replay validation, and (for tracing
            GMX aligners) the static program verifier.  This is the
            detection layer for silent compute corruption.
        max_retries: attempts after the first, per work item
            (overrides ``retry.max_retries``).
        shard_timeout: per-attempt deadline in seconds.  Process-mode
            attempts are terminated at the deadline; inline attempts are
            rejected after the fact.  Defaults to
            :data:`DEFAULT_CHAOS_TIMEOUT` when a fault plan is present.
        slow_threshold: elapsed seconds above which a successful shard
            counts as *slow* (default: half the deadline).
        retry: full backoff policy (see :class:`RetryPolicy`).
        fault_plan: planned faults to inject (chaos campaigns).
        checkpoint: journal path for checkpoint/resume
            (:mod:`.checkpoint`); an existing compatible journal is
            resumed from automatically.
        journal_meta: extra provenance merged into the journal header —
            callers whose work depends on more than the aligner and
            traceback flag (e.g. the stream pipeline's chunk geometry)
            add it here so a journal written under different parameters
            is rejected on resume instead of silently replayed.
        fallback: aligner of last resort for poison pairs (default BPM).
        start_method: force a multiprocessing start method.

    Returns:
        A :class:`ResilientBatchResult`; ``telemetry.resilience`` holds
        the :class:`~repro.align.base.ResilienceCounters`, ``ledger``
        accounts for every planned fault, and ``quarantined`` lists any
        pairs the degradation chain gave up on.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    policy = retry if retry is not None else RetryPolicy()
    if max_retries is not None:
        policy = replace(policy, max_retries=max_retries)
    if policy.max_retries < 0:
        raise ValueError(
            f"max_retries must be >= 0, got {policy.max_retries}"
        )
    if shard_timeout is None and fault_plan is not None:
        shard_timeout = DEFAULT_CHAOS_TIMEOUT
    if slow_threshold is None and shard_timeout is not None:
        slow_threshold = shard_timeout * 0.5

    pickling_failure = _pickling_failure(aligner) if workers > 1 else None
    method = (
        _resolve_start_method(start_method)
        if workers > 1 and pickling_failure is None
        else None
    )
    inline = method is None

    journal = None
    if checkpoint is not None:
        meta = {
            "aligner": type(aligner).__name__,
            "traceback": traceback,
            "plan": fault_plan.fingerprint if fault_plan else None,
        }
        if journal_meta:
            overlap = set(meta) & set(journal_meta)
            if overlap:
                raise ValueError(
                    f"journal_meta may not override reserved keys {sorted(overlap)}"
                )
            meta.update(journal_meta)
        journal = CheckpointJournal(checkpoint, meta)

    supervisor = _Supervisor(
        aligner,
        iter_shards(pairs, shard_size),
        traceback=traceback,
        validate=validate,
        cross_check=cross_check,
        retry=policy,
        shard_timeout=shard_timeout,
        slow_threshold=slow_threshold,
        plan=fault_plan,
        journal=journal,
        fallback=fallback,
        inline=inline,
    )

    telemetry = BatchTelemetry(
        workers=workers,
        shard_size=shard_size,
        backend=getattr(getattr(aligner, "backend", None), "name", None),
    )
    telemetry.executor = "resilient-inline" if inline else f"resilient-{method}"
    telemetry.fallback_reason = pickling_failure
    start = time.perf_counter()
    token = dsan.batch_begin()
    try:
        with obs.span("batch.align_resilient", workers=workers):
            if inline:
                _drive_inline(supervisor, aligner)
            else:
                _drive_pool(supervisor, aligner, workers, method)
    finally:
        dsan.batch_end(token, "align_batch_resilient")
    obs.inc("batch.resilient_runs")
    batch = supervisor.assemble(telemetry)
    telemetry.wall_seconds = time.perf_counter() - start
    return batch


def _make_task(supervisor: _Supervisor, item: _WorkItem) -> _ShardTask:
    supervisor.arm(item)
    return _ShardTask(
        lo=item.lo,
        hi=item.hi,
        pairs=tuple(item.pairs),
        traceback=supervisor.traceback,
        validate=supervisor.validate,
        cross_check=supervisor.cross_check,
        armed=item.armed,
        hang_seconds=supervisor.hang_seconds,
        slow_seconds=supervisor.slow_seconds,
        obs=obs.enabled(),
    )


def _drive_inline(supervisor: _Supervisor, aligner: Aligner) -> None:
    """Sequential executor: one attempt at a time, soft deadlines."""
    worker = aligner
    if supervisor.plan is not None:
        # Emulate the worker-copy semantics of process mode so injected
        # state never leaks into the caller's aligner.
        failure = _pickling_failure(aligner)
        if failure is None:
            worker = pickle.loads(pickle.dumps(aligner))
    while True:
        now = time.monotonic()
        item = supervisor.next_ready(now)
        if item is None:
            if supervisor.drained():
                return
            time.sleep(min(0.05, supervisor.next_ready_in(now) or 0.001))
            continue
        if supervisor.try_resume(item):
            continue
        task = _make_task(supervisor, item)
        payload = _run_inline(worker, task, supervisor.shard_timeout)
        supervisor.handle(item, payload, worker="inline")


def _drive_pool(
    supervisor: _Supervisor, aligner: Aligner, workers: int, method: str
) -> None:
    """Process-per-attempt executor with hard deadlines."""
    import multiprocessing

    context = multiprocessing.get_context(method)
    active: List[_Active] = []
    try:
        while True:
            now = time.monotonic()
            while len(active) < workers:
                item = supervisor.next_ready(now)
                if item is None:
                    break
                if supervisor.try_resume(item):
                    continue
                task = _make_task(supervisor, item)
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_process_entry,
                    args=(child_conn, aligner, task),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                active.append(
                    _Active(
                        item=item,
                        process=process,
                        conn=parent_conn,
                        started=time.monotonic(),
                    )
                )
            if not active:
                if supervisor.drained():
                    return
                time.sleep(
                    min(0.05, supervisor.next_ready_in(time.monotonic()) or 0.001)
                )
                continue
            progressed = False
            for entry in list(active):
                payload = _poll_active(supervisor, entry)
                if payload is None:
                    continue
                active.remove(entry)
                label = f"pid:{entry.process.pid}"
                supervisor.handle(entry.item, payload, worker=label)
                progressed = True
            if not progressed:
                time.sleep(0.002)
    finally:
        for entry in active:
            entry.process.terminate()
            entry.process.join()
            entry.conn.close()


def _poll_active(supervisor: _Supervisor, entry: _Active):
    """One poll of an in-flight attempt; a payload ends the attempt."""
    payload = None
    if entry.conn.poll(0):
        try:
            payload = entry.conn.recv()
        except (EOFError, OSError, pickle.UnpicklingError) as exc:
            payload = _ShardFailure(
                "crash", f"reply lost in transport: {type(exc).__name__}"
            )
    elif not entry.process.is_alive():
        # The process died; give a raced final message one grace poll.
        if entry.conn.poll(0.05):
            try:
                payload = entry.conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError) as exc:
                payload = _ShardFailure(
                    "crash",
                    f"reply lost in transport: {type(exc).__name__}",
                )
        else:
            payload = _ShardFailure(
                "crash",
                f"worker exited without a reply "
                f"(exitcode {entry.process.exitcode})",
            )
    elif (
        supervisor.shard_timeout is not None
        and time.monotonic() - entry.started > supervisor.shard_timeout
    ):
        entry.process.terminate()
        payload = _ShardFailure(
            "timeout",
            f"shard [{entry.item.lo},{entry.item.hi}) exceeded the "
            f"{supervisor.shard_timeout}s deadline",
        )
    if payload is not None:
        entry.process.join()
        entry.conn.close()
    return payload
