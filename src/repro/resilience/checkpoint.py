"""Checkpoint journal: resumable progress for long batch-alignment runs.

The resilient engine periodically appends completed work items to a
JSON-lines journal.  A run that dies — the host, not just a worker — can
be restarted with the same inputs and the same journal path: every item
whose range and input checksum match the journal is replayed from disk
instead of re-aligned, and the final :class:`~repro.align.batch.BatchResult`
is identical to an uninterrupted run.

Journal layout (one JSON object per line)::

    {"kind": "repro-batch-journal", "version": 1, "aligner": ...,
     "plan": ..., "traceback": ...}                       # header
    {"lo": 0, "hi": 4, "checksum": ..., "results": [...],
     "quarantined": [...]}                                # one per item

Items are keyed by their absolute pair range ``[lo, hi)``; a stored
``checksum`` (CRC32 over the item's pristine pairs) guards against
resuming against a different dataset.  Serialised results carry the full
sequences, so alignments round-trip losslessly (``ops`` ↔ CIGAR is
reversible, and validation re-runs on load).
"""

from __future__ import annotations

import json
import warnings
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..align.base import AlignmentResult, KernelStats
from ..core.cigar import Alignment, cigar_to_ops

JOURNAL_KIND = "repro-batch-journal"
JOURNAL_VERSION = 1


class CheckpointError(RuntimeError):
    """The journal cannot be used (wrong kind/version, foreign dataset)."""


def serialize_result(result: AlignmentResult) -> dict:
    """Serialise one :class:`AlignmentResult` to a JSON-safe dict."""
    stats = result.stats
    payload = {
        "score": result.score,
        "exact": result.exact,
        "text_start": result.text_start,
        "text_end": result.text_end,
        "stats": {
            "instructions": dict(stats.instructions),
            "dp_cells": stats.dp_cells,
            "dp_bytes_peak": stats.dp_bytes_peak,
            "dp_bytes_read": stats.dp_bytes_read,
            "dp_bytes_written": stats.dp_bytes_written,
            "hot_bytes": stats.hot_bytes,
            "tiles": stats.tiles,
        },
        "alignment": None,
    }
    if result.alignment is not None:
        payload["alignment"] = {
            "pattern": result.alignment.pattern,
            "text": result.alignment.text,
            "cigar": result.alignment.cigar,
            "score": result.alignment.score,
        }
    return payload


def deserialize_result(data: dict) -> AlignmentResult:
    """Rebuild an :class:`AlignmentResult` from its serialised form."""
    stats_data = data["stats"]
    stats = KernelStats(
        instructions=Counter(stats_data["instructions"]),
        dp_cells=stats_data["dp_cells"],
        dp_bytes_peak=stats_data["dp_bytes_peak"],
        dp_bytes_read=stats_data["dp_bytes_read"],
        dp_bytes_written=stats_data["dp_bytes_written"],
        hot_bytes=stats_data["hot_bytes"],
        tiles=stats_data["tiles"],
    )
    alignment = None
    if data["alignment"] is not None:
        entry = data["alignment"]
        alignment = Alignment(
            pattern=entry["pattern"],
            text=entry["text"],
            ops=tuple(cigar_to_ops(entry["cigar"])),
            score=entry["score"],
        )
    return AlignmentResult(
        score=data["score"],
        alignment=alignment,
        stats=stats,
        exact=data["exact"],
        text_start=data["text_start"],
        text_end=data["text_end"],
    )


class CheckpointJournal:
    """Append-only JSON-lines journal of completed work items.

    Args:
        path: journal file; created (with header) when absent.
        meta: header fields identifying the run (aligner, plan
            fingerprint, traceback flag).  A pre-existing journal whose
            header disagrees raises :class:`CheckpointError` rather than
            silently mixing two runs.
    """

    def __init__(self, path: Union[str, Path], meta: dict):
        self.path = Path(path)
        self.meta = dict(meta)
        self.entries: Dict[Tuple[int, int], dict] = {}
        self.writes = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        else:
            header = {
                "kind": JOURNAL_KIND,
                "version": JOURNAL_VERSION,
                **self.meta,
            }
            with self.path.open("w") as handle:
                handle.write(json.dumps(header) + "\n")

    def _load(self) -> None:
        raw = self.path.read_bytes()
        lines: List[str] = []
        offsets: List[int] = []  # byte offset of each kept line
        position = 0
        for chunk in raw.splitlines(keepends=True):
            if chunk.strip():
                lines.append(chunk.decode("utf-8", "replace"))
                offsets.append(position)
            position += len(chunk)
        if not lines:
            raise CheckpointError(f"{self.path}: empty journal")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.path}: malformed journal header: {exc}"
            ) from exc
        if header.get("kind") != JOURNAL_KIND:
            raise CheckpointError(
                f"{self.path}: not a batch journal (kind "
                f"{header.get('kind')!r})"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path}: journal version {header.get('version')} "
                f"!= {JOURNAL_VERSION}"
            )
        for key, value in self.meta.items():
            if header.get(key) != value:
                raise CheckpointError(
                    f"{self.path}: journal belongs to a different run "
                    f"({key}: journal={header.get(key)!r}, run={value!r})"
                )
        body = lines[1:]
        for position_index, line in enumerate(body):
            index = position_index + 2
            try:
                entry = json.loads(line)
                lo, hi = entry["lo"], entry["hi"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                if position_index == len(body) - 1:
                    # A crash mid-append leaves exactly one torn record,
                    # and only at the tail.  Drop it — the work item it
                    # described was never acknowledged, so re-running it
                    # is safe — and truncate the file back to the last
                    # intact record so the next append starts cleanly.
                    warnings.warn(
                        f"{self.path}: dropping torn trailing journal "
                        f"entry at line {index} (crash mid-write?): {exc}",
                        stacklevel=2,
                    )
                    with self.path.open("r+b") as handle:
                        handle.truncate(offsets[1:][position_index])
                    break
                # Garbage *before* intact records is not a torn append —
                # the file was edited or corrupted; refuse to guess.
                raise CheckpointError(
                    f"{self.path}: line {index}: malformed journal entry "
                    f"(not a torn tail — followed by valid records): {exc}"
                ) from exc
            self.entries[(lo, hi)] = entry

    def lookup(
        self, lo: int, hi: int, checksum: int
    ) -> Optional[Tuple[List[AlignmentResult], List[dict]]]:
        """Completed results for [lo, hi), if journalled for the same data.

        Returns ``(results, quarantined)`` or ``None``.  A matching range
        with a different input checksum raises — resuming a journal
        against a different dataset is never silently accepted.
        """
        entry = self.entries.get((lo, hi))
        if entry is None:
            return None
        if entry["checksum"] != checksum:
            raise CheckpointError(
                f"{self.path}: item [{lo},{hi}) was journalled for "
                f"different input data (checksum mismatch)"
            )
        results = [deserialize_result(item) for item in entry["results"]]
        return results, list(entry.get("quarantined", ()))

    def has(self, lo: int, hi: int) -> bool:
        """True when item ``[lo, hi)`` is already journalled.

        Used by the distributed coordinator as the exactly-once gate: a
        completion whose range is already present must not be recorded
        (or accounted) a second time, whatever node it came from.
        """
        return (lo, hi) in self.entries

    def record(
        self,
        lo: int,
        hi: int,
        checksum: int,
        results: Sequence[AlignmentResult],
        quarantined: Sequence[dict] = (),
        *,
        epoch: Optional[int] = None,
        node: Optional[str] = None,
    ) -> None:
        """Append one completed item and flush it to disk.

        ``epoch`` and ``node`` are optional provenance fields written by
        the distributed coordinator: the lease epoch under which the
        shard completed and the node that executed it.  They do not
        participate in lookup keys — exactly-once accounting is keyed on
        the ``[lo, hi)`` range alone.
        """
        entry = {
            "lo": lo,
            "hi": hi,
            "checksum": checksum,
            "results": [serialize_result(result) for result in results],
            "quarantined": list(quarantined),
        }
        if epoch is not None:
            entry["epoch"] = epoch
        if node is not None:
            entry["node"] = node
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
        self.entries[(lo, hi)] = entry
        self.writes += 1
