"""Declarative, seeded fault plans — the chaos campaign's script.

A :class:`FaultPlan` is a replayable description of every fault a campaign
will inject: which **layer** it strikes (the hardware model, a worker
process, or the data path), which **kind** of fault it is, which **pair**
of the batch it targets, and a private 32-bit seed that parameterises the
corruption itself (which bit flips, which character garbles, how long a
hang sleeps).  Plans are generated from a single campaign seed, serialise
to JSON, and compare equal across processes — two runs from the same plan
inject byte-identical faults in byte-identical places.

Faults target *pair indices*, not shards: the same plan is meaningful for
any shard size or worker count, and the resilient engine arms each fault
on whichever shard happens to contain its pair.

By default faults are **transient**: the engine fires each one exactly
once (on the first attempt that covers its pair) and retries then see
healthy hardware, so a recovered run converges to the fault-free result.
``persistent=True`` marks a fault that re-fires on every attempt — the
shape that exhausts retries and exercises the bisection → fallback →
quarantine chain (used by targeted tests, not identity campaigns).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

#: Fault layers and the kinds defined at each layer.
LAYER_KINDS: Dict[str, Tuple[str, ...]] = {
    # Corruptions of the GMX hardware model, applied through the ISA-level
    # fault hook (:func:`repro.core.isa.fault_injection`).
    "hardware": ("bitflip", "stuck", "csr"),
    # Failures of the executing worker itself.
    "worker": ("crash", "hang", "slow", "unpicklable"),
    # Corruptions of the in-flight shard payload (the data path).
    "data": ("truncate", "garble"),
}

#: All layers, in deterministic order.
LAYERS: Tuple[str, ...] = tuple(LAYER_KINDS)


class FaultError(RuntimeError):
    """Root of every error raised *by an injected fault* at runtime.

    The resilient engine treats these exactly like organic failures — the
    point of the campaign is that recovery cannot tell them apart.
    """


class InjectedCrashError(FaultError):
    """An injected worker crash (layer ``worker``, kind ``crash``)."""


class FaultPlanError(ValueError):
    """A fault plan is malformed (bad layer/kind, bad JSON, bad target)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        fault_id: unique id within the plan (stable across serialisation).
        layer: ``hardware``, ``worker``, or ``data``.
        kind: fault kind within the layer (see :data:`LAYER_KINDS`).
        pair_index: absolute index of the targeted pair in the batch.
        seed: private seed parameterising the corruption deterministically.
        persistent: re-fire on every attempt (default: transient, fires
            once — see the module docstring).
    """

    fault_id: int
    layer: str
    kind: str
    pair_index: int
    seed: int
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.layer not in LAYER_KINDS:
            raise FaultPlanError(
                f"unknown fault layer {self.layer!r} (have {LAYERS})"
            )
        if self.kind not in LAYER_KINDS[self.layer]:
            raise FaultPlanError(
                f"unknown {self.layer} fault kind {self.kind!r} "
                f"(have {LAYER_KINDS[self.layer]})"
            )
        if self.pair_index < 0:
            raise FaultPlanError(
                f"pair_index must be non-negative, got {self.pair_index}"
            )

    def describe(self) -> str:
        """One-line human-readable form (used by ledgers and the CLI)."""
        flavour = "persistent" if self.persistent else "transient"
        return (
            f"fault #{self.fault_id}: {self.layer}/{self.kind} on pair "
            f"{self.pair_index} ({flavour}, seed {self.seed})"
        )

    def to_dict(self) -> dict:
        return {
            "fault_id": self.fault_id,
            "layer": self.layer,
            "kind": self.kind,
            "pair_index": self.pair_index,
            "seed": self.seed,
            "persistent": self.persistent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        try:
            return cls(
                fault_id=int(data["fault_id"]),
                layer=data["layer"],
                kind=data["kind"],
                pair_index=int(data["pair_index"]),
                seed=int(data["seed"]),
                persistent=bool(data.get("persistent", False)),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault spec missing field {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """A complete, replayable fault-injection campaign description.

    Attributes:
        seed: campaign seed the plan was generated from.
        pair_count: size of the batch the plan targets.
        faults: every planned fault, ordered by ``fault_id``.
    """

    seed: int
    pair_count: int
    faults: Tuple[FaultSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.faults:
            if spec.fault_id in seen:
                raise FaultPlanError(
                    f"duplicate fault_id {spec.fault_id} in plan"
                )
            seen.add(spec.fault_id)
            if spec.pair_index >= self.pair_count:
                raise FaultPlanError(
                    f"fault #{spec.fault_id} targets pair {spec.pair_index} "
                    f"outside the {self.pair_count}-pair batch"
                )

    @classmethod
    def generate(
        cls,
        seed: int,
        faults: int,
        pair_count: int,
        *,
        layers: Sequence[str] = LAYERS,
    ) -> "FaultPlan":
        """Deterministically generate a plan of ``faults`` faults.

        Layer, kind, target pair and per-fault seed are all drawn from a
        single ``random.Random(seed)`` stream, so the same arguments
        always produce the same plan on every platform.
        """
        if faults < 0:
            raise FaultPlanError(f"fault count must be >= 0, got {faults}")
        if pair_count < 1:
            raise FaultPlanError(
                f"pair_count must be positive, got {pair_count}"
            )
        for layer in layers:
            if layer not in LAYER_KINDS:
                raise FaultPlanError(f"unknown fault layer {layer!r}")
        rng = random.Random(seed)
        specs = []
        for fault_id in range(faults):
            layer = rng.choice(list(layers))
            kind = rng.choice(list(LAYER_KINDS[layer]))
            specs.append(
                FaultSpec(
                    fault_id=fault_id,
                    layer=layer,
                    kind=kind,
                    pair_index=rng.randrange(pair_count),
                    seed=rng.getrandbits(32),
                )
            )
        return cls(seed=seed, pair_count=pair_count, faults=tuple(specs))

    def persistent(self) -> "FaultPlan":
        """A copy of this plan with every fault marked persistent."""
        return replace(
            self,
            faults=tuple(replace(s, persistent=True) for s in self.faults),
        )

    def for_pairs(self, lo: int, hi: int) -> Tuple[FaultSpec, ...]:
        """Faults targeting pairs in the half-open range [lo, hi)."""
        return tuple(
            spec for spec in self.faults if lo <= spec.pair_index < hi
        )

    def by_layer(self) -> Dict[str, int]:
        """Fault counts per layer (all layers present, even at zero)."""
        counts = {layer: 0 for layer in LAYERS}
        for spec in self.faults:
            counts[spec.layer] += 1
        return counts

    @property
    def fingerprint(self) -> str:
        """Short stable identity of the plan (seed/count based)."""
        return f"plan:seed={self.seed}:pairs={self.pair_count}:faults={len(self.faults)}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "pair_count": self.pair_count,
                "faults": [spec.to_dict() for spec in self.faults],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        try:
            return cls(
                seed=int(data["seed"]),
                pair_count=int(data["pair_count"]),
                faults=tuple(
                    FaultSpec.from_dict(entry) for entry in data["faults"]
                ),
            )
        except KeyError as exc:
            raise FaultPlanError(f"fault plan missing field {exc}") from exc
