"""Fault injectors: turn planned :class:`FaultSpec`\\ s into live corruption.

Three layers, three mechanisms:

* **hardware** — a :class:`HardwareFaultInjector` implements the GMX ISA
  fault-hook protocol (``on_tile_output`` / ``on_csr_write``, see
  :func:`repro.core.isa.fault_injection`) and corrupts the architectural
  values the aligner-under-test observes: a transient bit flip in one tile
  output register image, a stuck-at-1 output bit polluting every tile, or
  a corrupted CSR write (a silently substituted base in a sequence chunk,
  a perturbed traceback position).
* **worker** — :func:`apply_worker_fault` makes the executing worker
  misbehave: raise (crash), sleep past its deadline (hang), sleep just
  under it (slow), or poison its reply so it cannot be pickled back.
* **data** — :func:`corrupt_pair` mutates the in-flight copy of a shard's
  pair (truncation or a garbled character); the parent detects the
  corruption by comparing :func:`pair_checksum` values computed
  independently on both sides of the transport.

Every injector draws all its choices from the spec's private seed, so a
replayed plan corrupts the same bit of the same value every time.
"""

from __future__ import annotations

import random
import time
import zlib
from typing import List, Optional, Sequence, Tuple

from .faults import FaultSpec, InjectedCrashError

#: Alphabet used when substituting a corrupted character (the realistic
#: silent-corruption shape: still a valid base, just the wrong one).
_BASES = "ACGT"


def pair_checksum(pattern: str, text: str) -> int:
    """Order-sensitive checksum of one pair (CRC32 over both sequences)."""
    return zlib.crc32(pattern.encode() + b"\x00" + text.encode())


class HardwareFaultInjector:
    """One armed hardware fault, in ISA fault-hook form.

    Args:
        spec: a ``hardware``-layer fault spec.

    Attributes:
        fired: True once the injector has actually changed a value —
            distinguishes an injected fault from one that was armed but
            masked (e.g. a stuck-at bit that already held the stuck level).
    """

    def __init__(self, spec: FaultSpec):
        if spec.layer != "hardware":
            raise ValueError(f"not a hardware fault: {spec.describe()}")
        self.spec = spec
        self.fired = False
        rng = random.Random(spec.seed)
        # bitflip: strike the k-th tile output; which bit is decided at
        # call time (the image width depends on the tile size).
        self._target_output = 1 + rng.randrange(4)
        # csr: strike the k-th CSR write.
        self._target_write = 1 + rng.randrange(3)
        self._draw = rng.getrandbits(32)
        self._outputs_seen = 0
        self._writes_seen = 0

    # -- ISA fault-hook protocol -------------------------------------------

    def on_tile_output(self, op: str, value: int, tile_size: int) -> int:
        """Corrupt a packed Δ register image leaving the array."""
        self._outputs_seen += 1
        bits = 2 * tile_size
        if self.spec.kind == "bitflip":
            if self._outputs_seen == self._target_output:
                value ^= 1 << (self._draw % bits)
                self.fired = True
        elif self.spec.kind == "stuck":
            # Stuck-at-1 on one output net: every image passing through
            # the faulty latch has that bit forced high.
            stuck = 1 << (self._draw % bits)
            if not value & stuck:
                self.fired = True
            value |= stuck
        return value

    def on_csr_write(self, csr: str, value):
        """Corrupt an architectural CSR write in flight."""
        if self.spec.kind != "csr":
            return value
        self._writes_seen += 1
        if self._writes_seen != self._target_write:
            return value
        if isinstance(value, str):
            if not value:
                return value
            index = self._draw % len(value)
            original = value[index]
            substitutes = [b for b in _BASES if b != original]
            swap = substitutes[self._draw % len(substitutes)]
            self.fired = True
            return value[:index] + swap + value[index + 1 :]
        if isinstance(value, int):
            self.fired = True
            return value ^ (1 << (self._draw % 8))
        return value


class FaultHookChain:
    """Compose several hardware injectors into one ISA fault hook."""

    def __init__(self, injectors: Sequence[HardwareFaultInjector]):
        self.injectors = list(injectors)

    def on_tile_output(self, op: str, value: int, tile_size: int) -> int:
        for injector in self.injectors:
            value = injector.on_tile_output(op, value, tile_size)
        return value

    def on_csr_write(self, csr: str, value):
        for injector in self.injectors:
            value = injector.on_csr_write(csr, value)
        return value


def apply_worker_fault(
    spec: FaultSpec,
    *,
    hang_seconds: float,
    slow_seconds: float,
) -> Optional[str]:
    """Enact a worker-layer fault inside the executing worker.

    Returns ``"unpicklable"`` when the worker should poison its reply
    (the caller owns the transport), ``None`` otherwise.  ``crash``
    raises; ``hang`` and ``slow`` sleep for the engine-chosen budgets.
    """
    if spec.layer != "worker":
        raise ValueError(f"not a worker fault: {spec.describe()}")
    if spec.kind == "crash":
        raise InjectedCrashError(spec.describe())
    if spec.kind == "hang":
        time.sleep(hang_seconds)
        return None
    if spec.kind == "slow":
        time.sleep(slow_seconds)
        return None
    return "unpicklable"


def corrupt_pair(spec: FaultSpec, pattern: str, text: str) -> Tuple[str, str]:
    """Enact a data-layer fault on the in-flight copy of one pair.

    ``truncate`` cuts one sequence short at a seeded point (possibly to
    empty — the classic short-read shape of a torn transfer); ``garble``
    substitutes one seeded character for a different base.  The pristine
    pair in the parent is untouched, which is what makes checksum
    comparison a detection mechanism rather than a tautology.
    """
    if spec.layer != "data":
        raise ValueError(f"not a data fault: {spec.describe()}")
    rng = random.Random(spec.seed)
    target_text = rng.random() < 0.5
    sequence = text if target_text else pattern
    if not sequence:
        return pattern, text
    if spec.kind == "truncate":
        cut = rng.randrange(len(sequence))
        mutated = sequence[:cut]
    else:  # garble
        index = rng.randrange(len(sequence))
        original = sequence[index]
        substitutes = [b for b in _BASES if b != original]
        mutated = (
            sequence[:index]
            + rng.choice(substitutes)
            + sequence[index + 1 :]
        )
    if target_text:
        return pattern, mutated
    return mutated, text


def corrupt_shard(
    specs: Sequence[FaultSpec],
    shard: Sequence[Tuple[str, str]],
    lo: int,
) -> List[Tuple[str, str]]:
    """Apply every data fault in ``specs`` to a copy of ``shard``.

    ``lo`` is the absolute pair index of the shard's first pair; specs
    target absolute indices.
    """
    mutated = list(shard)
    for spec in specs:
        offset = spec.pair_index - lo
        if 0 <= offset < len(mutated):
            pattern, text = mutated[offset]
            mutated[offset] = corrupt_pair(spec, pattern, text)
    return mutated
