"""Batch alignment: many pairs through one aligner, with aggregate stats.

Genome-analysis workloads align millions of pairs; this helper runs a
dataset through any :class:`~repro.align.base.Aligner`, aggregates the
kernel statistics, and projects the batch's throughput onto any modelled
system — the same pipeline the figure harness uses, exposed as library
API.

Example::

    from repro.align import FullGmxAligner, align_batch
    from repro.sim import RTL_INORDER
    from repro.workloads import short_dataset

    batch = align_batch(FullGmxAligner(), short_dataset(150, count=20))
    print(batch.mean_score, batch.modelled_throughput(RTL_INORDER))
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

from ..analysis.sanitizer import runtime as dsan
from ..obs import runtime as obs
from .base import Aligner, AlignmentResult, KernelStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (parallel → batch)
    from .parallel import BatchTelemetry

#: Accepted pair forms: (pattern, text) tuples or SequencePair-like objects.
PairLike = Union[Tuple[str, str], "object"]


@dataclass
class BatchResult:
    """Aggregate outcome of aligning a batch of pairs.

    Attributes:
        results: per-pair alignment results, in input order.
        stats: merged kernel statistics of the whole batch.
        telemetry: measured execution profile of the run (wall time,
            shards, worker utilisation) — see
            :class:`~repro.align.parallel.BatchTelemetry`.  Host-side
            measurement only; never feeds the modelled figures.
    """

    results: List[AlignmentResult] = field(default_factory=list)
    stats: KernelStats = field(default_factory=KernelStats)
    telemetry: Optional["BatchTelemetry"] = None

    @property
    def pairs(self) -> int:
        """Number of pairs aligned."""
        return len(self.results)

    @property
    def scores(self) -> List[int]:
        """Per-pair scores."""
        return [result.score for result in self.results]

    @property
    def mean_score(self) -> float:
        """Average score across the batch."""
        return sum(self.scores) / self.pairs if self.pairs else 0.0

    @property
    def all_exact(self) -> bool:
        """True when every result is certified optimal."""
        return all(result.exact for result in self.results)

    def modelled_seconds(self, system) -> float:
        """Modelled batch runtime on a :class:`~repro.sim.soc.SystemConfig`.

        An empty batch models as 0.0 seconds — consistent with
        :attr:`mean_score` and :meth:`modelled_throughput`, which likewise
        report 0.0 rather than degenerate divisions.
        """
        if not self.pairs:
            return 0.0
        from ..sim.core_model import estimate_kernel

        return estimate_kernel(self.stats, system.core, system.memory).seconds

    def modelled_throughput(self, system) -> float:
        """Modelled alignments/second of this batch on one core of ``system``.

        0.0 for an empty batch (nothing was aligned), and 0.0 when the
        modelled runtime itself is zero — a batch of zero-work kernels has
        no meaningful rate, and returning 0.0 keeps every zero-pair edge
        consistent across ``mean_score`` / ``modelled_*``.
        """
        if not self.pairs:
            return 0.0
        seconds = self.modelled_seconds(system)
        if seconds <= 0.0:
            return 0.0
        return self.pairs / seconds

    def modelled_energy_nj(self) -> float:
        """Modelled energy (nJ) of the batch on the RTL SoC (0.0 if empty)."""
        if not self.pairs:
            return 0.0
        from ..hw.energy import estimate_energy
        from ..sim.core_model import estimate_kernel
        from ..sim.soc import RTL_INORDER

        timing = estimate_kernel(
            self.stats, RTL_INORDER.core, RTL_INORDER.memory
        )
        return estimate_energy(self.stats, timing.cycles).nj_per_alignment


def _as_pair(item: PairLike) -> Tuple[str, str]:
    if isinstance(item, tuple):
        pattern, text = item
        return pattern, text
    pattern = getattr(item, "pattern", None)
    text = getattr(item, "text", None)
    if pattern is None or text is None:
        raise TypeError(
            f"batch items must be (pattern, text) tuples or carry "
            f".pattern/.text attributes, got {type(item).__name__}"
        )
    return pattern, text


def align_batch(
    aligner: Aligner,
    pairs: Iterable[PairLike],
    *,
    traceback: bool = True,
    validate: bool = False,
    workers: int = 1,
    shard_size: Optional[int] = None,
    backend: Optional[object] = None,
) -> BatchResult:
    """Align every pair with ``aligner`` and aggregate the statistics.

    Args:
        pairs: (pattern, text) tuples, :class:`SequencePair` objects, a
            :class:`~repro.workloads.generator.PairSet`, or any generator
            of pair-likes (streamed, never materialised here).
        traceback: compute full alignments (vs distance only).
        validate: additionally replay every alignment against its sequences
            (raises on any inconsistency — a thorough self-check mode).
        workers: worker processes.  ``1`` (default) aligns serially in
            process; ``>1`` fans shards out through
            :func:`repro.align.parallel.align_batch_sharded`, producing
            byte-identical results, stats, and ordering.
        shard_size: pairs per shard when ``workers > 1``.
        backend: kernel backend override (name or
            :class:`~repro.align.backends.KernelBackend`); rebinds the
            aligner via :meth:`~repro.align.base.Aligner.with_backend`
            before any work starts, so it also survives pickling into
            pool workers.  Raises
            :class:`~repro.align.base.AlignerError` for aligners without
            a pluggable kernel.

    The returned :class:`BatchResult` always carries a
    :attr:`~BatchResult.telemetry` record with the measured wall time.
    """
    if backend is not None:
        aligner = aligner.with_backend(backend)
    if workers != 1 or shard_size is not None:
        from .parallel import align_batch_sharded

        return align_batch_sharded(
            aligner, pairs,
            workers=workers, shard_size=shard_size,
            traceback=traceback, validate=validate,
        )
    from .parallel import BatchTelemetry, ShardTelemetry

    batch = BatchResult()
    start = time.perf_counter()
    token = dsan.batch_begin()
    try:
        with obs.span("batch.align", workers=1):
            for item in pairs:
                pattern, text = _as_pair(item)
                result = aligner.align(pattern, text, traceback=traceback)
                if validate and result.alignment is not None:
                    result.alignment.validate()
                batch.results.append(result)
                batch.stats.merge(result.stats)
    finally:
        dsan.batch_end(token, "align_batch")
    obs.inc("batch.runs")
    obs.inc("batch.pairs", batch.pairs)
    wall = time.perf_counter() - start
    telemetry = BatchTelemetry(
        workers=1,
        shard_size=max(1, batch.pairs),
        backend=getattr(getattr(aligner, "backend", None), "name", None),
    )
    if batch.pairs:
        telemetry.shards.append(
            ShardTelemetry(
                index=0, pairs=batch.pairs, wall_seconds=wall,
                worker="inline",
            )
        )
    telemetry.wall_seconds = wall
    batch.telemetry = telemetry
    return batch
