"""Windowed alignment: overlapping-window heuristic (§4.1, Fig 4.b.3).

The windowed strategy (introduced by Darwin's GACT and adopted by GenASM)
starts a W×W window at the bottom-right of the DP matrix, aligns it fully,
commits the traceback up to an overlap margin of O cells from the window's
top/left edges, then re-anchors the window at the committed position and
repeats until it reaches the top-left corner.  The overlap absorbs path
divergence between windows; the result is a high-quality heuristic
alignment whose cost upper-bounds the true edit distance.

:class:`WindowedAligner` is generic over the *inner* aligner that solves
each window, which is how the paper's three windowed systems share one
driver in this library:

* ``Windowed(GMX)``        — inner Full(GMX), W = 3T, O = T;
* ``Windowed(GenASM-CPU)`` — inner Bitap (see :mod:`repro.baselines.genasm`);
* ``Darwin (GACT)``        — inner gap-affine DP (:mod:`repro.baselines.darwin`).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
    edit_cost,
)
from ..core.tile import DEFAULT_TILE_SIZE
from ..obs import runtime as obs
from .backends import KernelBackend
from .base import Aligner, AlignerError, AlignmentResult, KernelStats
from .full_gmx import FullGmxAligner, _edge_bytes


class WindowedAligner(Aligner):
    """Overlapping-window heuristic driver around any full aligner.

    Args:
        inner: the aligner used to solve each W×W window (with traceback).
        window: W, the window side length in DP cells.
        overlap: O, the re-computed overlap between consecutive windows;
            must satisfy ``0 <= overlap < window``.
    """

    name = "Windowed"

    def __init__(self, inner: Aligner, window: int, overlap: int):
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        if not 0 <= overlap < window:
            raise ValueError(
                f"overlap must lie in [0, window), got {overlap} "
                f"with window {window}"
            )
        self.inner = inner
        self.window = window
        self.overlap = overlap

    @property
    def supports_backend(self) -> bool:  # type: ignore[override]
        """Backend support is inherited from the inner aligner."""
        return getattr(self.inner, "supports_backend", False)

    @property
    def backend(self) -> "KernelBackend | None":
        """The inner aligner's kernel backend (None when it has none)."""
        return getattr(self.inner, "backend", None)

    def with_backend(self, backend) -> "WindowedAligner":
        if not self.supports_backend:
            raise AlignerError(
                f"{type(self.inner).__name__} does not support kernel backends"
            )
        return WindowedAligner(
            self.inner.with_backend(backend), self.window, self.overlap
        )

    @obs.instrument_align("windowed")
    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        stats = KernelStats()
        window = self.window
        overlap = self.overlap
        remaining_p = len(pattern)  # un-committed pattern prefix length
        remaining_t = len(text)
        reversed_ops: List[str] = []
        windows = 0
        while remaining_p > 0 and remaining_t > 0:
            rows = min(window, remaining_p)
            cols = min(window, remaining_t)
            sub_pattern = pattern[remaining_p - rows : remaining_p]
            sub_text = text[remaining_t - cols : remaining_t]
            with obs.span("phase.window", kernel=self.name, rows=rows, cols=cols):
                window_result = self.inner.align(
                    sub_pattern, sub_text, traceback=True
                )
            stats.merge(window_result.stats)
            windows += 1
            obs.inc("align.windowed.windows")
            is_final = rows == remaining_p and cols == remaining_t
            ops_before = len(reversed_ops)
            committed_p, committed_t = self._commit(
                window_result.alignment.ops,
                rows,
                cols,
                reversed_ops,
                final=is_final,
                limit_i=0 if rows == remaining_p else overlap,
                limit_j=0 if cols == remaining_t else overlap,
            )
            remaining_p -= committed_p
            remaining_t -= committed_t
            # Software driver work: window setup/re-anchoring and the
            # commit bookkeeping.  The commit point is derived from the
            # gmx_pos chain (tile granularity), not by decoding every op,
            # so the cost is per window, not per operation.
            del ops_before
            stats.add_instr("int_alu", 40)
            stats.add_instr("branch", 6)
        reversed_ops.extend([OP_DELETION] * remaining_p)
        reversed_ops.extend([OP_INSERTION] * remaining_t)
        ops = tuple(reversed(reversed_ops))
        score = edit_cost(ops)
        # Only one window of DP state is ever live.
        stats.dp_bytes_peak = self._window_state_bytes()
        stats.hot_bytes = self._window_state_bytes()
        alignment = None
        if traceback:
            alignment = Alignment(pattern=pattern, text=text, ops=ops, score=score)
        return AlignmentResult(
            score=score, alignment=alignment, stats=stats, exact=False
        )

    def _window_state_bytes(self) -> int:
        """Peak DP-state bytes of one window (subclasses refine)."""
        return 4 * self.window * self.window

    @staticmethod
    def _commit(
        window_ops,
        rows: int,
        cols: int,
        reversed_ops: List[str],
        *,
        final: bool,
        limit_i: int,
        limit_j: int,
    ) -> Tuple[int, int]:
        """Commit the window traceback up to the overlap margin.

        ``window_ops`` are in pattern→text order for the window; the walk
        re-traverses them backwards from the window's bottom-right corner
        and stops once the position crosses into the overlap margin
        (``i <= limit_i`` or ``j <= limit_j``), unless the window is final.
        At least one operation is always committed to guarantee progress.

        Returns:
            (pattern_chars_committed, text_chars_committed).
        """
        i = rows  # rows of the window still un-walked
        j = cols
        committed_p = 0
        committed_t = 0
        for op in reversed(window_ops):
            if not final and committed_p + committed_t > 0:
                if i <= limit_i or j <= limit_j:
                    break
            reversed_ops.append(op)
            if op in (OP_MATCH, OP_MISMATCH):
                i -= 1
                j -= 1
                committed_p += 1
                committed_t += 1
            elif op == OP_DELETION:
                i -= 1
                committed_p += 1
            else:
                j -= 1
                committed_t += 1
        return committed_p, committed_t


class WindowedGmxAligner(WindowedAligner):
    """Windowed(GMX): windows solved tile-wise with Full(GMX).

    Paper defaults W = 3T and O = T (W = 96, O = 32 in the DSA comparison),
    so a window is a 3×3 block of tiles whose edge vectors stay in
    registers — Windowed(GMX) keeps almost no DP state in memory (§7.2).

    Args:
        window: W (default 3·T).
        overlap: O (default T).
        tile_size: T, the GMX tile dimension.
        trace_sink: when given, every window's Full(GMX) run appends its
            retired instruction stream to this list (one program per
            window) for the static program verifier.
        backend: kernel backend for the inner Full(GMX) windows (see
            :mod:`repro.align.backends`).
    """

    name = "Windowed(GMX)"

    def __init__(
        self,
        window: int | None = None,
        overlap: int | None = None,
        *,
        tile_size: int = DEFAULT_TILE_SIZE,
        trace_sink: List | None = None,
        backend: "KernelBackend | str | None" = None,
    ):
        self.tile_size = tile_size
        super().__init__(
            inner=FullGmxAligner(
                tile_size=tile_size, trace_sink=trace_sink, backend=backend
            ),
            window=window if window is not None else 3 * tile_size,
            overlap=overlap if overlap is not None else tile_size,
        )

    def with_backend(self, backend) -> "WindowedGmxAligner":
        return WindowedGmxAligner(
            self.window,
            self.overlap,
            tile_size=self.tile_size,
            trace_sink=self.inner.trace_sink,
            backend=backend,
        )

    def _window_state_bytes(self) -> int:
        tiles_per_side = -(-self.window // self.tile_size)
        return 2 * _edge_bytes(self.tile_size) * tiles_per_side**2
