"""GMX co-designed alignment algorithms: Full, Banded, and Windowed (§4.1)."""

from .base import Aligner, AlignerError, AlignmentMode, AlignmentResult, KernelStats
from .auto import AutoAligner
from .banded_gmx import BandExceededError, BandedGmxAligner
from .batch import BatchResult, align_batch
from .full_gmx import FullGmxAligner, align_pair
from .windowed_gmx import WindowedAligner, WindowedGmxAligner

__all__ = [
    "Aligner",
    "AlignerError",
    "AlignmentMode",
    "AlignmentResult",
    "AutoAligner",
    "BandExceededError",
    "BandedGmxAligner",
    "BatchResult",
    "FullGmxAligner",
    "KernelStats",
    "WindowedAligner",
    "WindowedGmxAligner",
    "align_batch",
    "align_pair",
]
