"""GMX co-designed alignment algorithms: Full, Banded, and Windowed (§4.1)."""

from .base import (
    Aligner,
    AlignerError,
    AlignmentMode,
    AlignmentResult,
    KernelStats,
    ResilienceCounters,
)
from .auto import AutoAligner
from .backends import (
    BackendError,
    KernelBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .banded_gmx import BandExceededError, BandedGmxAligner
from .batch import BatchResult, align_batch
from .chunked import (
    align_chunked,
    canonical_cigar,
    canonicalize_ops,
    ops_to_runs,
    runs_to_cigar,
    runs_to_ops,
    trim_insertion_flanks,
)
from .full_gmx import FullGmxAligner, align_pair
from .parallel import (
    BatchTelemetry,
    PoolError,
    ShardTelemetry,
    WorkerPool,
    align_batch_sharded,
    iter_shards,
)
from .windowed_gmx import WindowedAligner, WindowedGmxAligner

__all__ = [
    "Aligner",
    "AlignerError",
    "AlignmentMode",
    "AlignmentResult",
    "AutoAligner",
    "BackendError",
    "BandExceededError",
    "BandedGmxAligner",
    "BatchResult",
    "BatchTelemetry",
    "FullGmxAligner",
    "KernelBackend",
    "KernelStats",
    "PoolError",
    "ResilienceCounters",
    "ShardTelemetry",
    "WorkerPool",
    "WindowedAligner",
    "WindowedGmxAligner",
    "align_batch",
    "align_batch_sharded",
    "align_chunked",
    "align_pair",
    "backend_names",
    "canonical_cigar",
    "canonicalize_ops",
    "ops_to_runs",
    "runs_to_cigar",
    "runs_to_ops",
    "trim_insertion_flanks",
    "get_backend",
    "iter_shards",
    "register_backend",
]
