"""GMX co-designed alignment algorithms: Full, Banded, and Windowed (§4.1)."""

from .base import (
    Aligner,
    AlignerError,
    AlignmentMode,
    AlignmentResult,
    KernelStats,
    ResilienceCounters,
)
from .auto import AutoAligner
from .banded_gmx import BandExceededError, BandedGmxAligner
from .batch import BatchResult, align_batch
from .full_gmx import FullGmxAligner, align_pair
from .parallel import (
    BatchTelemetry,
    ShardTelemetry,
    align_batch_sharded,
    iter_shards,
)
from .windowed_gmx import WindowedAligner, WindowedGmxAligner

__all__ = [
    "Aligner",
    "AlignerError",
    "AlignmentMode",
    "AlignmentResult",
    "AutoAligner",
    "BandExceededError",
    "BandedGmxAligner",
    "BatchResult",
    "BatchTelemetry",
    "FullGmxAligner",
    "KernelStats",
    "ResilienceCounters",
    "ShardTelemetry",
    "WindowedAligner",
    "WindowedGmxAligner",
    "align_batch",
    "align_batch_sharded",
    "align_pair",
    "iter_shards",
]
