"""Automatic aligner selection — a convenience façade over the three
co-designed algorithms.

Downstream tools rarely want to pick Full/Banded/Windowed by hand; the
trade-offs are mechanical (§4.1):

* **Banded with auto-widening** is exact and cheap whenever the pair is
  similar — it is the default.
* **Full** is the fallback when exactness is required on arbitrarily
  divergent pairs and the matrix is small enough to afford.
* **Windowed** takes over when the full matrix would not fit the memory
  budget (the §7.3 regime: megabase reads on a 1 GB SoC).

:class:`AutoAligner` encodes exactly that policy and records which engine
it chose, so pipelines can audit the decisions.
"""

from __future__ import annotations

from typing import Optional, Union

from .backends import KernelBackend, get_backend
from .banded_gmx import BandedGmxAligner
from .base import Aligner, AlignmentResult
from .full_gmx import _edge_bytes
from .windowed_gmx import WindowedGmxAligner


class AutoAligner(Aligner):
    """Pick the cheapest GMX algorithm that satisfies the request.

    Args:
        memory_budget_bytes: ceiling for the DP edge state; pairs whose
            full-matrix edge storage would exceed it go to the windowed
            heuristic (default 64 MiB — comfortably inside a 1 GB SoC).
        require_exact: when True, never fall back to the windowed
            heuristic; raise instead if the budget cannot be met.
        tile_size: T for all engines.
        backend: kernel backend shared by all engines (see
            :mod:`repro.align.backends`).
    """

    name = "Auto(GMX)"
    supports_backend = True

    def __init__(
        self,
        *,
        memory_budget_bytes: int = 64 * 1024 * 1024,
        require_exact: bool = False,
        tile_size: int = 32,
        backend: Union[None, str, KernelBackend] = None,
    ):
        if memory_budget_bytes < 1024:
            raise ValueError(
                f"memory budget of {memory_budget_bytes} bytes is unusable"
            )
        self.memory_budget_bytes = memory_budget_bytes
        self.require_exact = require_exact
        self.tile_size = tile_size
        self.backend = get_backend(backend)
        self._banded = BandedGmxAligner(tile_size=tile_size, backend=self.backend)
        self._windowed = WindowedGmxAligner(
            tile_size=tile_size, backend=self.backend
        )
        #: Engine chosen by the most recent :meth:`align` call.
        self.last_choice: Optional[str] = None

    def with_backend(
        self, backend: Union[None, str, KernelBackend]
    ) -> "AutoAligner":
        return AutoAligner(
            memory_budget_bytes=self.memory_budget_bytes,
            require_exact=self.require_exact,
            tile_size=self.tile_size,
            backend=backend,
        )

    def _edge_matrix_bytes(self, n: int, m: int) -> int:
        tiles = -(-n // self.tile_size) * -(-m // self.tile_size)
        return 2 * _edge_bytes(self.tile_size) * tiles

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        footprint = self._edge_matrix_bytes(len(pattern), len(text))
        if footprint <= self.memory_budget_bytes:
            # Banded auto-widening degenerates gracefully to Full: in the
            # worst case (band = max length) it computes the same tiles.
            self.last_choice = "Banded(GMX)"
            return self._banded.align(pattern, text, traceback=traceback)
        if self.require_exact:
            raise MemoryError(
                f"exact alignment needs {footprint} bytes of edge state, "
                f"over the {self.memory_budget_bytes}-byte budget"
            )
        self.last_choice = "Windowed(GMX)"
        return self._windowed.align(pattern, text, traceback=traceback)
