"""Banded(GMX): band heuristic over GMX tiles (paper §4.1, Figure 4.b.2).

Only tiles whose index distance from the main tile diagonal is at most
``ceil(B / T)`` are computed.  Edges entering the band from uncomputed
neighbours are filled with +1 differences, i.e. the DP values just outside
the band are assumed to keep growing — an over-estimate, so in-band values
are upper bounds on the true distances and *exact* whenever the optimal path
stays inside the band (Ukkonen's classical band argument; the reported score
``s`` certifies itself when ``s ≤ B``, because an optimal path can stray at
most ``s`` cells off the diagonal).

With ``auto_widen=True`` (the default, mirroring Edlib's doubling search)
the aligner restarts with twice the band until the result self-certifies,
so it remains an exact algorithm with banded cost on low-divergence pairs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..core.bitvec import pack_deltas, unpack_deltas
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
    edit_cost,
)
from ..core.isa import GmxIsa, encode_pos
from ..core.tile import DEFAULT_TILE_SIZE
from ..core.traceback import NextTile
from ..obs import runtime as obs
from .backends import (
    BandedMatrixRequest,
    KernelBackend,
    effective_backend,
    get_backend,
)
from .base import Aligner, AlignmentResult, BandExceededError, KernelStats
from .full_gmx import _chunks, _edge_bytes

__all__ = ["BandExceededError", "BandedGmxAligner"]


class BandedGmxAligner(Aligner):
    """Banded edit-distance aligner built on GMX tile instructions.

    Args:
        band: initial band half-width in DP cells; ``None`` starts at
            ``max(|n−m|, 2·T)`` for each pair.
        auto_widen: double the band and retry until the score self-certifies
            (``score ≤ band``); when False a non-certified result is returned
            with ``exact=False``.
        tile_size: T, the GMX tile dimension.
        trace_sink: when given, every banded pass appends its retired
            :class:`~repro.core.isa.IsaEvent` stream to this list — the
            input of the static program verifier (:mod:`repro.analysis`).
        backend: kernel backend computing the band passes — a registered
            name, a :class:`~repro.align.backends.KernelBackend` instance,
            or ``None`` for the environment/default selection.
    """

    name = "Banded(GMX)"
    supports_backend = True

    def __init__(
        self,
        band: Optional[int] = None,
        *,
        auto_widen: bool = True,
        tile_size: int = DEFAULT_TILE_SIZE,
        trace_sink: Optional[List] = None,
        backend: Union[None, str, KernelBackend] = None,
    ):
        if band is not None and band < 1:
            raise ValueError(f"band must be positive, got {band}")
        self.band = band
        self.auto_widen = auto_widen
        self.tile_size = tile_size
        self.trace_sink = trace_sink
        self.backend = get_backend(backend)

    def with_backend(
        self, backend: Union[None, str, KernelBackend]
    ) -> "BandedGmxAligner":
        return BandedGmxAligner(
            self.band,
            auto_widen=self.auto_widen,
            tile_size=self.tile_size,
            trace_sink=self.trace_sink,
            backend=backend,
        )

    @obs.instrument_align("banded_gmx")
    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        tile = self.tile_size
        band = self.band
        if band is None:
            band = max(abs(len(pattern) - len(text)), 2 * tile)
        band = max(band, abs(len(pattern) - len(text)))
        stats = KernelStats()
        max_band = max(len(pattern), len(text))
        while True:
            try:
                with obs.span("phase.band_pass", kernel="banded_gmx", band=band):
                    result = self._align_banded(
                        pattern, text, band, traceback, stats
                    )
            except BandExceededError:
                obs.inc("align.banded_gmx.band_exceeded")
                if not self.auto_widen or band >= max_band:
                    raise
                obs.inc("align.banded_gmx.band_widened")
                band = min(2 * band, max_band)
                continue
            certified = result.score <= band or band >= max_band
            if certified or not self.auto_widen:
                result.exact = certified
                return result
            obs.inc("align.banded_gmx.band_widened")
            band = min(2 * band, max_band)

    # -- one banded pass -------------------------------------------------------

    def _tile_band(self, band: int) -> int:
        """Band half-width in tile units."""
        return -(-band // self.tile_size)  # ceil division

    def _align_banded(
        self,
        pattern: str,
        text: str,
        band: int,
        traceback: bool,
        stats: KernelStats,
    ) -> AlignmentResult:
        tile = self.tile_size
        edge_bytes = _edge_bytes(tile)
        isa = GmxIsa(tile_size=tile)
        if self.trace_sink is not None:
            isa.trace = []
            self.trace_sink.append(isa.trace)
        backend = effective_backend(self.backend, isa)
        p_chunks = _chunks(pattern, tile)
        t_chunks = _chunks(text, tile)
        n_tiles = len(p_chunks)
        bt = self._tile_band(band)

        boundary_v = [pack_deltas([1] * len(chunk)) for chunk in p_chunks]
        boundary_h = [pack_deltas([1] * len(chunk)) for chunk in t_chunks]
        plus_fill_v = [pack_deltas([1] * len(chunk)) for chunk in p_chunks]
        plus_fill_h = [pack_deltas([1] * len(chunk)) for chunk in t_chunks]

        def rows_through(tile_row: int) -> int:
            """Number of pattern rows covered by tile rows 0..tile_row."""
            if tile_row < 0:
                return 0
            return min((tile_row + 1) * tile, len(pattern))

        outcome = backend.banded_matrix(
            BandedMatrixRequest(
                isa=isa,
                stats=stats,
                pattern=pattern,
                p_chunks=p_chunks,
                t_chunks=t_chunks,
                tile_size=tile,
                tile_band=bt,
                store_matrix=traceback,
                boundary_v=boundary_v,
                boundary_h=boundary_h,
                plus_fill_v=plus_fill_v,
                plus_fill_h=plus_fill_h,
            )
        )
        matrix = outcome.matrix

        # Running D value at (bottom in-band row, right edge of the column):
        # walk the band bottom down the +1 fill, then along each column's
        # band-bottom ΔH image.
        prev_bottom = min(n_tiles - 1, bt - 1)
        score = rows_through(prev_bottom)
        for tj, text_chunk in enumerate(t_chunks):
            hi = min(n_tiles - 1, tj + bt)
            score += rows_through(hi) - rows_through(prev_bottom)
            prev_bottom = hi
            score += sum(unpack_deltas(outcome.bottoms[tj], len(text_chunk)))

        stats.hot_bytes = max(stats.hot_bytes or 0, edge_bytes * (2 * bt + 2))
        if traceback:
            stats.dp_bytes_peak = max(
                stats.dp_bytes_peak, 2 * edge_bytes * len(matrix)
            )
        else:
            stats.dp_bytes_peak = max(
                stats.dp_bytes_peak, edge_bytes * (2 * bt + 2)
            )

        alignment = None
        if traceback:
            ops = self._traceback(
                isa, stats, pattern, text, p_chunks, t_chunks, matrix,
                boundary_v, boundary_h, plus_fill_v, plus_fill_h, bt,
            )
            # Inside the band the path cost equals the corner value; report
            # the path's own cost so a non-certified (heuristic) result still
            # describes a valid alignment.
            score = edit_cost(ops)
            alignment = Alignment(
                pattern=pattern, text=text, ops=tuple(ops), score=score
            )
        stats.add_instr("csr", isa.retired["csrw"] + isa.retired["csrr"])
        stats.add_instr("gmx", isa.retired["gmx.v"] + isa.retired["gmx.h"])
        stats.add_instr("gmx_tb", isa.retired["gmx.tb"])
        return AlignmentResult(
            score=score, alignment=alignment, stats=stats, exact=False
        )

    def _traceback(
        self,
        isa: GmxIsa,
        stats: KernelStats,
        pattern: str,
        text: str,
        p_chunks: List[str],
        t_chunks: List[str],
        matrix: Dict[Tuple[int, int], Tuple[int, int]],
        boundary_v: List[int],
        boundary_h: List[int],
        plus_fill_v: List[int],
        plus_fill_h: List[int],
        bt: int,
    ) -> List[str]:
        tile = self.tile_size
        edge_bytes = _edge_bytes(tile)
        ti = len(p_chunks) - 1
        tj = len(t_chunks) - 1
        if abs(ti - tj) > bt:
            raise BandExceededError(
                f"band of {bt} tiles does not reach the DP corner "
                f"({ti}, {tj}); widen the band"
            )
        gi = len(pattern) - 1
        gj = len(text) - 1
        isa.csrw("gmx_pos", encode_pos(tile - 1, tile - 1, tile))
        reversed_ops: List[str] = []
        while gi >= 0 and gj >= 0:
            if (ti, tj) not in matrix:
                raise BandExceededError(
                    f"traceback left the computed band at tile ({ti}, {tj})"
                )
            isa.csrw("gmx_text", t_chunks[tj])
            isa.csrw("gmx_pattern", p_chunks[ti])
            if tj == 0:
                dv_in = boundary_v[ti]
            elif (ti, tj - 1) in matrix:
                dv_in = matrix[(ti, tj - 1)][0]
            else:
                dv_in = plus_fill_v[ti]
            if ti == 0:
                dh_in = boundary_h[tj]
            elif (ti - 1, tj) in matrix:
                dh_in = matrix[(ti - 1, tj)][1]
            else:
                dh_in = plus_fill_h[tj]
            result = isa.gmx_tb(dv_in, dh_in)
            isa.csrr("gmx_hi")
            isa.csrr("gmx_lo")
            isa.csrr("gmx_pos")
            stats.dp_bytes_read += 2 * edge_bytes
            stats.add_instr("load", 2)
            stats.add_instr("int_alu", 6)
            stats.add_instr("branch", 2)
            for op in result.ops:
                reversed_ops.append(op)
                if op in (OP_MATCH, OP_MISMATCH):
                    gi -= 1
                    gj -= 1
                elif op == OP_DELETION:
                    gi -= 1
                else:
                    gj -= 1
            # Algorithm 2 dumps the raw encoded alignment: two stores of
            # gmx_hi/gmx_lo per tile (the ops stay 2-bit encoded in memory).
            stats.add_instr("store", 2)
            stats.dp_bytes_written += 2 * edge_bytes
            if result.next_tile is NextTile.DIAGONAL:
                ti -= 1
                tj -= 1
            elif result.next_tile is NextTile.UP:
                ti -= 1
            else:
                tj -= 1
        reversed_ops.extend([OP_DELETION] * (gi + 1))
        reversed_ops.extend([OP_INSERTION] * (gj + 1))
        reversed_ops.reverse()
        return reversed_ops
