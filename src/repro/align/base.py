"""Aligner interface, results, and kernel instrumentation.

Every aligner in :mod:`repro.align` (GMX co-designed) and
:mod:`repro.baselines` (software state of the art) implements
:class:`Aligner` and returns an :class:`AlignmentResult` carrying both the
functional output (score, optional alignment) and a :class:`KernelStats`
record of the dynamic work performed.

The stats are *trace-derived*: aligners count the loop iterations, DP
elements, tiles, and memory traffic they actually execute, and translate
them into a retired-instruction mix using fixed per-iteration instruction
recipes (documented per aligner).  The cycle models in :mod:`repro.sim`
consume these records; Python wall-clock never enters any reported figure.
"""

from __future__ import annotations

import abc
import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.cigar import Alignment


class AlignmentMode(enum.Enum):
    """Where an alignment is anchored in the DP matrix.

    * ``GLOBAL`` — Needleman–Wunsch: both sequences consumed end to end.
    * ``PREFIX`` — the whole pattern against a *prefix* of the text (free
      text suffix; Edlib's SHW).  Used when the text is a reference window
      longer than the read.
    * ``INFIX`` — the whole pattern against a *substring* of the text (free
      text prefix and suffix; Edlib's HW).  The mapping-verification mode:
      locate the read anywhere inside a candidate window.

    In difference terms the modes only change the DP boundary and where the
    score is read: INFIX zeroes the top-row differences (D[0][j] = 0), and
    both free-suffix modes take ``min_j D[n][j]`` over the bottom row.
    """

    GLOBAL = "global"
    PREFIX = "prefix"
    INFIX = "infix"

#: Instruction categories used by the cycle models.
INSTR_CLASSES = (
    "int_alu",   # scalar integer / bitwise ops
    "load",      # memory loads
    "store",     # memory stores
    "branch",    # conditional branches
    "csr",       # csrr/csrw to GMX architectural state
    "gmx",       # gmx.v / gmx.h (2-cycle pipelined tile computation)
    "gmx_tb",    # gmx.tb (6-cycle multicycle tile traceback)
)


@dataclass
class KernelStats:
    """Dynamic execution profile of one alignment kernel invocation.

    Attributes:
        instructions: retired instructions by class (see INSTR_CLASSES).
        dp_cells: DP-matrix elements the kernel evaluated.
        dp_bytes_peak: peak bytes of DP state the kernel keeps live
            (the paper's memory-footprint axis).
        dp_bytes_read / dp_bytes_written: DP-state memory traffic in bytes
            (drives the cache/bandwidth models).
        hot_bytes: the *hot* working set — state with short reuse distance
            (e.g. one column of tile edges), as opposed to write-once
            traceback state streamed through the hierarchy.  ``None`` means
            "everything is hot" and the timing models fall back to
            ``dp_bytes_peak``.
        tiles: GMX tiles computed (zero for non-GMX kernels).
    """

    instructions: Counter = field(default_factory=Counter)
    dp_cells: int = 0
    dp_bytes_peak: int = 0
    dp_bytes_read: int = 0
    dp_bytes_written: int = 0
    hot_bytes: Optional[int] = None
    tiles: int = 0

    def add_instr(self, klass: str, count: int = 1) -> None:
        """Retire ``count`` instructions of class ``klass``.

        Zero counts are skipped so that Counter comparisons between
        measured and predicted stats are not polluted by empty entries.
        """
        if klass not in INSTR_CLASSES:
            raise ValueError(f"unknown instruction class {klass!r}")
        if count:
            self.instructions[klass] += count

    @property
    def total_instructions(self) -> int:
        """Total retired instructions across all classes."""
        return sum(self.instructions.values())

    @property
    def dp_bytes_traffic(self) -> int:
        """Total DP-state bytes moved (reads + writes)."""
        return self.dp_bytes_read + self.dp_bytes_written

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another invocation's stats into this record.

        Every reduction here is commutative and associative (sums and
        maxes over integers), so merging per-shard partial stats in any
        grouping reproduces the serial accumulation exactly — the property
        the parallel batch engine relies on.
        """
        self.instructions.update(other.instructions)
        self.dp_cells += other.dp_cells
        self.dp_bytes_peak = max(self.dp_bytes_peak, other.dp_bytes_peak)
        self.dp_bytes_read += other.dp_bytes_read
        self.dp_bytes_written += other.dp_bytes_written
        if other.hot_bytes is not None:
            self.hot_bytes = max(self.hot_bytes or 0, other.hot_bytes)
        self.tiles += other.tiles

    def copy(self) -> "KernelStats":
        """Independent deep copy (the Counter is not shared)."""
        return KernelStats(
            instructions=Counter(self.instructions),
            dp_cells=self.dp_cells,
            dp_bytes_peak=self.dp_bytes_peak,
            dp_bytes_read=self.dp_bytes_read,
            dp_bytes_written=self.dp_bytes_written,
            hot_bytes=self.hot_bytes,
            tiles=self.tiles,
        )

    @classmethod
    def merged(cls, parts: Iterable["KernelStats"]) -> "KernelStats":
        """Merge any number of stat records into a fresh one.

        The shard-reduction entry point: ``merged(merged(a, b), c)`` equals
        ``merged(a, b, c)`` equals the serial accumulation, whatever the
        grouping.
        """
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    @property
    def effective_hot_bytes(self) -> int:
        """Hot working set, falling back to the full DP footprint."""
        return self.hot_bytes if self.hot_bytes is not None else self.dp_bytes_peak


@dataclass
class AlignmentResult:
    """Outcome of aligning one (pattern, text) pair.

    Attributes:
        score: the edit distance (or heuristic distance for windowed/banded
            aligners whose band was exceeded).
        alignment: the full alignment, when traceback was requested.
        stats: dynamic execution profile.
        exact: True when the reported score is guaranteed optimal (full
            algorithms always; banded/windowed only when their heuristic
            region provably contained the optimal path).
        text_start / text_end: the text span the alignment covers.  For
            GLOBAL alignments this is the whole text; for PREFIX/INFIX
            modes the embedded :class:`Alignment` holds (and validates
            against) exactly ``text[text_start:text_end]``.
    """

    score: int
    alignment: Optional[Alignment]
    stats: KernelStats
    exact: bool = True
    text_start: int = 0
    text_end: Optional[int] = None

    @property
    def cigar(self) -> str:
        """CIGAR string of the alignment ('' when traceback was off)."""
        return self.alignment.cigar if self.alignment else ""


class Aligner(abc.ABC):
    """A pairwise sequence aligner.

    Subclasses set :attr:`name` to the label used in the paper's figures
    (e.g. ``"Full(GMX)"`` or ``"Banded(Edlib)"``).
    """

    #: Figure label of this aligner.
    name: str = "?"

    #: True when the aligner computes its DP matrix through a pluggable
    #: kernel backend (see :mod:`repro.align.backends`) and accepts a
    #: ``backend=`` constructor argument.
    supports_backend: bool = False

    def with_backend(self, backend) -> "Aligner":
        """A fresh copy of this aligner configured with ``backend``.

        ``backend`` is a registered backend name, a
        :class:`~repro.align.backends.KernelBackend` instance, or ``None``
        for the environment/default selection.  Aligners without a
        pluggable kernel (the software baselines) refuse, so batch-level
        backend selection fails loudly instead of silently running the
        wrong engine.

        Raises:
            AlignerError: this aligner has no pluggable kernel backend.
        """
        raise AlignerError(
            f"{type(self).__name__} does not support kernel backends"
        )

    @abc.abstractmethod
    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        """Align ``pattern`` (rows) against ``text`` (columns).

        Args:
            traceback: when False, only the distance is computed, which for
                most kernels reduces memory footprint dramatically.
        """

    def distance(self, pattern: str, text: str) -> int:
        """Convenience wrapper returning only the score."""
        return self.align(pattern, text, traceback=False).score


class AlignerError(RuntimeError):
    """Raised when an aligner cannot produce a result (e.g. band exceeded)."""


class BandExceededError(AlignerError):
    """A banded kernel's traceback left the computed band; retry wider.

    Shared by every banded aligner (``Banded(GMX)`` and ``Banded(Edlib)``)
    so retry policy — the resilience engine's, or a caller's — can match
    band overflow with a single ``except`` clause regardless of which
    kernel raised it.
    """


@dataclass
class ResilienceCounters:
    """Fault/recovery accounting of one batch run.

    Populated by :mod:`repro.resilience` (and, for the picklability
    fallback, by :mod:`repro.align.parallel`).  Every counter is a simple
    sum, so merging campaign shards or reading a checkpoint journal can
    accumulate records without ordering concerns.

    Attributes:
        faults_injected: faults armed by a :class:`~repro.resilience.FaultPlan`.
        faults_detected: injected or organic faults the engine observed
            (crash, timeout, cross-check mismatch, verifier diagnostic,
            checksum mismatch, malformed data).
        retries: shard attempts re-executed after a detected fault.
        timeouts: shard attempts cancelled at their deadline.
        crashes: shard attempts that died (worker exception or exit).
        cross_check_mismatches: pairs where the baseline cross-check or the
            program verifier disagreed with the primary aligner.
        data_faults: pairs whose in-flight records failed the checksum or
            were structurally malformed.
        slow_shards: shards that finished but breached the slow threshold.
        bisections: shards split in half to isolate a poison pair.
        fallbacks: pairs answered by the degraded baseline aligner.
        quarantined_pairs: pairs excluded from the result after the whole
            degradation chain failed.
        checkpoints_written: journal flushes performed.
        shards_resumed: shards restored from a checkpoint journal.
    """

    faults_injected: int = 0
    faults_detected: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    cross_check_mismatches: int = 0
    data_faults: int = 0
    slow_shards: int = 0
    bisections: int = 0
    fallbacks: int = 0
    quarantined_pairs: int = 0
    checkpoints_written: int = 0
    shards_resumed: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form for JSON artifacts and journal headers."""
        return {
            "faults_injected": self.faults_injected,
            "faults_detected": self.faults_detected,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "cross_check_mismatches": self.cross_check_mismatches,
            "data_faults": self.data_faults,
            "slow_shards": self.slow_shards,
            "bisections": self.bisections,
            "fallbacks": self.fallbacks,
            "quarantined_pairs": self.quarantined_pairs,
            "checkpoints_written": self.checkpoints_written,
            "shards_resumed": self.shards_resumed,
        }
