"""Kernel backend registry: interchangeable tile-matrix compute engines.

The GMX aligners (:class:`~repro.align.full_gmx.FullGmxAligner`,
:class:`~repro.align.banded_gmx.BandedGmxAligner` and everything layered on
top of them) separate *what* the DP-matrix phase produces — the tile edge
images ``M[i][j] = (ΔV_out, ΔH_out)`` plus the bottom-row ΔH stream — from
*how* it is computed.  A :class:`KernelBackend` owns the "how":

``pure``
    The reference engine: one ISA tile instruction per tile, exactly the
    loop the paper's Algorithm 1 describes.  Every ``gmx.v``/``gmx.h`` is
    an individually retired instruction, so IsaEvent traces and the
    ISA-level fault hook see each tile in flight.
``bitpar``
    The fast engine: the whole pattern is held in one Python
    arbitrary-precision-integer bitvector pair (Pv, Mv) and each text
    character advances *all* tile rows with a single Myers/Hyyrö column
    step (:func:`repro.core.tile.advance_column`) — O(1) big-int ops per
    column instead of O(tiles) tile instructions of O(T) Python work.
    Tile edge images are extracted from the bitvectors only where the
    matrix is stored, so scores, CIGARs and :class:`KernelStats` are
    byte-identical to ``pure`` (block-equivalence of the Myers recurrence:
    both engines compute the unique Δ values of the same DP matrix).
``numpy``
    ``bitpar`` with the match-mask (Peq) table built through NumPy's
    vectorised byte compare + ``packbits``; registered only when NumPy is
    importable.

Selection order (first match wins):

1. an explicit ``backend=`` argument to :func:`repro.align.align_batch`,
2. the aligner's own ``backend=`` constructor argument,
3. the ``REPRO_BACKEND`` environment variable,
4. the built-in default, ``pure``.

Backends that batch their retired-instruction accounting cannot feed the
per-instruction observers, so :func:`effective_backend` silently degrades
to ``pure`` whenever an ISA trace is being recorded or a fault-injection
hook is armed — the program verifier and the chaos campaigns always see
the reference engine, and fault-injected results stay bit-identical
across backends.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..core.bitvec import mask, unpack_deltas
from ..core.isa import GmxIsa
from ..core.tile import advance_column, build_peq
from .base import KernelStats

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "BackendError",
    "BackendSpec",
    "BandedMatrixRequest",
    "BandedMatrixResult",
    "BitparTileBackend",
    "FullMatrixRequest",
    "FullMatrixResult",
    "KernelBackend",
    "NumpyTileBackend",
    "PureTileBackend",
    "backend_names",
    "backend_specs",
    "effective_backend",
    "get_backend",
    "is_available",
    "register_backend",
]

#: Environment variable naming the session-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

#: The built-in default: the reference tile-instruction engine.
DEFAULT_BACKEND = "pure"


class BackendError(ValueError):
    """Raised for unknown, unavailable, or misused kernel backends."""


def _edge_bytes(tile_size: int) -> int:
    """Bytes per stored tile edge register (2T bits; 8 bytes at T = 32)."""
    return (2 * tile_size + 7) // 8


# ---------------------------------------------------------------------------
# Requests and results: the aligner <-> backend contract.
# ---------------------------------------------------------------------------


@dataclass
class FullMatrixRequest:
    """Inputs of a Full(GMX) DP-matrix phase.

    Attributes:
        isa: the ISA instance whose retired counters the phase feeds.
        stats: the kernel-stats record the phase feeds.
        pattern: full pattern (rows).
        p_chunks / t_chunks: tile-size chunks of pattern and text.
        tile_size: T.
        top_fill: top-boundary ΔH fill value (+1, or 0 for INFIX mode).
        fused: retire ``gmx.vh`` instead of the ``gmx.v``/``gmx.h`` pair.
        store_matrix: store tile edge images for traceback.
        boundary_v / boundary_h: packed boundary edge images per chunk.
    """

    isa: GmxIsa
    stats: KernelStats
    pattern: str
    p_chunks: List[str]
    t_chunks: List[str]
    tile_size: int
    top_fill: int
    fused: bool
    store_matrix: bool
    boundary_v: List[int]
    boundary_h: List[int]


@dataclass
class FullMatrixResult:
    """Outputs of a Full(GMX) DP-matrix phase.

    Attributes:
        matrix: ``M[i][j] = (ΔV_out, ΔH_out)`` images (None when the
            request did not store the matrix).
        bottom_deltas: ΔH values along the bottom matrix row, one per
            text column.
    """

    matrix: Optional[List[List[Tuple[int, int]]]]
    bottom_deltas: List[int]


@dataclass
class BandedMatrixRequest:
    """Inputs of a Banded(GMX) band pass (one fixed band width).

    Attributes are as in :class:`FullMatrixRequest` plus:
        tile_band: band half-width in tile units.
        plus_fill_v / plus_fill_h: packed +1-fill images for edges entering
            the band from uncomputed neighbours.
    """

    isa: GmxIsa
    stats: KernelStats
    pattern: str
    p_chunks: List[str]
    t_chunks: List[str]
    tile_size: int
    tile_band: int
    store_matrix: bool
    boundary_v: List[int]
    boundary_h: List[int]
    plus_fill_v: List[int]
    plus_fill_h: List[int]


@dataclass
class BandedMatrixResult:
    """Outputs of a Banded(GMX) band pass.

    Attributes:
        matrix: in-band tile edge images keyed by (tile_row, tile_col)
            (empty when the request did not store the matrix).
        bottoms: per tile column, the packed ΔH image of the lowest
            in-band tile's bottom edge (the band-bottom score stream).
    """

    matrix: Dict[Tuple[int, int], Tuple[int, int]]
    bottoms: List[int]


# ---------------------------------------------------------------------------
# Backend interface.
# ---------------------------------------------------------------------------


class KernelBackend(abc.ABC):
    """One way of computing the GMX tile DP matrix.

    Backends are stateless singletons shared across aligners and pickled
    into pool workers; all per-alignment state lives in the request.
    """

    #: Registry name (also the CLI / env spelling).
    name: str = "?"

    #: True when the backend retires each ISA instruction individually, so
    #: IsaEvent traces and fault hooks observe every tile in flight.  Only
    #: such backends may run under tracing or fault injection (see
    #: :func:`effective_backend`).
    observes_isa: bool = False

    @abc.abstractmethod
    def full_matrix(self, request: FullMatrixRequest) -> FullMatrixResult:
        """Compute the full DP matrix phase of Full(GMX)."""

    @abc.abstractmethod
    def banded_matrix(self, request: BandedMatrixRequest) -> BandedMatrixResult:
        """Compute one band pass of Banded(GMX)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


# ---------------------------------------------------------------------------
# pure: the reference tile-instruction engine.
# ---------------------------------------------------------------------------


class PureTileBackend(KernelBackend):
    """Algorithm 1 exactly as written: one ISA tile instruction per tile.

    This is the seed repository's original loop, moved verbatim.  It is
    the only backend that retires instructions one at a time, which makes
    it the reference for traces, fault injection, and the differential
    suites.
    """

    name = "pure"
    observes_isa = True

    def full_matrix(self, request: FullMatrixRequest) -> FullMatrixResult:
        isa = request.isa
        stats = request.stats
        edge_bytes = _edge_bytes(request.tile_size)
        n_tiles = len(request.p_chunks)
        m_tiles = len(request.t_chunks)
        matrix: Optional[List[List[Tuple[int, int]]]] = None
        if request.store_matrix:
            matrix = [[(0, 0)] * m_tiles for _ in range(n_tiles)]
        bottom_deltas: List[int] = []
        dv_column = list(request.boundary_v)
        for j, text_chunk in enumerate(request.t_chunks):
            isa.csrw("gmx_text", text_chunk)
            stats.add_instr("int_alu", 2)
            stats.add_instr("branch", 1)
            dh_down = request.boundary_h[j]
            for i, pattern_chunk in enumerate(request.p_chunks):
                isa.csrw("gmx_pattern", pattern_chunk)
                dv_in = dv_column[i]
                dh_in = dh_down
                if request.fused:
                    dv_out, dh_out = isa.gmx_vh(dv_in, dh_in)
                else:
                    dv_out = isa.gmx_v(dv_in, dh_in)
                    dh_out = isa.gmx_h(dv_in, dh_in)
                dv_column[i] = dv_out
                dh_down = dh_out
                if matrix is not None:
                    matrix[i][j] = (dv_out, dh_out)
                    stats.dp_bytes_written += 2 * edge_bytes
                    stats.add_instr("store", 2)
                stats.dp_bytes_read += 2 * edge_bytes
                stats.add_instr("load", 2)
                stats.add_instr("int_alu", 4)
                stats.add_instr("branch", 1)
                stats.dp_cells += len(pattern_chunk) * len(text_chunk)
                stats.tiles += 1
            bottom_deltas.extend(unpack_deltas(dh_down, len(text_chunk)))
            stats.add_instr("int_alu", 3)
        return FullMatrixResult(matrix=matrix, bottom_deltas=bottom_deltas)

    def banded_matrix(self, request: BandedMatrixRequest) -> BandedMatrixResult:
        isa = request.isa
        stats = request.stats
        edge_bytes = _edge_bytes(request.tile_size)
        n_tiles = len(request.p_chunks)
        bt = request.tile_band
        matrix: Dict[Tuple[int, int], Tuple[int, int]] = {}
        bottoms: List[int] = []
        dv_prev: Dict[int, int] = {}
        for tj, text_chunk in enumerate(request.t_chunks):
            lo = max(0, tj - bt)
            hi = min(n_tiles - 1, tj + bt)
            isa.csrw("gmx_text", text_chunk)
            stats.add_instr("int_alu", 3)
            stats.add_instr("branch", 1)
            dh_down = 0
            dv_cur: Dict[int, int] = {}
            for ti in range(lo, hi + 1):
                pattern_chunk = request.p_chunks[ti]
                isa.csrw("gmx_pattern", pattern_chunk)
                if tj == 0:
                    dv_in = request.boundary_v[ti]
                elif ti in dv_prev:
                    dv_in = dv_prev[ti]
                else:
                    dv_in = request.plus_fill_v[ti]
                if ti == lo:
                    if ti == 0:
                        dh_in = request.boundary_h[tj]
                    else:
                        dh_in = request.plus_fill_h[tj]
                else:
                    dh_in = dh_down
                dv_out = isa.gmx_v(dv_in, dh_in)
                dh_out = isa.gmx_h(dv_in, dh_in)
                dv_cur[ti] = dv_out
                dh_down = dh_out
                if request.store_matrix:
                    matrix[(ti, tj)] = (dv_out, dh_out)
                    stats.dp_bytes_written += 2 * edge_bytes
                    stats.add_instr("store", 2)
                stats.dp_bytes_read += 2 * edge_bytes
                stats.add_instr("load", 2)
                stats.add_instr("int_alu", 5)
                stats.add_instr("branch", 1)
                stats.dp_cells += len(pattern_chunk) * len(text_chunk)
                stats.tiles += 1
            dv_prev = dv_cur
            bottoms.append(dh_down)
            stats.add_instr("int_alu", 3)
        return BandedMatrixResult(matrix=matrix, bottoms=bottoms)


# ---------------------------------------------------------------------------
# bitpar: whole-pattern big-integer bitvectors.
# ---------------------------------------------------------------------------

#: Byte -> bit-doubled byte: bit k of the input moves to bit 2k (the even
#: "plus" lane of the 2-bit Δ encoding).  Interleaving a (Pv, Mv) bitmask
#: pair through this table is how bitpar materialises the packed Δ images
#: the traceback and the ISA expect.
_SPREAD8 = []
for _byte in range(256):
    _spread_value = 0
    for _bit in range(8):
        if _byte & (1 << _bit):
            _spread_value |= 1 << (2 * _bit)
    _SPREAD8.append(_spread_value)
del _byte, _bit, _spread_value


def _spread(value: int) -> int:
    """Spread bit k of ``value`` to bit 2k (arbitrary width)."""
    out = 0
    shift = 0
    while value:
        out |= _SPREAD8[value & 0xFF] << shift
        value >>= 8
        shift += 16
    return out


def _pack_pm(plus: int, minus: int) -> int:
    """Interleave (P, M) bitmasks into a packed 2-bit Δ register image."""
    return _spread(plus) | (_spread(minus) << 1)


class BitparTileBackend(KernelBackend):
    """Whole-pattern Myers/Hyyrö bitvector engine.

    One :func:`~repro.core.tile.advance_column` call advances every tile
    row at once: the (Pv, Mv) pair spans the entire pattern as one big
    integer, so each text character costs O(1) big-int operations instead
    of one Python-level tile loop per tile row.  Edge images for the
    traceback matrix are extracted from the bitvectors at tile-row
    boundaries; retired-instruction and stats accounting reproduces the
    ``pure`` recipes in bulk, so the two backends are indistinguishable
    downstream.
    """

    name = "bitpar"
    observes_isa = False

    # -- match-mask table ---------------------------------------------------

    def _whole_peq(self, pattern: str) -> Dict[str, int]:
        """Per-character equality bitmask over the *whole* pattern."""
        return build_peq(pattern)

    # -- full matrix --------------------------------------------------------

    def full_matrix(self, request: FullMatrixRequest) -> FullMatrixResult:
        tile = request.tile_size
        pattern = request.pattern
        n = len(pattern)
        p_chunks = request.p_chunks
        t_chunks = request.t_chunks
        n_tiles = len(p_chunks)
        m_tiles = len(t_chunks)
        store = request.store_matrix
        peq = self._whole_peq(pattern)
        # Global row index of each tile row's bottom row (ΔH tap points).
        row_ends = [min((i + 1) * tile, n) - 1 for i in range(n_tiles)]
        rows_per = [len(chunk) for chunk in p_chunks]
        pv = mask(n)  # left boundary: every ΔV is +1
        mv = 0
        matrix: Optional[List[List[Tuple[int, int]]]] = None
        if store:
            matrix = [[(0, 0)] * m_tiles for _ in range(n_tiles)]
        bottom_deltas: List[int] = []
        tile_range = range(n_tiles)
        for j, text_chunk in enumerate(t_chunks):
            cols = len(text_chunk)
            dh_images = [0] * n_tiles if store else None
            for c, text_char in enumerate(text_chunk):
                pv, mv, h_out, ph, mh = advance_column(
                    peq.get(text_char, 0), pv, mv, request.top_fill, n
                )
                bottom_deltas.append(h_out)
                if store:
                    plus_slot = 2 * c
                    minus_slot = plus_slot + 1
                    for i in tile_range:
                        end = row_ends[i]
                        dh_images[i] |= (
                            ((ph >> end) & 1) << plus_slot
                            | ((mh >> end) & 1) << minus_slot
                        )
            if store:
                for i in tile_range:
                    base = i * tile
                    seg_mask = mask(rows_per[i])
                    matrix[i][j] = (
                        _pack_pm((pv >> base) & seg_mask, (mv >> base) & seg_mask),
                        dh_images[i],
                    )
            self._account_full_column(request, n, n_tiles, cols)
        return FullMatrixResult(matrix=matrix, bottom_deltas=bottom_deltas)

    def _account_full_column(
        self, request: FullMatrixRequest, rows: int, n_tiles: int, cols: int
    ) -> None:
        """Retire one tile column's worth of the ``pure`` instruction recipe."""
        isa = request.isa
        stats = request.stats
        edge_bytes = _edge_bytes(request.tile_size)
        isa.retired["csrw"] += n_tiles + 1
        if request.fused:
            isa.retired["gmx.vh"] += n_tiles
        else:
            isa.retired["gmx.v"] += n_tiles
            isa.retired["gmx.h"] += n_tiles
        stats.add_instr("int_alu", 4 * n_tiles + 5)
        stats.add_instr("branch", n_tiles + 1)
        stats.add_instr("load", 2 * n_tiles)
        stats.dp_bytes_read += 2 * edge_bytes * n_tiles
        if request.store_matrix:
            stats.add_instr("store", 2 * n_tiles)
            stats.dp_bytes_written += 2 * edge_bytes * n_tiles
        stats.dp_cells += rows * cols
        stats.tiles += n_tiles

    # -- banded matrix ------------------------------------------------------

    def banded_matrix(self, request: BandedMatrixRequest) -> BandedMatrixResult:
        tile = request.tile_size
        pattern = request.pattern
        n = len(pattern)
        p_chunks = request.p_chunks
        t_chunks = request.t_chunks
        n_tiles = len(p_chunks)
        bt = request.tile_band
        store = request.store_matrix
        peq = self._whole_peq(pattern)
        # The +1 boundary and the +1 band fill coincide, and the band
        # interval of each tile row is contiguous, so initialising every
        # row to ΔV = +1 covers both the tj == 0 boundary and every later
        # band entry: a row's bits are untouched until its tile first
        # enters the band, and never read again after it leaves.
        pv = mask(n)
        mv = 0
        matrix: Dict[Tuple[int, int], Tuple[int, int]] = {}
        bottoms: List[int] = []
        for tj, text_chunk in enumerate(t_chunks):
            lo = max(0, tj - bt)
            hi = min(n_tiles - 1, tj + bt)
            lo_base = lo * tile
            hi_end = min((hi + 1) * tile, n)
            span = hi_end - lo_base
            span_mask = mask(span)
            seg_pv = (pv >> lo_base) & span_mask
            seg_mv = (mv >> lo_base) & span_mask
            dh_images: Dict[int, int] = {}
            bottom_image = 0
            for c, text_char in enumerate(text_chunk):
                peq_char = (peq.get(text_char, 0) >> lo_base) & span_mask
                # The band-top ΔH fill (boundary or +1 fill) is always +1.
                seg_pv, seg_mv, h_out, ph, mh = advance_column(
                    peq_char, seg_pv, seg_mv, 1, span
                )
                if h_out > 0:
                    bottom_image |= 1 << (2 * c)
                elif h_out < 0:
                    bottom_image |= 1 << (2 * c + 1)
                if store:
                    plus_slot = 2 * c
                    minus_slot = plus_slot + 1
                    for ti in range(lo, hi + 1):
                        end = min((ti + 1) * tile, n) - 1 - lo_base
                        dh_images[ti] = dh_images.get(ti, 0) | (
                            ((ph >> end) & 1) << plus_slot
                            | ((mh >> end) & 1) << minus_slot
                        )
            keep = ~(span_mask << lo_base)
            pv = (pv & keep) | (seg_pv << lo_base)
            mv = (mv & keep) | (seg_mv << lo_base)
            if store:
                for ti in range(lo, hi + 1):
                    base = ti * tile
                    seg_mask = mask(len(p_chunks[ti]))
                    matrix[(ti, tj)] = (
                        _pack_pm((pv >> base) & seg_mask, (mv >> base) & seg_mask),
                        dh_images[ti],
                    )
            bottoms.append(bottom_image)
            self._account_banded_column(request, span, hi - lo + 1, len(text_chunk))
        return BandedMatrixResult(matrix=matrix, bottoms=bottoms)

    def _account_banded_column(
        self, request: BandedMatrixRequest, rows: int, tiles: int, cols: int
    ) -> None:
        """Retire one band column's worth of the ``pure`` instruction recipe."""
        isa = request.isa
        stats = request.stats
        edge_bytes = _edge_bytes(request.tile_size)
        isa.retired["csrw"] += tiles + 1
        isa.retired["gmx.v"] += tiles
        isa.retired["gmx.h"] += tiles
        stats.add_instr("int_alu", 5 * tiles + 6)
        stats.add_instr("branch", tiles + 1)
        stats.add_instr("load", 2 * tiles)
        stats.dp_bytes_read += 2 * edge_bytes * tiles
        if request.store_matrix:
            stats.add_instr("store", 2 * tiles)
            stats.dp_bytes_written += 2 * edge_bytes * tiles
        stats.dp_cells += rows * cols
        stats.tiles += tiles


class NumpyTileBackend(BitparTileBackend):
    """``bitpar`` with a NumPy-vectorised match-mask (Peq) build.

    The column step itself stays in big-int land (Python integers beat
    ndarray bit-slicing for single carry-propagating adds); NumPy only
    accelerates the one O(n · alphabet) scan, via a vectorised byte
    compare + ``packbits``.  Registered only when NumPy is importable.
    """

    name = "numpy"
    observes_isa = False

    def __init__(self) -> None:
        if not _numpy_available():
            raise BackendError(
                "the 'numpy' backend requires NumPy, which is not installed"
            )

    def _whole_peq(self, pattern: str) -> Dict[str, int]:
        import numpy as np

        try:
            raw = pattern.encode("ascii")
        except UnicodeEncodeError:
            return build_peq(pattern)  # exotic alphabets: scalar fallback
        codes = np.frombuffer(raw, dtype=np.uint8)
        peq: Dict[str, int] = {}
        for char in dict.fromkeys(pattern):
            bits = np.packbits(codes == ord(char), bitorder="little")
            peq[char] = int.from_bytes(bits.tobytes(), "little")
        return peq


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendSpec:
    """Registry entry for one kernel backend.

    Attributes:
        name: registry / CLI / env spelling.
        factory: zero-argument constructor of the backend singleton.
        description: one-line summary for ``--help`` and the eval badge.
        requires: availability predicate (dependency probe); the backend
            is registered either way but only constructible when it
            returns True.
    """

    name: str
    factory: Callable[[], KernelBackend]
    description: str
    requires: Callable[[], bool]

    @property
    def available(self) -> bool:
        return self.requires()


_REGISTRY: Dict[str, BackendSpec] = {}
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    description: str = "",
    requires: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a kernel backend under ``name``.

    Raises:
        BackendError: if the name is already taken.
    """
    if name in _REGISTRY:
        raise BackendError(f"backend {name!r} is already registered")
    _REGISTRY[name] = BackendSpec(
        name=name,
        factory=factory,
        description=description,
        requires=requires if requires is not None else (lambda: True),
    )


def backend_specs() -> Tuple[BackendSpec, ...]:
    """Every registered backend spec, in registration order."""
    return tuple(_REGISTRY.values())


def backend_names(*, available_only: bool = True) -> Tuple[str, ...]:
    """Registered backend names, in registration order.

    Args:
        available_only: drop backends whose dependency probe fails.
    """
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if spec.available or not available_only
    )


def is_available(name: str) -> bool:
    """True when ``name`` is registered and its dependencies are present."""
    spec = _REGISTRY.get(name)
    return spec is not None and spec.available


def get_backend(
    backend: Union[None, str, KernelBackend] = None
) -> KernelBackend:
    """Resolve a backend selector to a backend instance.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and falls
    back to the built-in default; a string is looked up in the registry
    (instances are cached singletons); an instance passes through.

    Raises:
        BackendError: unknown name, or a registered backend whose
            dependencies are missing.
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    spec = _REGISTRY.get(backend)
    if spec is None:
        known = ", ".join(backend_names(available_only=False))
        raise BackendError(
            f"unknown kernel backend {backend!r} (registered: {known})"
        )
    if backend not in _INSTANCES:
        if not spec.available:
            raise BackendError(
                f"kernel backend {backend!r} is registered but unavailable "
                f"(missing dependency); available: {', '.join(backend_names())}"
            )
        # The sanitizer session pre-warms and then guards this dict.
        _INSTANCES[backend] = spec.factory()  # dsan: allow[REPRO009] singleton fill
    return _INSTANCES[backend]


def effective_backend(backend: KernelBackend, isa: GmxIsa) -> KernelBackend:
    """The backend actually used for one alignment on ``isa``.

    Backends that batch their accounting cannot feed per-instruction
    observers, so when an IsaEvent trace is being recorded or a fault
    hook is armed (instance or ambient) the reference ``pure`` engine
    takes over — verifier streams and injected faults behave identically
    regardless of the configured backend.
    """
    if backend.observes_isa:
        return backend
    if isa.trace is not None or isa._active_fault_hook() is not None:
        return get_backend(DEFAULT_BACKEND)
    return backend


register_backend(
    "pure",
    PureTileBackend,
    description="reference engine: one ISA tile instruction per tile",
)
register_backend(
    "bitpar",
    BitparTileBackend,
    description="whole-pattern big-integer Myers/Hyyrö bitvectors",
)
register_backend(
    "numpy",
    NumpyTileBackend,
    description="bitpar with a NumPy-vectorised match-mask build",
    requires=_numpy_available,
)
