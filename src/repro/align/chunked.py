"""Run-length CIGAR algebra for chunked alignment (the stream pipeline).

The chunked pipeline (:mod:`repro.stream`) stitches per-chunk alignments
into one chromosome-scale CIGAR.  Doing that on expanded op lists would
cost O(alignment) per edit; these helpers work on **run-length encoded**
operations — ``[("M", 8192), ("I", 1), ...]`` — so commits, trims, and
concatenations touch O(runs), not O(bases).

Two pieces of real algebra live here:

* :func:`trim_insertion_flanks` — converts a GLOBAL chunk alignment whose
  text is a reference *window* into the INFIX-style form the stitcher
  composes: leading/trailing ``I`` runs (text consumed before the first /
  after the last query base) become window offsets instead of alignment
  columns.
* :func:`canonicalize_ops` — a deterministic normal form for
  edit-distance alignments.  Co-optimal alignments differ only in
  tie-broken traceback choices (``CGAAAT`` vs ``CGAAT`` can delete any of
  the three ``A``\\ s); the normal form re-derives the alignment with a
  banded DP and a fixed traceback preference, so two alignments of the
  same pair and cost compare equal byte-for-byte.  The stream conformance
  harness canonicalises both the stitched alignment and the Hirschberg
  oracle before demanding identity.

Also exported: :func:`align_chunked`, the chunk-aware entry point that
forwards to :func:`repro.stream.stream_align` (import kept lazy — the
stream package builds on top of ``align``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.cigar import (
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
    AlignmentError,
)

#: One run-length encoded operation block.
Run = Tuple[str, int]

#: Largest banded-DP size (rows x band) canonicalisation will attempt.
#: The band half-width equals the alignment's cost, so only pathologically
#: divergent inputs hit this — callers should canonicalise windows, not
#: whole chromosomes.
CANONICAL_CELL_CAP = 1 << 24


def ops_to_runs(ops: Sequence[str]) -> List[Run]:
    """Run-length encode an expanded operation sequence."""
    runs: List[Run] = []
    for op in ops:
        if runs and runs[-1][0] == op:
            runs[-1] = (op, runs[-1][1] + 1)
        else:
            runs.append((op, 1))
    return runs


def runs_to_ops(runs: Sequence[Run]) -> List[str]:
    """Expand run-length encoded operations."""
    ops: List[str] = []
    for op, length in runs:
        ops.extend([op] * length)
    return ops


def runs_to_cigar(runs: Sequence[Run]) -> str:
    """CIGAR string of run-length encoded operations (no expansion)."""
    return "".join(f"{length}{op}" for op, length in runs if length)


def runs_consumed(runs: Sequence[Run]) -> Tuple[int, int]:
    """``(pattern, text)`` characters consumed by the runs."""
    pattern = 0
    text = 0
    for op, length in runs:
        if op in (OP_MATCH, OP_MISMATCH):
            pattern += length
            text += length
        elif op == OP_DELETION:
            pattern += length
        elif op == OP_INSERTION:
            text += length
        else:
            raise AlignmentError(f"unknown alignment operation {op!r}")
    return pattern, text


def append_run(runs: List[Run], op: str, length: int) -> None:
    """Append a run in place, coalescing with the tail run."""
    if length <= 0:
        return
    if runs and runs[-1][0] == op:
        runs[-1] = (op, runs[-1][1] + length)
    else:
        runs.append((op, length))


def extend_runs(dst: List[Run], src: Sequence[Run]) -> None:
    """Append ``src`` runs onto ``dst`` in place, coalescing the seam."""
    for op, length in src:
        append_run(dst, op, length)


def trim_insertion_flanks(
    ops: Sequence[str],
) -> Tuple[List[str], int, int]:
    """Strip leading/trailing ``I`` runs from a GLOBAL window alignment.

    A chunk aligner sees the query span against a reference *window*; text
    consumed before the first query base (leading ``I``) and after the
    last (trailing ``I``) is window slack, not alignment.  Returns
    ``(core_ops, leading, trailing)`` where ``leading``/``trailing`` count
    the stripped text characters — the caller folds them into the window
    offsets (INFIX semantics, like ``AlignmentResult.text_start/end``).
    """
    lo = 0
    hi = len(ops)
    while lo < hi and ops[lo] == OP_INSERTION:
        lo += 1
    while hi > lo and ops[hi - 1] == OP_INSERTION:
        hi -= 1
    return list(ops[lo:hi]), lo, len(ops) - hi


def canonicalize_ops(
    pattern: str, text: str, ops: Sequence[str]
) -> List[str]:
    """Deterministic normal form of an edit-distance alignment.

    Co-optimal alignments of the same pair differ only in tie-broken
    traceback choices — where a gap sits inside a repeat, whether a
    balanced ``I``/``D`` detour rides the diagonal as two mismatches,
    how a gap run splits around intervening matches.  Local rewrite
    rules cannot chase every such tie, so the normal form is derived
    globally: a banded edit-distance DP (half-width = the input
    alignment's cost, which bounds the diagonal excursion of every
    alignment at least as good) followed by a backward traceback with a
    fixed preference order — diagonal, then ``I``, then ``D``.  Every
    alignment of the pair with the same cost canonicalises to the same
    op list; diagonal columns are relabelled ``M``/``X`` from the
    characters.

    The input ops only supply the band (their cost) and are validated
    for consumption; if the input was not optimal within its own band,
    the returned alignment is strictly cheaper — callers comparing
    canonical forms must compare scores separately (the conformance
    harness does).

    Raises:
        AlignmentError: malformed input ops, or a band too large to
            canonicalise (cells beyond :data:`CANONICAL_CELL_CAP`).
    """
    runs = ops_to_runs(
        [op if op in (OP_DELETION, OP_INSERTION) else OP_MATCH for op in ops]
    )
    # Verify consumption up front so a malformed input fails loudly.
    consumed = runs_consumed(runs)
    if consumed != (len(pattern), len(text)):
        raise AlignmentError(
            f"ops consume {consumed}, sequences are "
            f"({len(pattern)}, {len(text)})"
        )
    n, m = len(pattern), len(text)
    # Input cost, with diagonal columns relabelled from the characters.
    cost = 0
    i = j = 0
    for op, length in runs:
        if op == OP_DELETION:
            cost += length
            i += length
        elif op == OP_INSERTION:
            cost += length
            j += length
        else:
            for _ in range(length):
                cost += pattern[i] != text[j]
                i += 1
                j += 1
    if cost == 0:
        return [OP_MATCH] * n
    if (n + 1) * (2 * cost + 1) > CANONICAL_CELL_CAP:
        raise AlignmentError(
            f"canonicalisation band too large: cost {cost} over "
            f"{n} rows exceeds CANONICAL_CELL_CAP"
        )
    # Banded prefix DP: rows[i][j - lo(i)] = D(i, j) for |i - j| <= cost.
    inf = cost + 1

    def lo(i: int) -> int:
        return max(0, i - cost)

    rows: List[List[int]] = [list(range(min(m, cost) + 1))]
    for i in range(1, n + 1):
        row_lo, row_hi = lo(i), min(m, i + cost)
        prev = rows[i - 1]
        prev_lo = lo(i - 1)
        row: List[int] = []
        for j in range(row_lo, row_hi + 1):
            best = inf
            if prev_lo <= j <= (i - 1) + cost and j <= m:
                up = prev[j - prev_lo] + 1  # D: consume pattern[i-1]
                if up < best:
                    best = up
            if j > 0 and prev_lo <= j - 1:
                diag = prev[j - 1 - prev_lo] + (pattern[i - 1] != text[j - 1])
                if diag < best:
                    best = diag
            if j > row_lo:
                left = row[-1] + 1  # I: consume text[j-1]
                if left < best:
                    best = left
            row.append(min(best, inf))
        rows.append(row)
    # Backward walk from (n, m), preferring diagonal, then I, then D:
    # ties resolve toward the fewest gap columns, gaps leftmost, and the
    # rightmost placement of a gap's covering diagonal run.
    out: List[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        here = rows[i][j - lo(i)]
        if i > 0 and j > 0 and lo(i - 1) <= j - 1 <= (i - 1) + cost:
            step = pattern[i - 1] != text[j - 1]
            if rows[i - 1][j - 1 - lo(i - 1)] + step == here:
                out.append(OP_MISMATCH if step else OP_MATCH)
                i -= 1
                j -= 1
                continue
        if j > 0 and j - 1 >= lo(i) and rows[i][j - 1 - lo(i)] + 1 == here:
            out.append(OP_INSERTION)
            j -= 1
            continue
        if i > 0 and lo(i - 1) <= j <= (i - 1) + cost:
            if rows[i - 1][j - lo(i - 1)] + 1 == here:
                out.append(OP_DELETION)
                i -= 1
                continue
        raise AlignmentError(
            "canonicalisation walk lost the optimal path "
            f"at ({i}, {j})"
        )  # pragma: no cover - the DP invariant guarantees a step
    out.reverse()
    return out


def _merge_runs(runs: Sequence[Run]) -> List[Run]:
    merged: List[Run] = []
    for op, length in runs:
        append_run(merged, op, length)
    return merged


def canonical_cigar(pattern: str, text: str, ops: Sequence[str]) -> str:
    """CIGAR of :func:`canonicalize_ops` (convenience for comparisons)."""
    return runs_to_cigar(ops_to_runs(canonicalize_ops(pattern, text, ops)))


def align_chunked(
    reference,
    query: str,
    **kwargs,
):
    """Chunk-aware alignment entry point (forwards to ``repro.stream``).

    ``reference`` may be a string or an iterable of blocks (e.g. from
    :func:`repro.workloads.seqio.iter_fasta_blocks`); all keyword
    arguments of :func:`repro.stream.stream_align` are accepted.  Lives
    here so ``repro.align`` exposes the full aligner surface; the heavy
    lifting is in :mod:`repro.stream`.
    """
    from ..stream import stream_align

    return stream_align(reference, query, **kwargs)
