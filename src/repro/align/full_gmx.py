"""Full(GMX): tile-wise computation of the entire DP matrix (paper §5.1).

Implements the paper's Algorithm 1 (DP-matrix computation) and Algorithm 2
(traceback) on top of the functional GMX ISA model.  The matrix ``M`` of tile
edge vectors — two 2T-bit register images per tile — is the *only* DP state
ever stored, a factor-T reduction over element-wise algorithms.

Besides the paper's global alignment, the aligner supports the PREFIX and
INFIX anchoring modes of :class:`~repro.align.base.AlignmentMode` — in
difference terms these only change the top-boundary ΔH fill (0 instead of
+1 for a free text prefix) and read the score as the minimum of the bottom
row, which Full(GMX) reconstructs from the bottom tile row's ΔH vectors.

Software instruction recipes (counted per dynamic iteration, mirroring the
RISC-V code the paper compiles):

* per tile (compute phase): 1 ``csrw`` (pattern chunk), 2 ``gmx`` ops,
  2 loads (input edges), 2 stores (output edges), 4 address/int ops,
  1 branch;
* per tile column: 1 ``csrw`` (text chunk), 2 loop-control ops, 1 branch,
  3 ops folding the bottom-row ΔH into the running score;
* per tile (traceback phase): 1 ``gmx.tb``, 3 ``csrr`` + 2 ``csrw``,
  2 loads, 6 int ops, 2 branches, and 2 stores dumping the raw encoded
  gmx_hi/gmx_lo alignment (operations stay 2-bit encoded in memory).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..core.bitvec import pack_deltas
from ..core.cigar import Alignment, OP_DELETION, OP_INSERTION, OP_MATCH, OP_MISMATCH
from ..core.isa import GmxIsa, encode_pos
from ..core.tile import DEFAULT_TILE_SIZE
from ..core.traceback import NextTile
from ..obs import runtime as obs
from .backends import (
    FullMatrixRequest,
    KernelBackend,
    effective_backend,
    get_backend,
)
from .base import Aligner, AlignmentMode, AlignmentResult, KernelStats


def _edge_bytes(tile_size: int) -> int:
    """Bytes per stored tile edge register (2T bits; 8 bytes at T = 32)."""
    return (2 * tile_size + 7) // 8


def _chunks(sequence: str, tile_size: int) -> List[str]:
    """Split a sequence into tile-size chunks (last chunk may be partial)."""
    return [
        sequence[k : k + tile_size] for k in range(0, len(sequence), tile_size)
    ]


class FullGmxAligner(Aligner):
    """Full-matrix aligner built on GMX tile instructions.

    Args:
        tile_size: T, the GMX tile dimension (32 in the paper's design).
        mode: alignment anchoring (GLOBAL / PREFIX / INFIX).
        fused: use the dual-destination ``gmx.vh`` variant the paper
            sketches for cores with two register write ports (§5) — one
            tile instruction instead of the gmx.v/gmx.h pair.
        trace_sink: when given, every ``align`` call appends its retired
            :class:`~repro.core.isa.IsaEvent` stream to this list — the
            input of the static program verifier (:mod:`repro.analysis`).
        backend: kernel backend computing the DP-matrix phase — a
            registered name, a :class:`~repro.align.backends.KernelBackend`
            instance, or ``None`` for the environment/default selection
            (see :mod:`repro.align.backends`).
    """

    name = "Full(GMX)"
    supports_backend = True

    def __init__(
        self,
        tile_size: int = DEFAULT_TILE_SIZE,
        mode: AlignmentMode = AlignmentMode.GLOBAL,
        *,
        fused: bool = False,
        trace_sink: Optional[List] = None,
        backend: Union[None, str, KernelBackend] = None,
    ):
        if tile_size < 2:
            raise ValueError(f"tile size must be at least 2, got {tile_size}")
        self.tile_size = tile_size
        self.mode = mode
        self.fused = fused
        self.trace_sink = trace_sink
        self.backend = get_backend(backend)

    def with_backend(
        self, backend: Union[None, str, KernelBackend]
    ) -> "FullGmxAligner":
        return FullGmxAligner(
            tile_size=self.tile_size,
            mode=self.mode,
            fused=self.fused,
            trace_sink=self.trace_sink,
            backend=backend,
        )

    def _fresh_isa(self) -> GmxIsa:
        """A new ISA instance, wired for trace recording when requested."""
        isa = GmxIsa(tile_size=self.tile_size)
        if self.trace_sink is not None:
            isa.trace = []
            self.trace_sink.append(isa.trace)
        return isa

    @obs.instrument_align("full_gmx")
    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        isa = self._fresh_isa()
        backend = effective_backend(self.backend, isa)
        stats = KernelStats()
        tile = self.tile_size
        edge_bytes = _edge_bytes(tile)
        p_chunks = _chunks(pattern, tile)
        t_chunks = _chunks(text, tile)
        n_tiles = len(p_chunks)
        m_tiles = len(t_chunks)

        boundary_v = [pack_deltas([1] * len(chunk)) for chunk in p_chunks]
        top_fill = 0 if self.mode is AlignmentMode.INFIX else 1
        boundary_h = [
            pack_deltas([top_fill] * len(chunk)) for chunk in t_chunks
        ]

        # ---- Algorithm 1: tile-wise DP-matrix computation (column-major) ----
        # The backend produces M[i][j] = (ΔV_out, ΔH_out) register images
        # plus the bottom-row ΔH stream; everything downstream (score,
        # traceback, stats folding) is backend-independent.
        with obs.span(
            "phase.compute",
            kernel="full_gmx",
            tiles=n_tiles * m_tiles,
            backend=backend.name,
        ):
            outcome = backend.full_matrix(
                FullMatrixRequest(
                    isa=isa,
                    stats=stats,
                    pattern=pattern,
                    p_chunks=p_chunks,
                    t_chunks=t_chunks,
                    tile_size=tile,
                    top_fill=top_fill,
                    fused=self.fused,
                    store_matrix=traceback,
                    boundary_v=boundary_v,
                    boundary_h=boundary_h,
                )
            )
        matrix = outcome.matrix
        bottom_deltas = outcome.bottom_deltas

        score, end_column = self._score(len(pattern), bottom_deltas)

        stats.hot_bytes = edge_bytes * (n_tiles + 1)
        if matrix is not None:
            stats.dp_bytes_peak = 2 * edge_bytes * n_tiles * m_tiles
        else:
            stats.dp_bytes_peak = stats.hot_bytes

        alignment = None
        start_column = 0
        if traceback:
            with obs.span("phase.traceback", kernel="full_gmx"):
                ops, start_column = self._traceback(
                    isa, stats, pattern, text, p_chunks, t_chunks, matrix,
                    boundary_v, boundary_h, end_column,
                )
            alignment = Alignment(
                pattern=pattern,
                text=text[start_column:end_column],
                ops=tuple(ops),
                score=score,
            )

        # Fold the ISA's retired counters into the stats record.
        stats.add_instr("csr", isa.retired["csrw"] + isa.retired["csrr"])
        stats.add_instr(
            "gmx",
            isa.retired["gmx.v"] + isa.retired["gmx.h"] + isa.retired["gmx.vh"],
        )
        stats.add_instr("gmx_tb", isa.retired["gmx.tb"])
        return AlignmentResult(
            score=score,
            alignment=alignment,
            stats=stats,
            exact=True,
            text_start=start_column,
            text_end=end_column,
        )

    def _score(
        self, pattern_length: int, bottom_deltas: List[int]
    ) -> Tuple[int, int]:
        """Score and end column from the bottom-row ΔH values.

        ``D[n][j] = n + Σ_{k ≤ j} Δh[n][k]``; GLOBAL reads the corner, the
        free-suffix modes take the (leftmost) bottom-row minimum — with
        ``j = 0`` (whole pattern deleted against an empty prefix) included.
        """
        value = pattern_length
        if self.mode is AlignmentMode.GLOBAL:
            for delta in bottom_deltas:
                value += delta
            return value, len(bottom_deltas)
        best = value
        best_column = 0
        for j, delta in enumerate(bottom_deltas, start=1):
            value += delta
            if value < best:
                best = value
                best_column = j
        return best, best_column

    def _traceback(
        self,
        isa: GmxIsa,
        stats: KernelStats,
        pattern: str,
        text: str,
        p_chunks: List[str],
        t_chunks: List[str],
        matrix: List[List[Tuple[int, int]]],
        boundary_v: List[int],
        boundary_h: List[int],
        end_column: int,
    ) -> Tuple[List[str], int]:
        """Algorithm 2: tile-wise traceback via ``gmx.tb``.

        Returns (ops, start column of the covered text span).
        """
        tile = self.tile_size
        edge_bytes = _edge_bytes(tile)
        gi = len(pattern) - 1  # global row of the walk position
        gj = end_column - 1  # global column of the walk position
        if gj < 0:
            # Whole pattern against an empty text prefix: pure deletions.
            return [OP_DELETION] * len(pattern), end_column
        ti = len(p_chunks) - 1
        tj = gj // tile
        isa.csrw("gmx_pos", encode_pos(tile - 1, gj % tile, tile))
        reversed_ops: List[str] = []
        while gi >= 0 and gj >= 0:
            isa.csrw("gmx_text", t_chunks[tj])
            isa.csrw("gmx_pattern", p_chunks[ti])
            dv_in = matrix[ti][tj - 1][0] if tj > 0 else boundary_v[ti]
            dh_in = matrix[ti - 1][tj][1] if ti > 0 else boundary_h[tj]
            result = isa.gmx_tb(dv_in, dh_in)
            isa.csrr("gmx_hi")
            isa.csrr("gmx_lo")
            isa.csrr("gmx_pos")
            stats.dp_bytes_read += 2 * edge_bytes
            stats.add_instr("load", 2)
            stats.add_instr("int_alu", 6)
            stats.add_instr("branch", 2)
            for op in result.ops:
                reversed_ops.append(op)
                if op in (OP_MATCH, OP_MISMATCH):
                    gi -= 1
                    gj -= 1
                elif op == OP_DELETION:
                    gi -= 1
                else:
                    gj -= 1
            # Algorithm 2 dumps the raw encoded alignment: two stores of
            # gmx_hi/gmx_lo per tile (the ops stay 2-bit encoded in memory).
            stats.add_instr("store", 2)
            stats.dp_bytes_written += 2 * edge_bytes
            if result.next_tile is NextTile.DIAGONAL:
                ti -= 1
                tj -= 1
            elif result.next_tile is NextTile.UP:
                ti -= 1
            else:
                tj -= 1
        # Finish along the matrix boundary.
        reversed_ops.extend([OP_DELETION] * (gi + 1))
        if self.mode is AlignmentMode.INFIX:
            start_column = gj + 1  # free text prefix: stop here
        else:
            reversed_ops.extend([OP_INSERTION] * (gj + 1))
            start_column = 0
        stats.add_instr("int_alu", 4)
        reversed_ops.reverse()
        return reversed_ops, start_column


def align_pair(
    pattern: str,
    text: str,
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
    mode: AlignmentMode = AlignmentMode.GLOBAL,
    traceback: bool = True,
    backend: Union[None, str, KernelBackend] = None,
) -> AlignmentResult:
    """Align one pair with Full(GMX) — the library's front door.

    Example::

        >>> align_pair("GCAT", "GATT").score
        2
    """
    return FullGmxAligner(tile_size=tile_size, mode=mode, backend=backend).align(
        pattern, text, traceback=traceback
    )
