"""Sharded parallel batch alignment (inter-sequence parallelism, §7.2).

The paper scales GMX across pairs, not within one alignment: 16 cores,
each with a private GMX unit, split a read set and meet only at the memory
controllers.  This module is the software analogue for the functional
harness — it partitions any pair iterable into shards, fans the shards out
over a ``multiprocessing`` pool, and merges per-shard results and
:class:`~repro.align.base.KernelStats` back in input order, so a parallel
run is observationally identical to :func:`repro.align.batch.align_batch`
run serially (same results, same stats, same ordering).

Three properties the engine guarantees:

* **Determinism** — results and merged stats are byte-identical for any
  worker count, including the in-process fallback.  Shards are merged in
  input order and every stat reduction is order-insensitive.
* **Streaming** — the input may be a generator (e.g.
  :func:`repro.workloads.seqio.iter_pairs`); shards are cut lazily with
  ``islice`` and the dataset is never materialised in the parent.
* **Graceful degradation** — ``workers=1``, a non-picklable aligner, or a
  platform without ``fork``/``spawn`` all fall back to a deterministic
  in-process execution of the same sharded code path.

Every run records a :class:`BatchTelemetry`: wall time, per-shard timings,
worker utilisation, and pairs/second.  These are *measured host* numbers —
they validate the shape of the paper's Figure-12 scaling claims (see
:func:`repro.sim.multicore.measured_scaling`) but never replace the
modelled cycle counts, which remain the source of all reported figures.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from ..analysis.sanitizer import runtime as dsan
from ..obs import runtime as obs
from .base import Aligner, AlignmentResult, KernelStats, ResilienceCounters
from .batch import BatchResult, PairLike, _as_pair

#: Pairs per shard when the caller does not choose (big enough to amortise
#: pickling/IPC, small enough to load-balance across a 16-worker pool).
DEFAULT_SHARD_SIZE = 16


@dataclass(frozen=True)
class ShardTelemetry:
    """Measured execution of one shard.

    Attributes:
        index: shard position in input order.
        pairs: pairs aligned by the shard.
        wall_seconds: shard execution time inside its worker.
        worker: executing worker label (``pid:<n>``, or ``inline``).
    """

    index: int
    pairs: int
    wall_seconds: float
    worker: str


@dataclass
class BatchTelemetry:
    """Measured execution profile of one batch-alignment run.

    Wall-clock here is *host measurement* — it characterises the harness's
    own parallel execution (the paper's inter-sequence parallelism made
    real), not the modelled hardware.  Modelled numbers stay with
    :meth:`~repro.align.batch.BatchResult.modelled_throughput`.

    Attributes:
        workers: worker processes requested (1 = in-process).
        shard_size: maximum pairs per shard.
        wall_seconds: end-to-end batch wall time in the parent.
        executor: how shards ran (``serial``, ``inline``, ``fork``,
            ``spawn``, ``forkserver``, or ``resilient-*`` variants).
        shards: per-shard measurements, in input order.
        fallback_reason: why a multi-worker run degraded to the in-process
            executor (e.g. the concrete pickling failure of the aligner);
            ``None`` when no fallback happened.
        resilience: fault/recovery accounting when the batch ran through
            :mod:`repro.resilience`; ``None`` for plain runs.
        backend: kernel backend name of the aligner (see
            :mod:`repro.align.backends`); ``None`` for aligners without a
            pluggable kernel.
    """

    workers: int
    shard_size: int
    wall_seconds: float = 0.0
    executor: str = "serial"
    shards: List[ShardTelemetry] = field(default_factory=list)
    fallback_reason: Optional[str] = None
    resilience: Optional[ResilienceCounters] = None
    backend: Optional[str] = None

    @property
    def shard_count(self) -> int:
        """Number of shards executed."""
        return len(self.shards)

    @property
    def pairs(self) -> int:
        """Total pairs across all shards."""
        return sum(shard.pairs for shard in self.shards)

    @property
    def pairs_per_second(self) -> float:
        """Measured end-to-end pairs/second, total on every input.

        0.0 for an empty batch; ``inf`` for a non-empty batch whose wall
        time measured as zero (clock granularity on an instant batch) —
        never a ``ZeroDivisionError``.
        """
        if not self.pairs:
            return 0.0
        if self.wall_seconds <= 0:
            return float("inf")
        return self.pairs / self.wall_seconds

    @property
    def busy_seconds(self) -> float:
        """Total worker-occupied time summed over shards."""
        return sum(shard.wall_seconds for shard in self.shards)

    @property
    def worker_utilization(self) -> float:
        """Fraction of the worker pool kept busy (busy / workers·wall).

        1.0 means perfect overlap; serial execution reports ~1.0 by
        construction; parallel runs lose utilisation to IPC, imbalance and
        pool startup.  0.0 for an empty batch.
        """
        if self.wall_seconds <= 0 or self.workers < 1:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))

    def speedup_vs(self, other: "BatchTelemetry") -> float:
        """Wall-clock speedup of this run relative to ``other``.

        Total on zero-time telemetry: two instant runs compare as 1.0, an
        instant run beats any timed run by ``inf``, and a timed run against
        an instant one reports 0.0 — no division by zero on any input.
        """
        if self.wall_seconds <= 0:
            return float("inf") if other.wall_seconds > 0 else 1.0
        return other.wall_seconds / self.wall_seconds


def iter_shards(
    pairs: Iterable[PairLike], shard_size: int
) -> Iterator[List[Tuple[str, str]]]:
    """Lazily cut a pair iterable into shards of normalised tuples.

    Consumes the input incrementally (``islice``), so generators and
    streaming readers are never materialised; each yielded shard holds
    plain ``(pattern, text)`` tuples, the cheapest payload to pickle.
    """
    if shard_size < 1:
        raise ValueError(f"shard size must be positive, got {shard_size}")
    iterator = iter(pairs)
    while True:
        shard = [
            _as_pair(item)
            for item in itertools.islice(iterator, shard_size)
        ]
        if not shard:
            return
        yield shard


#: A worker's observability freight: drained span dicts + metrics payload.
ObsBuffers = Tuple[List[dict], Optional[dict]]


def _run_shard_pairs(
    aligner: Aligner,
    shard: List[Tuple[str, str]],
    traceback: bool,
    validate: bool,
) -> Tuple[List[AlignmentResult], KernelStats]:
    results: List[AlignmentResult] = []
    with obs.span("shard.align", pairs=len(shard)):
        for pattern, text in shard:
            result = aligner.align(pattern, text, traceback=traceback)
            if validate and result.alignment is not None:
                result.alignment.validate()
            results.append(result)
    obs.inc("batch.shards")
    return results, KernelStats.merged(result.stats for result in results)


def _align_shard(
    payload: Tuple[Aligner, List[Tuple[str, str]], bool, bool, bool],
) -> Tuple[List[AlignmentResult], KernelStats, float, str, ObsBuffers]:
    """Worker body: align one shard and pre-merge its stats.

    Module-level so it pickles under every multiprocessing start method.
    The last payload element asks the worker to capture observability for
    an enabled parent: spans and metrics recorded during the shard come
    back as picklable buffers (see :meth:`repro.obs.SpanRecorder.drain`)
    and the parent absorbs them into its own trace.  When the shard runs
    in the parent process (inline/serial executors), recording already
    targets the parent's recorder and the buffers stay empty.
    """
    aligner, shard, traceback, validate, want_obs = payload
    start = time.perf_counter()
    buffers: ObsBuffers = ([], None)
    if want_obs and not obs.owns_recorder():
        with obs.capture() as (recorder, registry):
            results, stats = _run_shard_pairs(
                aligner, shard, traceback, validate
            )
        buffers = (recorder.drain(), registry.snapshot().to_dict())
    else:
        results, stats = _run_shard_pairs(aligner, shard, traceback, validate)
    elapsed = time.perf_counter() - start
    return results, stats, elapsed, f"pid:{os.getpid()}", buffers


def _pickling_failure(aligner: Aligner) -> Optional[str]:
    """Why ``aligner`` cannot ship to worker processes (None when it can).

    Only the concrete failures ``pickle.dumps`` raises on unpicklable
    objects are treated as "fall back inline": ``PicklingError`` (the
    documented failure), ``TypeError`` (lambdas, locks, open files), and
    ``AttributeError`` (local classes / lost module references).  Anything
    else — a crash inside ``__reduce__``, say — is a real bug and
    propagates to the caller instead of being silently swallowed.
    """
    try:
        pickle.dumps(aligner)
        return None
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        return f"{type(aligner).__name__} is not picklable: {exc}"


def _resolve_start_method(preferred: Optional[str]) -> Optional[str]:
    import multiprocessing

    available = multiprocessing.get_all_start_methods()
    if preferred is not None:
        if preferred not in available:
            raise ValueError(
                f"start method {preferred!r} unavailable (have {available})"
            )
        return preferred
    # fork is cheapest and inherits the aligner for free; spawn is the
    # portable fallback (macOS/Windows default).
    for method in ("fork", "spawn", "forkserver"):
        if method in available:
            return method
    return None


class PoolError(RuntimeError):
    """Raised on :class:`WorkerPool` lifecycle misuse (e.g. use after close)."""


class _InlineHandle:
    """Completed-on-construction stand-in for a pool ``AsyncResult``.

    Inline pools execute the work in the submitting thread; the handle
    then answers ``get``/``ready`` with the stored outcome, so callers
    drive both executors through one interface.
    """

    __slots__ = ("_value", "_error")

    def __init__(self, fn: Callable, payload) -> None:
        self._value = None
        self._error: Optional[BaseException] = None
        try:
            self._value = fn(payload)
        except Exception as exc:  # noqa: BLE001 - re-raised from get()
            self._error = exc

    def get(self, timeout: Optional[float] = None):
        if self._error is not None:
            raise self._error
        return self._value

    def ready(self) -> bool:
        return True


def _pool_worker_init() -> None:
    """Worker-process initializer: leave SIGINT to the parent.

    A foreground Ctrl-C is delivered to the whole process group; without
    this, every pool worker dies printing its own KeyboardInterrupt
    traceback while the parent is already running its orderly shutdown
    (which terminates the workers anyway).
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerPool:
    """A reusable worker-pool handle: create once, submit many, close once.

    This is the shared pool lifecycle behind both the one-shot batch API
    (:func:`align_batch_sharded` creates an ephemeral pool per call) and
    the long-lived alignment service (:mod:`repro.serve` creates one warm
    pool at startup and reuses it across requests).  The handle wraps a
    ``multiprocessing.Pool`` when a start method is available and degrades
    to a deterministic in-process executor otherwise (``workers=1``, or a
    platform without ``fork``/``spawn``).

    Lifecycle: :meth:`start` (optional — first submit warms lazily) →
    :meth:`submit`/:meth:`imap` → :meth:`rebuild` on suspected crashes →
    :meth:`close`.  ``generation`` counts pool (re)creations, so callers
    can tell a warm reuse from a rebuild.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._method = (
            _resolve_start_method(start_method) if workers > 1 else None
        )
        self._pool = None
        self._lock = threading.Lock()
        self.generation = 0
        self.rebuilds = 0
        self._closed = False

    @property
    def method(self) -> Optional[str]:
        """Multiprocessing start method (``None`` for the inline executor)."""
        return self._method

    @property
    def process_mode(self) -> bool:
        """True when shards run in worker processes (not inline)."""
        return self._method is not None

    @property
    def executor(self) -> str:
        """Executor label for :class:`BatchTelemetry` (method or inline)."""
        if self._method is not None:
            return self._method
        return "serial" if self.workers == 1 else "inline"

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_pool(self):
        if self._closed:
            raise PoolError("worker pool is closed")
        if self.process_mode and self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context(self._method)
            self._pool = context.Pool(
                processes=self.workers, initializer=_pool_worker_init
            )
            self.generation += 1
        return self._pool

    def start(self) -> "WorkerPool":
        """Warm the pool now (idempotent); returns self for chaining."""
        with self._lock:
            self._ensure_pool()
        return self

    def worker_pids(self) -> List[int]:
        """PIDs of the live worker processes (empty for inline pools)."""
        with self._lock:
            if self._pool is None:
                return []
            procs = getattr(self._pool, "_pool", None) or []
            return [proc.pid for proc in procs if proc.pid is not None]

    def submit(self, fn: Callable, payload):
        """Dispatch ``fn(payload)`` asynchronously; returns a result handle.

        The handle answers ``get(timeout)`` / ``ready()`` — a
        ``multiprocessing`` ``AsyncResult`` in process mode, an
        already-completed :class:`_InlineHandle` otherwise.  ``fn`` must be
        a module-level callable (it crosses the pickle boundary).
        """
        with self._lock:
            pool = self._ensure_pool()
        if pool is None:
            return _InlineHandle(fn, payload)
        return pool.apply_async(fn, (payload,))

    def imap(self, fn: Callable, payloads: Iterable) -> Iterator:
        """Ordered lazy map over the pool (inline: a plain generator)."""
        with self._lock:
            pool = self._ensure_pool()
        if pool is None:
            return map(fn, payloads)
        return pool.imap(fn, payloads)

    def rebuild(self) -> None:
        """Tear the current pool down and start a fresh one.

        The crash-recovery path: a worker killed mid-task loses that task
        forever (the pool replaces the process but the reply never comes),
        so supervisors detect the loss by deadline, rebuild the pool, and
        re-run the work.  In-flight handles of the old pool are abandoned.
        """
        with self._lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
                self.rebuilds += 1
            if not self._closed:
                self._ensure_pool()

    def close(self) -> None:
        """Shut the pool down (idempotent); further submits raise."""
        with self._lock:
            self._closed = True
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def align_batch_sharded(
    aligner: Aligner,
    pairs: Iterable[PairLike],
    *,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    traceback: bool = True,
    validate: bool = False,
    start_method: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
) -> BatchResult:
    """Align a batch across a sharded worker pool.

    Args:
        pairs: any iterable of pair-likes — lists, :class:`PairSet`,
            generators, :func:`~repro.workloads.seqio.iter_pairs` streams.
        workers: worker processes; ``None`` uses the host CPU count,
            ``1`` executes in-process (deterministic fallback).
        shard_size: pairs per shard (default ``DEFAULT_SHARD_SIZE``).
        traceback / validate: as in :func:`~repro.align.batch.align_batch`.
        start_method: force a multiprocessing start method (testing hook).
        pool: an existing warm :class:`WorkerPool` to reuse — the batch
            runs on it without paying pool spin-up and leaves it open for
            the next caller.  ``None`` (the one-shot path) creates an
            ephemeral pool for this batch and closes it afterwards.

    Returns:
        A :class:`~repro.align.batch.BatchResult` whose ``results``,
        ``stats`` and ordering are identical to a serial run, with
        :attr:`~repro.align.batch.BatchResult.telemetry` populated.
    """
    if workers is None:
        workers = pool.workers if pool is not None else (os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    shards = iter_shards(pairs, shard_size)

    batch = BatchResult()
    telemetry = BatchTelemetry(
        workers=workers,
        shard_size=shard_size,
        backend=getattr(getattr(aligner, "backend", None), "name", None),
    )
    start = time.perf_counter()

    pickling_failure = _pickling_failure(aligner) if workers > 1 else None
    use_pool = workers > 1 and pickling_failure is None
    if use_pool:
        if pool is not None:
            use_pool = pool.process_mode and not pool.closed
            method = pool.method
        else:
            method = _resolve_start_method(start_method)
            use_pool = method is not None
    token = dsan.batch_begin()
    try:
        with obs.span("batch.align", workers=workers):
            if use_pool:
                telemetry.executor = method
                _run_pool(
                    aligner, shards, workers, method, traceback, validate,
                    batch, telemetry, pool=pool,
                )
            else:
                telemetry.executor = "inline" if workers > 1 else "serial"
                telemetry.fallback_reason = pickling_failure
                for index, shard in enumerate(shards):
                    results, stats, seconds, _, _ = _align_shard(
                        (aligner, shard, traceback, validate, False)
                    )
                    _merge_shard(batch, telemetry, index, results, stats,
                                 seconds, worker="inline")
    finally:
        dsan.batch_end(token, "align_batch_sharded")
    obs.inc("batch.runs")
    obs.inc("batch.pairs", batch.pairs)

    telemetry.wall_seconds = time.perf_counter() - start
    batch.telemetry = telemetry
    return batch


def _run_pool(
    aligner: Aligner,
    shards: Iterator[List[Tuple[str, str]]],
    workers: int,
    method: str,
    traceback: bool,
    validate: bool,
    batch: BatchResult,
    telemetry: BatchTelemetry,
    pool: Optional[WorkerPool] = None,
) -> None:
    """Fan shards out over a pool; merge completions in input order.

    With ``pool=None`` an ephemeral :class:`WorkerPool` is created and
    closed around the batch (the historical one-shot behaviour); a caller
    pool is borrowed and left open — the warm-pool path the alignment
    service depends on.
    """
    owns_pool = pool is None
    if owns_pool:
        pool = WorkerPool(workers, start_method=method)
    payloads = (
        (aligner, shard, traceback, validate, obs.enabled())
        for shard in shards
    )
    try:
        # imap preserves submission order and consumes the payload
        # generator lazily, so streaming inputs stay streaming.
        for index, (results, stats, seconds, worker, buffers) in enumerate(
            pool.imap(_align_shard, payloads)
        ):
            _absorb_obs_buffers(buffers)
            _merge_shard(
                batch, telemetry, index, results, stats, seconds,
                worker=worker,
            )
    finally:
        if owns_pool:
            pool.close()


def _absorb_obs_buffers(buffers: ObsBuffers) -> None:
    """Merge a worker's drained spans/metrics into the parent's recorders."""
    span_buffer, metrics_payload = buffers
    if not obs.enabled():
        return
    if span_buffer:
        obs.recorder().absorb(span_buffer)
    if metrics_payload:
        from ..obs.metrics import snapshot_from_dict

        obs.metrics().absorb(snapshot_from_dict(metrics_payload))


def _merge_shard(
    batch: BatchResult,
    telemetry: BatchTelemetry,
    index: int,
    results: List[AlignmentResult],
    stats: KernelStats,
    seconds: float,
    *,
    worker: str,
) -> None:
    batch.results.extend(results)
    batch.stats.merge(stats)
    telemetry.shards.append(
        ShardTelemetry(
            index=index, pairs=len(results), wall_seconds=seconds,
            worker=worker,
        )
    )
