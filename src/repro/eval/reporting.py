"""Plain-text rendering of experiment results.

Every experiment in :mod:`repro.eval.experiments` returns structured rows
(lists of dicts); these helpers turn them into the aligned text tables the
benchmark harness prints — the reproduction's equivalent of the paper's
figures and tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float, bool, None]


def format_value(value: Cell) -> str:
    """Human-friendly cell formatting (SI-ish floats, stable ints)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        if abs(value) >= 100:
            return f"{value:,.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    rows: List[Dict[str, Cell]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Render rows as an aligned text table.

    Args:
        rows: list of homogeneous dicts.
        columns: column order; defaults to the first row's key order.
        title: optional heading printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    formatted = [
        [format_value(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in formatted))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def render_lint_badge(summary: Dict[str, int]) -> str:
    """One-line static-analysis badge for experiment reports.

    Args:
        summary: the ``summary`` block of ``repro lint --format json``
            (:func:`repro.analysis.summarize` output: total/errors/warnings).

    Returns:
        ``"lint: clean (0 diagnostics)"`` when nothing fired, otherwise a
        count breakdown — embedded in exported experiment artifacts so a
        report is traceable to the program-verifier state that produced it.
    """
    total = summary.get("total", 0)
    if total == 0:
        return "lint: clean (0 diagnostics)"
    errors = summary.get("errors", 0)
    warnings = summary.get("warnings", 0)
    return f"lint: {total} diagnostics ({errors} errors, {warnings} warnings)"


def render_sanitizer_badge(status: Dict[str, object]) -> str:
    """One-line concurrency/determinism badge for experiment reports.

    Args:
        status: the ``sanitizer`` block of an exported artifact
            (:func:`repro.eval.export._sanitizer_status` output).

    Returns:
        ``"sanitizer: clean (N worker-reachable fns, M batches guarded,
        shadow digests identical)"`` when the tree passes, otherwise a
        finding breakdown — embedded in exported artifacts so a report
        records that parallel execution was sanitized against races,
        hook leaks, and parallel-vs-serial divergence.
    """
    if status.get("clean"):
        return (
            f"sanitizer: clean ({status.get('worker_reachable', 0)} "
            f"worker-reachable fns, {status.get('batches_checked', 0)} "
            f"batches guarded, shadow digests identical)"
        )
    findings = status.get("findings", 0)
    dynamic = status.get("dynamic_errors", 0)
    mismatches = status.get("shadow_mismatches", 0)
    return (
        f"sanitizer: DIRTY ({findings} findings, {dynamic} runtime "
        f"violations, {mismatches} shadow mismatches)"
    )


def render_resilience_badge(report: Dict[str, object]) -> str:
    """One-line fault-tolerance badge for experiment reports.

    Args:
        report: a chaos :meth:`~repro.resilience.CampaignReport.to_dict`.

    Returns:
        ``"resilience: OK (N faults injected, output identical)"`` for a
        passing campaign, otherwise a failure breakdown — embedded in
        exported artifacts so a report records that the numbers came from
        an engine that demonstrably survives injected faults.
    """
    counters = report.get("counters", {})
    injected = counters.get("faults_injected", 0)
    if report.get("ok"):
        return (
            f"resilience: OK ({injected} faults injected, output identical)"
        )
    unaccounted = len(report.get("unaccounted", ()))
    identical = "identical" if report.get("identical") else "DIVERGED"
    return (
        f"resilience: FAILED ({injected} faults injected, output "
        f"{identical}, {unaccounted} unaccounted)"
    )


def render_observability_badge(status: Dict[str, object]) -> str:
    """One-line observability badge for experiment reports.

    Args:
        status: the ``observability`` block of an exported artifact
            (:func:`repro.eval.export._observability_status` output).

    Returns:
        ``"observability: N kernels instrumented (M pairs, K spans)"`` —
        embedded in exported artifacts so a report records that per-kernel
        metrics were captured live from the instrumented hot paths.
    """
    kernels = status.get("kernels", {})
    pairs = sum(
        entry.get("pairs", 0)
        for entry in kernels.values()
        if isinstance(entry, dict)
    )
    spans = status.get("spans", 0)
    return (
        f"observability: {len(kernels)} kernels instrumented "
        f"({pairs} pairs, {spans} spans)"
    )


def render_backends_badge(status: Dict[str, object]) -> str:
    """One-line kernel-backend badge for experiment reports.

    Args:
        status: the ``backends`` block of an exported artifact
            (:func:`repro.eval.export._backend_status` output).

    Returns:
        ``"backends: N registered (names), default 'pure', differential
        identical on K pairs"`` — embedded in exported artifacts so a
        report records which kernel engines exist and that the fast ones
        reproduce the reference bit-for-bit.
    """
    registered = status.get("registered", [])
    names = ", ".join(
        entry.get("name", "?")
        + ("" if entry.get("available", True) else " [unavailable]")
        for entry in registered
        if isinstance(entry, dict)
    )
    verdict = "identical" if status.get("identical") else "DIVERGENT"
    return (
        f"backends: {len(registered)} registered ({names}), "
        f"default {status.get('default')!r}, differential {verdict} "
        f"on {status.get('checked_pairs', 0)} pairs"
    )


def render_serving_badge(status: Dict[str, object]) -> str:
    """One-line serving-layer badge for experiment reports.

    Args:
        status: the ``serving`` block of an exported artifact
            (:func:`repro.eval.export._serving_status` output).

    Returns:
        ``"serving: OK (N pairs served identical to batch, replay 100%
        cached, hit_rate H)"`` when the coalesced/cached serving path
        reproduces the batch engine exactly, otherwise a divergence
        breakdown — embedded in exported artifacts so a report records
        that alignment-as-a-service returns the bytes the engine computes.
    """
    cache = status.get("cache", {})
    hit_rate = cache.get("hit_rate", 0.0) if isinstance(cache, dict) else 0.0
    if status.get("identical") and status.get("cache_identical"):
        return (
            f"serving: OK ({status.get('pairs', 0)} pairs served identical "
            f"to batch, replay 100% cached, hit_rate {hit_rate})"
        )
    first = "identical" if status.get("identical") else "DIVERGED"
    replay = "cached" if status.get("cache_identical") else "NOT cached"
    return (
        f"serving: FAILED (first pass {first}, replay {replay}, "
        f"hit_rate {hit_rate})"
    )


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio (0 when the denominator is 0)."""
    return numerator / denominator if denominator else 0.0


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 when empty)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for value in filtered:
        product *= value
    return product ** (1.0 / len(filtered))
