"""Run every experiment and export the results as one JSON artifact.

Reviewers (and regression tooling) want the full result set in one
machine-readable file; this module runs the complete table/figure harness
and serialises it.  Exposed on the CLI as
``python -m repro experiment all --json results.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from . import experiments

#: Experiment registry: name → zero-argument callable returning rows.
def _registry(quick: bool) -> Dict[str, object]:
    figure3_kwargs = (
        {"hifi_length": 600, "pairs": 4} if quick else {"hifi_length": 2_000}
    )
    return {
        "figure3": lambda: experiments.figure3(**figure3_kwargs),
        "figure10": experiments.figure10,
        "figure11": experiments.figure11,
        "figure12": experiments.figure12,
        "figure13": experiments.figure13,
        "figure14": experiments.figure14,
        "figure15": experiments.figure15,
        "table1": experiments.table1,
        "table2": experiments.table2,
        "scalability_1mbp": experiments.scalability_1mbp,
        "memory_footprint": experiments.memory_footprint_rows,
        "tile_costs": experiments.tile_cost_table,
        "energy": experiments.energy_table,
    }


def _lint_status(*, quick: bool) -> Dict[str, object]:
    """Static-analysis stamp embedded in every exported artifact.

    Runs the GMX program verifier over the aligners' retired streams plus
    the repo invariant lint, and condenses the result into the badge line
    reviewers see first (zero diagnostics ⇒ the numbers in the artifact
    came from instruction streams the verifier accepts).
    """
    from ..analysis import run_lint
    from .reporting import render_lint_badge

    report = run_lint(pairs=2 if quick else 4)
    summary_dict = report.to_dict()
    return {
        "badge": render_lint_badge(summary_dict["summary"]),
        "clean": report.clean,
        "summary": summary_dict["summary"],
        "programs_checked": report.programs_checked,
        "programs_clean": report.programs_clean,
        "diagnostics": summary_dict["diagnostics"],
    }


def _sanitizer_status(*, quick: bool) -> Dict[str, object]:
    """Concurrency/determinism stamp embedded in every exported artifact.

    Runs the sanitizer (:mod:`repro.analysis.sanitizer`): the static
    worker-reachability scan, a guarded batch execution, and shadow
    execution diffing parallel-vs-serial content digests.  The badge
    certifies the artifact's numbers came from engines that were
    sanitized against races, hook leaks, and executor divergence.
    """
    from ..analysis.sanitizer import run_sanitize
    from .reporting import render_sanitizer_badge

    report = run_sanitize(
        pairs=6 if quick else 12,
        workers=1 if quick else 2,
        sample=2 if quick else 3,
    )
    report_dict = report.to_dict()
    scan = report_dict.get("scan") or {}
    session = report_dict.get("session") or {}
    shadow = report_dict.get("shadow") or {}
    status: Dict[str, object] = {
        "clean": report.clean,
        "summary": report_dict["summary"],
        "worker_reachable": scan.get("worker_reachable", 0),
        "suppressed": len(scan.get("suppressed", ())),
        "batches_checked": session.get("batches_checked", 0),
        "shadow_sampled": len(shadow.get("sampled", ())),
        "shadow_clean": shadow.get("clean", True),
        "findings": len(report_dict["diagnostics"]),
        "dynamic_errors": len(report_dict["dynamic_errors"]),
        "shadow_mismatches": len(shadow.get("mismatches", ())),
    }
    status["badge"] = render_sanitizer_badge(status)
    return status


def _resilience_status(*, quick: bool) -> Dict[str, object]:
    """Fault-tolerance stamp embedded in every exported artifact.

    Runs a small seeded chaos campaign (inline executor — deterministic
    and pool-free, so the export works on any host) and condenses the
    verdict into a badge: the artifact's numbers came from a batch engine
    that survives injected hardware/worker/data faults byte-identically.
    """
    from ..resilience import run_campaign
    from .reporting import render_resilience_badge

    report = run_campaign(
        seed=7,
        faults=6 if quick else 25,
        pairs=8 if quick else None,
        length=48 if quick else 64,
        workers=1,
        shard_size=3 if quick else 4,
        shard_timeout=2.0,
    )
    report_dict = report.to_dict()
    return {
        "badge": render_resilience_badge(report_dict),
        "ok": report.ok,
        "identical": report.identical,
        "counters": report_dict["counters"],
        "unaccounted": report_dict["unaccounted"],
    }


def _observability_status(*, quick: bool) -> Dict[str, object]:
    """Per-kernel metrics stamp embedded in every exported artifact.

    Runs a small seeded batch through each GMX aligner under the
    observability layer (:mod:`repro.obs`) and condenses the live
    per-kernel counters/histograms into the artifact: pair/tile/traceback
    totals and wall-time histogram counts, captured from the same
    instrumented hot paths ``repro profile`` reports on.
    """
    from ..align import BandedGmxAligner, FullGmxAligner, WindowedGmxAligner
    from ..obs import runtime as obs
    from ..workloads.generator import generate_pair_set
    from .reporting import render_observability_badge

    pairs = 4 if quick else 16
    length = 96 if quick else 256
    pair_set = generate_pair_set("obs-stamp", length, 0.08, pairs, seed=11)
    aligners = [FullGmxAligner(), BandedGmxAligner(), WindowedGmxAligner()]
    with obs.capture() as (recorder, registry):
        for aligner in aligners:
            for pair in pair_set.pairs:
                aligner.align(pair.pattern, pair.text)
        snapshot = registry.snapshot()
        span_count = len(recorder)
    metrics = snapshot.to_dict()
    kernels: Dict[str, Dict[str, object]] = {}
    for name, value in metrics.get("counters", {}).items():
        if not name.startswith("align."):
            continue
        parts = name.split(".")
        if len(parts) != 3:
            continue
        _, kernel, field = parts
        kernels.setdefault(kernel, {})[field] = value
    for name, hist in metrics.get("histograms", {}).items():
        if name.startswith("kernel.") and name.endswith(".align_ns"):
            kernel = name.split(".")[1]
            kernels.setdefault(kernel, {})["align_ns"] = {
                "count": hist["count"],
                "mean_ns": (
                    hist["sum_ns"] // hist["count"] if hist["count"] else 0
                ),
            }
    status: Dict[str, object] = {
        "kernels": {name: kernels[name] for name in sorted(kernels)},
        "spans": span_count,
        "counters": metrics.get("counters", {}),
    }
    status["badge"] = render_observability_badge(status)
    return status


def _backend_status(*, quick: bool) -> Dict[str, object]:
    """Kernel-backend stamp embedded in every exported artifact.

    Lists the registered backends (with availability) and runs a seeded
    differential sweep: every available backend must reproduce the
    ``pure`` reference's scores and CIGARs bit-for-bit on a fresh pair
    set.  The badge certifies that whichever backend produced the
    artifact's numbers, they are the numbers.
    """
    from ..align import FullGmxAligner
    from ..align.backends import DEFAULT_BACKEND, backend_specs, get_backend
    from ..workloads.generator import generate_pair_set
    from .reporting import render_backends_badge

    pairs = 8 if quick else 32
    length = 96 if quick else 192
    pair_set = generate_pair_set("backend-stamp", length, 0.06, pairs, seed=13)
    reference = [
        FullGmxAligner(backend=DEFAULT_BACKEND).align(pair.pattern, pair.text)
        for pair in pair_set.pairs
    ]
    registered = []
    identical = True
    checked = []
    for spec in backend_specs():
        registered.append(
            {
                "name": spec.name,
                "description": spec.description,
                "available": spec.available,
            }
        )
        if not spec.available or spec.name == DEFAULT_BACKEND:
            continue
        aligner = FullGmxAligner(backend=spec.name)
        checked.append(spec.name)
        for pair, expected in zip(pair_set.pairs, reference):
            result = aligner.align(pair.pattern, pair.text)
            if (result.score, result.cigar) != (expected.score, expected.cigar):
                identical = False
    status: Dict[str, object] = {
        "registered": registered,
        "default": DEFAULT_BACKEND,
        "ambient": get_backend().name,  # honours $REPRO_BACKEND
        "checked": checked,
        "checked_pairs": pairs,
        "identical": identical,
    }
    status["badge"] = render_backends_badge(status)
    return status


def _serving_status(*, quick: bool) -> Dict[str, object]:
    """Serving-layer stamp embedded in every exported artifact.

    Boots an inline :class:`~repro.serve.AlignmentService` (pool-free, so
    the export works on any host), runs a seeded workload through the
    coalescer twice, and checks that (a) served results match the serial
    batch engine exactly and (b) the second pass is answered entirely by
    the content-addressed cache.  The badge certifies the serving path
    returns the same bytes the batch engine computes.
    """
    from ..align import FullGmxAligner
    from ..align.batch import align_batch
    from ..serve import AlignmentService, ServeConfig
    from ..workloads.generator import generate_pair_set
    from .reporting import render_serving_badge

    pairs = 6 if quick else 16
    length = 64 if quick else 150
    pair_set = generate_pair_set("serve-stamp", length, 0.06, pairs, seed=17)
    workload = [(pair.pattern, pair.text) for pair in pair_set]
    expected = [
        (r.score, r.cigar)
        for r in align_batch(FullGmxAligner(), workload).results
    ]
    config = ServeConfig(workers=1, coalesce_window=0.0)
    with AlignmentService(FullGmxAligner(), config=config) as service:
        first = service.align_pairs(workload)
        second = service.align_pairs(workload)
        snapshot = service.metrics_snapshot()
    identical = [(r.score, r.cigar) for r in first] == expected
    cached = all(r.cached for r in second) and (
        [(r.score, r.cigar) for r in second] == expected
    )
    status: Dict[str, object] = {
        "identical": identical,
        "cache_identical": cached,
        "pairs": pairs,
        "cache": snapshot["cache"],
        "coalescing": snapshot["coalescing"],
        "requests": snapshot["requests"],
    }
    status["badge"] = render_serving_badge(status)
    return status


def run_all(*, quick: bool = True) -> Dict[str, object]:
    """Execute every experiment; returns name → rows (or panel dict).

    Args:
        quick: shrink the functional Figure-3 run for fast turnaround.
    """
    results: Dict[str, object] = {}
    for name, runner in _registry(quick).items():
        results[name] = runner()
    # A small derived summary mirroring EXPERIMENTS.md's headline numbers.
    results["speedup_summary"] = experiments.speedup_summary(
        results["figure10"]
    )
    results["lint"] = _lint_status(quick=quick)
    results["sanitizer"] = _sanitizer_status(quick=quick)
    results["resilience"] = _resilience_status(quick=quick)
    results["observability"] = _observability_status(quick=quick)
    results["backends"] = _backend_status(quick=quick)
    results["serving"] = _serving_status(quick=quick)
    return results


def export_json(
    path: Union[str, Path], *, quick: bool = True, indent: int = 2
) -> Path:
    """Run everything and write the JSON artifact; returns the path."""
    path = Path(path)
    results = run_all(quick=quick)
    path.write_text(json.dumps(results, indent=indent, default=str) + "\n")
    return path
