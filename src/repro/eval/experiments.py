"""One entry point per table/figure of the paper's evaluation (§2.4, §7).

Each ``figureN()`` / ``tableN()`` function returns structured rows; the
benchmarks under ``benchmarks/`` print them via
:mod:`repro.eval.reporting` and assert the paper's qualitative claims.

Throughput numbers are *modelled* alignments/second: per-pair kernel
statistics (from the validated predictors of :mod:`repro.sim.cost_model`)
fed through the core/memory timing models — never Python wall-clock.
Accuracy numbers (Figure 3) come from real functional runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..align.base import KernelStats
from ..baselines.swg import AffinePenalties, affine_score, affine_score_banded
from ..baselines.edlib_like import EdlibAligner
from ..hw.energy import estimate_energy
from ..hw.floorplan import soc_report
from ..hw.frequency import design_point
from ..sim.accelerators import (
    DSA_OVERLAP,
    DSA_WINDOW,
    darwin_gact_model,
    genasm_vault_model,
    table2_rows,
)
from ..sim.core_model import estimate_kernel
from ..sim.cost_model import (
    expected_distance,
    predict_banded_gmx,
    predict_bpm,
    predict_darwin_gact,
    predict_edlib,
    predict_full_gmx,
    predict_genasm_cpu,
    predict_nw,
    predict_windowed_gmx,
)
from ..sim.multicore import measured_scaling, multicore_scaling
from ..sim.soc import (
    GEM5_INORDER,
    GEM5_OOO,
    MULTICORE_OOO,
    RTL_INORDER,
    RTL_INORDER_SOC_TABLE,
    SystemConfig,
)
from ..workloads.datasets import (
    LONG_ERROR,
    LONG_LENGTHS,
    SCALABILITY_ERROR,
    SCALABILITY_LENGTH,
    SHORT_ERROR,
    SHORT_LENGTHS,
    hifi_like,
    illumina_like,
)
from .reporting import geometric_mean

#: Dataset descriptors used by the throughput figures: (length, error rate).
SHORT_POINTS = tuple((length, SHORT_ERROR) for length in SHORT_LENGTHS)
LONG_POINTS = tuple((length, LONG_ERROR) for length in LONG_LENGTHS)


def _stats_for(label: str, n: int, m: int, error: float) -> KernelStats:
    """Per-pair predicted stats for one aligner label."""
    distance = expected_distance(n, error)
    if label == "Full(DP)":
        return predict_nw(n, m, traceback=True, distance=distance)
    if label == "Full(BPM)":
        return predict_bpm(n, m, traceback=True, distance=distance)
    if label == "Full(GMX)":
        return predict_full_gmx(n, m, traceback=True, distance=distance)
    if label == "Banded(Edlib)":
        return predict_edlib(n, m, traceback=True, distance=distance)
    if label == "Banded(GMX)":
        return predict_banded_gmx(n, m, traceback=True, distance=distance)
    if label == "Windowed(GenASM-CPU)":
        return predict_genasm_cpu(n, m, distance=distance)
    if label == "Windowed(GMX)":
        return predict_windowed_gmx(n, m, distance=distance)
    if label == "Darwin(GACT)":
        return predict_darwin_gact(n, m)
    raise ValueError(f"unknown aligner label {label!r}")


#: Aligners of the software throughput figures, in family order.
FIGURE10_ALIGNERS = (
    "Full(DP)",
    "Full(BPM)",
    "Full(GMX)",
    "Banded(Edlib)",
    "Banded(GMX)",
    "Windowed(GenASM-CPU)",
    "Windowed(GMX)",
)

#: GMX-accelerated implementation of each software family.
FAMILY_GMX = {
    "Full(DP)": "Full(GMX)",
    "Full(BPM)": "Full(GMX)",
    "Banded(Edlib)": "Banded(GMX)",
    "Windowed(GenASM-CPU)": "Windowed(GMX)",
}


def aligner_throughput(
    label: str, length: int, error: float, system: SystemConfig
) -> float:
    """Modelled alignments/second of one aligner on one dataset point."""
    stats = _stats_for(label, length, length, error)
    estimate = estimate_kernel(stats, system.core, system.memory)
    return 1.0 / estimate.seconds


def throughput_rows(
    system: SystemConfig,
    aligners: Sequence[str] = FIGURE10_ALIGNERS,
    points: Sequence = SHORT_POINTS + LONG_POINTS,
) -> List[Dict]:
    """Throughput of every aligner on every dataset point (Figures 10/14)."""
    rows = []
    for length, error in points:
        kind = "short" if error == SHORT_ERROR else "long"
        for label in aligners:
            rows.append(
                {
                    "dataset": f"{length}bp-{round(error * 100)}%",
                    "kind": kind,
                    "length": length,
                    "error": error,
                    "aligner": label,
                    "alignments_per_second": aligner_throughput(
                        label, length, error, system
                    ),
                }
            )
    return rows


def speedup_summary(rows: List[Dict]) -> List[Dict]:
    """Geomean GMX speedup per software family and dataset kind."""
    table: Dict[tuple, Dict[str, float]] = {}
    for row in rows:
        table.setdefault((row["dataset"], row["kind"]), {})[row["aligner"]] = row[
            "alignments_per_second"
        ]
    summary = []
    for baseline, gmx in FAMILY_GMX.items():
        for kind in ("short", "long"):
            ratios = [
                values[gmx] / values[baseline]
                for (_, k), values in table.items()
                if k == kind and baseline in values and gmx in values
            ]
            if ratios:
                summary.append(
                    {
                        "family": f"{gmx} vs {baseline}",
                        "kind": kind,
                        "geomean_speedup": geometric_mean(ratios),
                    }
                )
    return summary


# ---------------------------------------------------------------------------
# Figure 3: edit distance vs gap-affine speed/accuracy
# ---------------------------------------------------------------------------

def figure3(
    *,
    hifi_length: int = 2_000,
    pairs: int = 8,
    seed: int = 0,
    penalties: AffinePenalties = AffinePenalties(),
) -> List[Dict]:
    """Edit vs gap-affine trade-off on Illumina-like and HiFi-like data.

    For each method we report modelled throughput and the mean deviation of
    its alignment's gap-affine penalty from the optimal gap-affine penalty
    (0 for exact KSW2).  The paper's claim: on high-quality data, edit
    distance matches gap-affine accuracy while being much faster.
    """
    datasets = [
        illumina_like(count=pairs, seed=seed),
        hifi_like(length=hifi_length, count=max(2, pairs // 4), seed=seed),
    ]
    edlib = EdlibAligner()
    system = GEM5_OOO
    rows: List[Dict] = []
    for dataset in datasets:
        deviations = []
        banded_deviations = []
        band = max(64, round(0.05 * dataset.length))
        for pair in dataset:
            optimal = affine_score(pair.pattern, pair.text, penalties)
            result = edlib.align(pair.pattern, pair.text)
            deviations.append(
                result.alignment.affine_score(
                    match=penalties.match,
                    mismatch=penalties.mismatch,
                    gap_open=penalties.gap_open,
                    gap_extend=penalties.gap_extend,
                )
                - optimal
            )
            banded = affine_score_banded(
                pair.pattern, pair.text, band, penalties
            )
            banded_deviations.append(banded - optimal)
        n = dataset.length
        distance = expected_distance(n, dataset.error_rate)
        edit_stats = predict_edlib(n, n, traceback=True, distance=distance)
        affine_cells = n * n
        affine_stats = _affine_stats(affine_cells)
        banded_cells = n * (2 * band + 1)
        banded_stats = _affine_stats(banded_cells)
        for method, stats, deviation in (
            ("Edlib (edit)", edit_stats, _mean(deviations)),
            ("KSW2 (gap-affine)", affine_stats, 0.0),
            ("Banded KSW2", banded_stats, _mean(banded_deviations)),
        ):
            estimate = estimate_kernel(stats, system.core, system.memory)
            rows.append(
                {
                    "dataset": dataset.name,
                    "method": method,
                    "alignments_per_second": 1.0 / estimate.seconds,
                    "mean_affine_deviation": deviation,
                }
            )
    return rows


def _affine_stats(cells: int) -> KernelStats:
    """Instruction recipe of a KSW2-like gap-affine kernel over ``cells``."""
    stats = KernelStats()
    stats.dp_cells = cells
    stats.add_instr("int_alu", 12 * cells)
    stats.add_instr("load", 3 * cells)
    stats.add_instr("store", 3 * cells)
    stats.dp_bytes_written += 12 * cells
    stats.dp_bytes_read += 24 * cells
    stats.hot_bytes = 24 * int(cells**0.5 + 1)
    stats.dp_bytes_peak = 12 * cells
    return stats


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Figures 10/11/14: single-core throughput
# ---------------------------------------------------------------------------

def figure10() -> List[Dict]:
    """gem5-InOrder software-vs-GMX throughput (Figure 10)."""
    return throughput_rows(GEM5_INORDER)


def figure11() -> List[Dict]:
    """gem5-OoO vs gem5-InOrder speedup (Figure 11)."""
    rows = []
    for length, error in SHORT_POINTS + LONG_POINTS:
        for label in FIGURE10_ALIGNERS:
            inorder = aligner_throughput(label, length, error, GEM5_INORDER)
            ooo = aligner_throughput(label, length, error, GEM5_OOO)
            rows.append(
                {
                    "dataset": f"{length}bp-{round(error * 100)}%",
                    "aligner": label,
                    "inorder_aps": inorder,
                    "ooo_aps": ooo,
                    "ooo_speedup": ooo / inorder,
                }
            )
    return rows


def figure14() -> List[Dict]:
    """RTL-InOrder throughput (Figure 14) — Table-1 SoC, smaller caches."""
    return throughput_rows(RTL_INORDER)


# ---------------------------------------------------------------------------
# Figure 12: multicore scaling and bandwidth
# ---------------------------------------------------------------------------

FIGURE12_ALIGNERS = (
    "Full(BPM)",
    "Full(GMX)",
    "Banded(GMX)",
    "Windowed(GMX)",
)

FIGURE12_THREADS = (1, 2, 4, 8, 16)


def figure12(
    lengths: Sequence[int] = (1_000, 5_000, 10_000),
) -> Dict[str, List[Dict]]:
    """16-core scaling (top panel) and DDR4 bandwidth demand (bottom)."""
    system = MULTICORE_OOO
    scaling_rows = []
    bandwidth_rows = []
    for length in lengths:
        error = LONG_ERROR
        for label in FIGURE12_ALIGNERS:
            stats = _stats_for(label, length, length, error)
            points = multicore_scaling(
                stats, 1, length, length, system.core, system.memory,
                list(FIGURE12_THREADS),
            )
            for point in points:
                scaling_rows.append(
                    {
                        "aligner": label,
                        "length": length,
                        "threads": point.threads,
                        "speedup": point.speedup,
                    }
                )
            final = points[-1]
            bandwidth_rows.append(
                {
                    "aligner": label,
                    "length": length,
                    "threads": final.threads,
                    "bandwidth_gbs": final.bandwidth_gbs,
                    "utilization": final.utilization,
                }
            )
    return {"scaling": scaling_rows, "bandwidth": bandwidth_rows}


def figure12_functional(
    *,
    length: int = 120,
    error: float = SHORT_ERROR,
    pairs: int = 48,
    worker_counts: Sequence[int] = (1, 2, 4),
    seed: int = 0,
) -> List[Dict]:
    """Figure 12's inter-sequence decomposition, executed for real.

    The analytic :func:`figure12` models 16 cores; this harness backs the
    same decomposition with actual parallel execution — the sharded batch
    engine (:mod:`repro.align.parallel`) run at several worker counts on
    the host, with results verified identical to serial.  Each row pairs
    the *measured* wall-clock speedup with the *modelled* speedup at the
    same core count, so the modelled curve is anchored to a real parallel
    run rather than to a serial loop.

    Measured numbers depend on the host CPU count; modelled numbers do not.
    """
    from ..align.full_gmx import FullGmxAligner
    from ..workloads.generator import generate_pair_set

    dataset = generate_pair_set(
        f"fig12-live-{length}bp", length, error, pairs, seed=seed
    )
    measured = measured_scaling(
        FullGmxAligner(), dataset.pairs, worker_counts
    )
    distance = expected_distance(length, error)
    stats = predict_full_gmx(length, length, traceback=True, distance=distance)
    modelled = multicore_scaling(
        stats, 1, length, length,
        MULTICORE_OOO.core, MULTICORE_OOO.memory, list(worker_counts),
    )
    rows = []
    for real, model in zip(measured, modelled):
        rows.append(
            {
                "aligner": "Full(GMX)",
                "length": length,
                "pairs": pairs,
                "workers": real.workers,
                "measured_speedup": real.speedup,
                "measured_pairs_per_second": real.pairs_per_second,
                "worker_utilization": real.worker_utilization,
                "executor": real.executor,
                "modelled_speedup": model.speedup,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 13 / Table 1 / Table 2
# ---------------------------------------------------------------------------

def figure13(tile_size: int = 32) -> List[Dict]:
    """SoC area/power breakdown after P&R (Figure 13)."""
    report = soc_report(tile_size)
    rows = [
        {"component": name, "area_mm2": area}
        for name, area in report.component_areas().items()
    ]
    rows.append({"component": "TOTAL SoC", "area_mm2": report.soc_area})
    rows.append(
        {
            "component": "GMX total",
            "area_mm2": report.gmx_area,
            "area_fraction": report.gmx_area_fraction,
            "power_mw": report.gmx_power,
            "power_fraction": report.gmx_power_fraction,
        }
    )
    return rows


def table1() -> List[Dict]:
    """RTL-InOrder SoC configuration (Table 1)."""
    return [
        {"parameter": key, "value": value}
        for key, value in RTL_INORDER_SOC_TABLE.items()
    ]


def table2() -> List[Dict]:
    """Peak GCUPS per PE across accelerators (Table 2)."""
    rows = table2_rows()
    # Our modelled GMX design point should regenerate the GMX rows.
    point = design_point(32)
    rows.append(
        {
            "study": "GMX Unit (this model)",
            "device": "model",
            "pes": 1,
            "area_per_pe": round(point.area_mm2, 4),
            "pgcups_per_pe": point.peak_gcups,
            "gap_affine": False,
            "gcups_per_mm2": point.gcups_per_mm2,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Figure 15: DSA comparison
# ---------------------------------------------------------------------------

#: Area basis for throughput/area: one RTL core + GMX (§7.4, Table 2).
CORE_PLUS_GMX_AREA_MM2 = 1.24


def figure15(
    points: Sequence = SHORT_POINTS + LONG_POINTS,
) -> List[Dict]:
    """Per-PE throughput: GMX core vs GenASM vault vs Darwin GACT (Fig. 15)."""
    genasm = genasm_vault_model()
    darwin = darwin_gact_model()
    rows = []
    for length, error in points:
        distance = expected_distance(length, error)
        stats = predict_windowed_gmx(
            length, length, distance=distance,
            window=DSA_WINDOW, overlap=DSA_OVERLAP,
        )
        estimate = estimate_kernel(stats, RTL_INORDER.core, RTL_INORDER.memory)
        gmx_aps = 1.0 / estimate.seconds
        genasm_aps = genasm.alignments_per_second(length, error)
        darwin_aps = darwin.alignments_per_second(length, error)
        rows.append(
            {
                "dataset": f"{length}bp-{round(error * 100)}%",
                "gmx_aps": gmx_aps,
                "genasm_aps": genasm_aps,
                "darwin_aps": darwin_aps,
                "gmx_vs_genasm": gmx_aps / genasm_aps,
                "gmx_vs_darwin": gmx_aps / darwin_aps,
                "gmx_tpa_vs_genasm": (gmx_aps / CORE_PLUS_GMX_AREA_MM2)
                / (genasm_aps / genasm.area_mm2),
                "gmx_tpa_vs_darwin": (gmx_aps / CORE_PLUS_GMX_AREA_MM2)
                / (darwin_aps / darwin.area_mm2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# §7.3 / §4.2 / §3.1 text experiments
# ---------------------------------------------------------------------------

def scalability_1mbp(*, banded_band: int = 3_000) -> List[Dict]:
    """1 Mbp alignment on the RTL SoC (§7.3).

    Paper: Banded(GMX) 20 al/s, Windowed(GMX) 374 al/s, 1.58× the GenASM
    accelerator; Full(GMX) excluded (would need >10 GB on a 1 GB SoC).
    The banded run uses a fixed band (the §7.3 experiment is a heuristic
    configuration, not a distance-certified one).
    """
    n = SCALABILITY_LENGTH
    error = SCALABILITY_ERROR
    distance = expected_distance(n, error)
    rows = []
    banded = predict_banded_gmx(
        n, n, traceback=True, distance=distance, band=banded_band
    )
    windowed = predict_windowed_gmx(n, n, distance=distance)
    for label, stats in (("Banded(GMX)", banded), ("Windowed(GMX)", windowed)):
        estimate = estimate_kernel(stats, RTL_INORDER.core, RTL_INORDER.memory)
        rows.append(
            {
                "aligner": label,
                "alignments_per_second": 1.0 / estimate.seconds,
                "dp_footprint_mb": stats.dp_bytes_peak / 2**20,
            }
        )
    genasm_aps = genasm_vault_model().alignments_per_second(n, error)
    rows.append(
        {
            "aligner": "GenASM accelerator",
            "alignments_per_second": genasm_aps,
            "dp_footprint_mb": None,
        }
    )
    # Full(GMX) footprint, to reproduce the ">10 GB" exclusion argument.
    full = predict_full_gmx(n, n, traceback=True, distance=distance)
    rows.append(
        {
            "aligner": "Full(GMX) (excluded)",
            "alignments_per_second": None,
            "dp_footprint_mb": full.dp_bytes_peak / 2**20,
        }
    )
    return rows


def energy_table(
    length: int = 2_000, error: float = LONG_ERROR
) -> List[Dict]:
    """Energy per alignment across aligners (extension of §7.3's power data).

    Quantifies the paper's efficiency claim: the modelled nJ/alignment and
    GCUPS/W of each kernel on the RTL SoC, combining the per-class
    instruction energies with the cycle model's runtime (for static power).
    """
    rows = []
    for label in FIGURE10_ALIGNERS:
        stats = _stats_for(label, length, length, error)
        timing = estimate_kernel(stats, RTL_INORDER.core, RTL_INORDER.memory)
        energy = estimate_energy(stats, timing.cycles)
        rows.append(
            {
                "aligner": label,
                "nj_per_alignment": energy.nj_per_alignment,
                "pj_per_cell": energy.pj_per_cell,
                "gcups_per_watt": energy.gcups_per_watt,
            }
        )
    return rows


def tile_cost_table(tile_size: int = 32) -> List[Dict]:
    """§4.2 per-tile cost comparison (operations and stored bits)."""
    t = tile_size
    return [
        {
            "algorithm": "Classical DP",
            "ops_per_tile": 5 * t * t,
            "op_kind": "full-integer",
            "bits_per_tile": 32 * t * t,
        },
        {
            "algorithm": "Bitap",
            "ops_per_tile": 7 * t * t * t,
            "op_kind": "bitwise",
            "bits_per_tile": t * t * t,
        },
        {
            "algorithm": "BPM",
            "ops_per_tile": 17 * t * t,
            "op_kind": "bitwise",
            "bits_per_tile": 4 * t * t,
        },
        {
            "algorithm": "GMX-Tile",
            "ops_per_tile": 12 * t * t,
            "op_kind": "bitwise (in hardware)",
            "bits_per_tile": 4 * t,
        },
    ]


def memory_footprint_rows(
    length: int = 10_000, error_rate: float = 0.001, tile_size: int = 32
) -> List[Dict]:
    """§3.1 memory-footprint example (10 kbp, 0.1 % error).

    Paper: classical DP 381.4 MB, Bitap 119.2 MB, BPM 47.6 MB; GMX stores
    only tile edges — 8·n·m/T bits, a 16× reduction versus BPM at T = 32.
    """
    n = m = length
    k = max(1, round(error_rate * length))
    mib = float(2**20)
    dp = 4 * n * m / mib
    bitap = n * k * m / 8 / mib
    bpm = 4 * n * m / 8 / mib
    gmx = 8 * n * m / tile_size / 8 / mib
    return [
        {"algorithm": "Classical DP", "footprint_mib": dp},
        {"algorithm": "Bitap", "footprint_mib": bitap},
        {"algorithm": "BPM", "footprint_mib": bpm},
        {"algorithm": f"GMX (T={tile_size})", "footprint_mib": gmx,
         "reduction_vs_bpm": bpm / gmx},
    ]
