"""Command-line interface: ``python -m repro <command>``.

Five commands cover the library's workflows:

* ``align``      — align a pair (or a ``.seq`` file of pairs) with any
  implemented aligner and print score/CIGAR/stats;
* ``generate``   — produce a synthetic dataset in the WFA ``.seq`` format;
* ``experiment`` — regenerate one of the paper's tables/figures as text;
* ``design``     — print the GMX hardware design point for a tile size;
* ``verify``     — run the built-in cross-validation self-check (no pytest
  needed): random pairs through every exact aligner, ISA gate-level
  equivalence, and model-consistency spot checks; ``--strict`` adds the
  static program verifier and the repo invariant lint;
* ``lint``       — static analysis: the GMX program verifier over aligner
  instruction streams (or a binary program file) plus the repo-wide
  invariant lint; ``--format json``/``--format sarif`` emit
  machine-readable diagnostics;
* ``sanitize``   — the concurrency & determinism sanitizer
  (:mod:`repro.analysis.sanitizer`): worker-reachability lint
  (REPRO006–009), guarded batch execution with hook-leak detection, and
  shadow execution diffing parallel-vs-serial content digests;
  ``--corpus`` runs the seeded violation corpus (exits non-zero);
* ``chaos``      — run a seeded fault-injection campaign through the
  resilient batch engine (:mod:`repro.resilience`): the batch must come
  out byte-identical to a fault-free serial run with every injected
  fault accounted for; exits non-zero otherwise; ``--serve`` runs the
  serving-path drill instead (kill a pool worker mid-request; the
  request must still complete with the correct result); ``--dist``
  runs the distributed drill (node kill/hang/slow/partition faults
  across real localhost worker processes with exactly-once
  accounting);
* ``dist``       — distributed shard execution (:mod:`repro.dist`):
  ``dist worker`` runs one worker node (a warm pool behind HTTP),
  ``dist coordinator`` leases a batch's shards across nodes with
  heartbeats, lease-epoch fencing, and journal-backed exactly-once
  accounting;
* ``serve``      — run the alignment service (:mod:`repro.serve`): an
  HTTP server with a warm worker pool, request coalescing, a
  content-addressed result cache, and admission control
  (``POST /align``, ``GET /health``, ``GET /metrics``);
* ``bench``      — load-test a serving configuration and print/write
  latency percentiles, throughput, cache hit rate, and the
  warm-vs-cold pool comparison (``repro bench serve``);
* ``profile``    — run any other command under the observability layer
  (:mod:`repro.obs`) and print its per-kernel hot-path table; exports
  Chrome-trace JSON (``--trace``), profile JSON (``--json``), span JSON
  lines (``--jsonl``), and diffs two profile JSONs (``--diff``).

``align`` grows resilience knobs (``--max-retries``, ``--shard-timeout``,
``--checkpoint``, ``--cross-check``) that route batches through the
supervised executor instead of the plain sharded pool.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .align import (
    AlignmentMode,
    AutoAligner,
    BandedGmxAligner,
    FullGmxAligner,
    WindowedGmxAligner,
)
from .align.backends import backend_names
from .baselines import (
    BitapAligner,
    BpmAligner,
    DarwinGactAligner,
    EdlibAligner,
    GenasmCpuAligner,
    NeedlemanWunschAligner,
)

#: CLI name → aligner factory (mode/tile-size applied where supported).
ALIGNER_FACTORIES: Dict[str, Callable] = {
    "auto": lambda args: AutoAligner(tile_size=args.tile_size),
    "full-gmx": lambda args: FullGmxAligner(
        tile_size=args.tile_size,
        mode=AlignmentMode(args.mode),
        fused=getattr(args, "fused", False),
    ),
    "banded-gmx": lambda args: BandedGmxAligner(tile_size=args.tile_size),
    "windowed-gmx": lambda args: WindowedGmxAligner(tile_size=args.tile_size),
    "nw": lambda args: NeedlemanWunschAligner(mode=AlignmentMode(args.mode)),
    "bpm": lambda args: BpmAligner(),
    "edlib": lambda args: EdlibAligner(),
    "bitap": lambda args: BitapAligner(),
    "genasm": lambda args: GenasmCpuAligner(),
    "darwin": lambda args: DarwinGactAligner(),
}

#: Experiment name → harness callable (rows or dict of row lists).
def _experiments() -> Dict[str, Callable]:
    from . import eval as harness

    return {
        "fig3": harness.figure3,
        "fig10": harness.figure10,
        "fig11": harness.figure11,
        "fig12": harness.figure12,
        "fig12live": harness.figure12_functional,
        "fig13": harness.figure13,
        "fig14": harness.figure14,
        "fig15": harness.figure15,
        "table1": harness.table1,
        "table2": harness.table2,
        "1mbp": harness.scalability_1mbp,
        "memory": harness.memory_footprint_rows,
        "tilecost": harness.tile_cost_table,
        "energy": harness.energy_table,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMX (MICRO 2023) reproduction — alignment and models",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    align = commands.add_parser("align", help="align sequences")
    align.add_argument("pattern", nargs="?", help="pattern sequence")
    align.add_argument("text", nargs="?", help="text sequence")
    align.add_argument(
        "--pairs", metavar="FILE", help="align every pair of a .seq file"
    )
    align.add_argument(
        "--algorithm",
        choices=sorted(ALIGNER_FACTORIES),
        default="full-gmx",
    )
    align.add_argument(
        "--mode",
        choices=[mode.value for mode in AlignmentMode],
        default="global",
        help="anchoring mode (full-gmx and nw only)",
    )
    align.add_argument("--tile-size", type=int, default=32)
    align.add_argument(
        "--backend",
        choices=backend_names(available_only=False),
        default=None,
        help="kernel backend for the GMX aligners (default: "
        "$REPRO_BACKEND or 'pure'; see repro.align.backends)",
    )
    align.add_argument(
        "--fused",
        action="store_true",
        help="use the dual-destination gmx.vh tile instruction (full-gmx)",
    )
    align.add_argument(
        "--no-traceback", action="store_true", help="distance only"
    )
    align.add_argument(
        "--stats", action="store_true", help="print kernel statistics"
    )
    align.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="align --pairs batches over N worker processes (0 = all CPUs)",
    )
    align.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="PAIRS",
        help="pairs per shard for parallel batches",
    )
    align.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry failed shards up to N times (resilient executor)",
    )
    align.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline; late shards are killed and retried",
    )
    align.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="journal completed shards to FILE and resume from it",
    )
    align.add_argument(
        "--cross-check",
        action="store_true",
        help="independently verify every result (BPM score, alignment "
        "replay, program verifier)",
    )

    generate = commands.add_parser("generate", help="generate a dataset")
    generate.add_argument("--length", type=int, required=True)
    generate.add_argument("--error", type=float, default=0.05)
    generate.add_argument("--count", type=int, default=10)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", metavar="FILE", required=True)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "name", choices=sorted(_experiments()) + ["all"]
    )
    experiment.add_argument(
        "--json", metavar="FILE", help="write results as JSON (required for 'all')"
    )

    design = commands.add_parser("design", help="GMX hardware design point")
    design.add_argument("--tile-size", type=int, default=32)
    design.add_argument("--frequency", type=float, default=1.0, metavar="GHZ")

    verify = commands.add_parser(
        "verify", help="run the built-in correctness self-check"
    )
    verify.add_argument("--pairs", type=int, default=50, metavar="N")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--strict",
        action="store_true",
        help="also run the static program verifier and the repo lint",
    )

    lint = commands.add_parser(
        "lint", help="static analysis: program verifier + repo invariants"
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (sarif: GitHub code scanning)",
    )
    lint.add_argument(
        "--program",
        metavar="FILE",
        help="verify a binary GMX program (one hex word per line)",
    )
    lint.add_argument(
        "--corpus",
        action="store_true",
        help="verify the seeded malformed-program corpus (exits non-zero)",
    )
    lint.add_argument(
        "--skip-repo", action="store_true", help="skip the repo invariant lint"
    )
    lint.add_argument(
        "--skip-streams",
        action="store_true",
        help="skip verifying the aligners' retired instruction streams",
    )
    lint.add_argument("--seed", type=int, default=0)
    lint.add_argument(
        "--pairs",
        type=int,
        default=4,
        metavar="N",
        help="seeded pairs per aligner for the stream check",
    )
    lint.add_argument("--tile-size", type=int, default=32)
    lint.add_argument(
        "--single-port",
        action="store_true",
        help="verify against a single-register-write-port core (gmx.vh illegal)",
    )

    sanitize = commands.add_parser(
        "sanitize",
        help="concurrency & determinism sanitizer (dsan): reachability "
        "lint + guarded execution + shadow verification",
    )
    sanitize.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report output format (sarif: GitHub code scanning)",
    )
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument(
        "--corpus",
        action="store_true",
        help="run the seeded violation corpus (exits non-zero)",
    )
    sanitize.add_argument(
        "--skip-static",
        action="store_true",
        help="skip the worker-reachability scan",
    )
    sanitize.add_argument(
        "--skip-dynamic",
        action="store_true",
        help="skip guarded execution of the batch engines",
    )
    sanitize.add_argument(
        "--skip-shadow",
        action="store_true",
        help="skip shadow execution (serial re-run + digest diff)",
    )
    sanitize.add_argument(
        "--pairs", type=int, default=12, metavar="N",
        help="seeded pairs for the dynamic/shadow batches",
    )
    sanitize.add_argument("--workers", type=int, default=2)
    sanitize.add_argument(
        "--sample", type=int, default=3, metavar="N",
        help="shards re-executed serially by the shadow pass",
    )
    sanitize.add_argument("--tile-size", type=int, default=32)

    chaos = commands.add_parser(
        "chaos", help="seeded fault-injection campaign (must survive)"
    )
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument(
        "--faults", type=int, default=25, metavar="N",
        help="faults to inject across hardware/worker/data layers",
    )
    chaos.add_argument(
        "--pairs", type=int, default=None, metavar="N",
        help="batch size (default: max(16, faults))",
    )
    chaos.add_argument("--length", type=int, default=64)
    chaos.add_argument("--error", type=float, default=0.08)
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--shard-size", type=int, default=4)
    chaos.add_argument(
        "--shard-timeout", type=float, default=1.0, metavar="SECONDS"
    )
    chaos.add_argument("--max-retries", type=int, default=3)
    chaos.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="also exercise the checkpoint journal",
    )
    chaos.add_argument(
        "--json", metavar="FILE", help="write the campaign report as JSON"
    )
    chaos.add_argument(
        "--serve",
        action="store_true",
        help="serving-path drill: kill a warm-pool worker mid-request; "
        "every request must still complete with the correct result",
    )
    chaos.add_argument(
        "--dispatch-timeout", type=float, default=3.0, metavar="SECONDS",
        help="shard-loss detection deadline for the --serve drill",
    )
    chaos.add_argument(
        "--dist",
        action="store_true",
        help="distributed drill: node kill/hang/slow/partition faults "
        "across real localhost worker processes; the batch must complete "
        "byte-identical to serial with exactly-once accounting",
    )
    chaos.add_argument(
        "--nodes", type=int, default=3, metavar="N",
        help="worker-node processes for the --dist drill",
    )
    chaos.add_argument(
        "--node-workers", type=int, default=1, metavar="N",
        help="warm pool size inside each --dist node",
    )
    chaos.add_argument(
        "--lease-timeout", type=float, default=1.2, metavar="SECONDS",
        help="shard lease deadline for the --dist drill",
    )

    dist = commands.add_parser(
        "dist",
        help="distributed shard execution (repro.dist): worker/coordinator",
    )
    dist_commands = dist.add_subparsers(dest="dist_command", required=True)
    dist_worker = dist_commands.add_parser(
        "worker", help="run one worker node (warm pool behind HTTP)"
    )
    dist_worker.add_argument("--host", default="127.0.0.1")
    dist_worker.add_argument("--port", type=int, default=8876)
    dist_worker.add_argument(
        "--node", default=None, metavar="NAME",
        help="node name reported to the coordinator (default host:port)",
    )
    dist_worker.add_argument(
        "--incarnation", type=int, default=1, metavar="N",
        help="restart counter; bump on every supervisor respawn",
    )
    dist_worker.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="warm worker-pool size inside the node",
    )
    dist_worker.add_argument(
        "--algorithm",
        choices=sorted(ALIGNER_FACTORIES),
        default="full-gmx",
    )
    dist_worker.add_argument(
        "--mode",
        choices=[mode.value for mode in AlignmentMode],
        default="global",
    )
    dist_worker.add_argument("--tile-size", type=int, default=32)
    dist_worker.add_argument(
        "--fused", action="store_true",
        help="use the dual-destination gmx.vh tile instruction (full-gmx)",
    )
    dist_worker.add_argument(
        "--backend",
        choices=backend_names(available_only=False),
        default=None,
        help="kernel backend for the GMX aligners",
    )
    dist_coord = dist_commands.add_parser(
        "coordinator",
        help="lease a batch's shards across worker nodes and collect "
        "results with exactly-once accounting",
    )
    dist_coord.add_argument(
        "--node", action="append", required=True, metavar="URL",
        dest="node_urls",
        help="worker node base URL (repeat per node), e.g. "
        "http://127.0.0.1:8876",
    )
    dist_coord.add_argument(
        "--pairs", metavar="FILE", required=True,
        help="align every pair of a .seq/FASTA/FASTQ file",
    )
    dist_coord.add_argument(
        "--algorithm",
        choices=sorted(ALIGNER_FACTORIES),
        default="full-gmx",
    )
    dist_coord.add_argument(
        "--mode",
        choices=[mode.value for mode in AlignmentMode],
        default="global",
    )
    dist_coord.add_argument("--tile-size", type=int, default=32)
    dist_coord.add_argument(
        "--fused", action="store_true",
        help="use the dual-destination gmx.vh tile instruction (full-gmx)",
    )
    dist_coord.add_argument(
        "--backend",
        choices=backend_names(available_only=False),
        default=None,
        help="kernel backend for the GMX aligners",
    )
    dist_coord.add_argument(
        "--no-traceback", action="store_true", help="distance only"
    )
    dist_coord.add_argument(
        "--shard-size", type=int, default=None, metavar="PAIRS",
        help="pair cap per packed shard",
    )
    dist_coord.add_argument(
        "--lease-timeout", type=float, default=5.0, metavar="SECONDS",
        help="shard lease deadline before reassignment",
    )
    dist_coord.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="journal completed shards to FILE and resume from it",
    )
    dist_coord.add_argument(
        "--stats", action="store_true",
        help="print per-node and accounting statistics",
    )

    serve = commands.add_parser(
        "serve", help="run the alignment HTTP service (repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="warm worker-pool size (1 = inline execution)",
    )
    serve.add_argument(
        "--algorithm",
        choices=sorted(ALIGNER_FACTORIES),
        default="full-gmx",
    )
    serve.add_argument(
        "--mode",
        choices=[mode.value for mode in AlignmentMode],
        default="global",
    )
    serve.add_argument("--tile-size", type=int, default=32)
    serve.add_argument(
        "--fused", action="store_true",
        help="use the dual-destination gmx.vh tile instruction (full-gmx)",
    )
    serve.add_argument(
        "--backend",
        choices=backend_names(available_only=False),
        default=None,
        help="kernel backend for the GMX aligners",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096, metavar="ENTRIES",
        help="content-addressed result cache capacity (0 disables)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=256, metavar="PAIRS",
        help="admission limit; beyond it requests get 429 + Retry-After",
    )
    serve.add_argument(
        "--coalesce-window", type=float, default=2.0, metavar="MS",
        help="micro-batching window in milliseconds",
    )
    serve.add_argument(
        "--coalesce-max-pairs", type=int, default=16, metavar="PAIRS",
        help="dispatch a batch as soon as it holds this many pairs",
    )
    serve.add_argument(
        "--dispatch-timeout", type=float, default=30.0, metavar="SECONDS",
        help="shard deadline before the pool is declared lost and rebuilt",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0, metavar="RPS",
        help="per-client token-bucket rate limit in requests/second "
        "(keyed on the X-Client-Id header; 0 disables)",
    )
    serve.add_argument(
        "--rate-limit-burst", type=float, default=0.0, metavar="TOKENS",
        help="token-bucket burst capacity (0 picks a default)",
    )

    bench = commands.add_parser(
        "bench", help="load-test a subsystem and report latency/throughput"
    )
    bench.add_argument("target", choices=("serve",))
    bench.add_argument("--requests", type=int, default=300, metavar="N")
    bench.add_argument("--clients", type=int, default=8, metavar="N")
    bench.add_argument(
        "--unique", type=int, default=48, metavar="PAIRS",
        help="unique pairs in the request pool (repeats become cache hits)",
    )
    bench.add_argument("--length", type=int, default=150)
    bench.add_argument("--error", type=float, default=0.05)
    bench.add_argument("--seed", type=int, default=23)
    bench.add_argument("--workers", type=int, default=2)
    bench.add_argument(
        "--cache-size", type=int, default=4096, metavar="ENTRIES"
    )
    bench.add_argument(
        "--coalesce-window", type=float, default=2.0, metavar="MS"
    )
    bench.add_argument(
        "--json", metavar="FILE", help="write the bench report as JSON"
    )

    stream = commands.add_parser(
        "stream", help="chromosome-scale chunked alignment"
    )
    stream_commands = stream.add_subparsers(
        dest="stream_command", required=True
    )
    stream_align = stream_commands.add_parser(
        "align",
        help="align a query against a long reference, chunked and stitched",
    )
    stream_align.add_argument(
        "reference",
        help="reference: a literal sequence or a FASTA file path",
    )
    stream_align.add_argument(
        "query", help="query: a literal sequence or a FASTA file path"
    )
    stream_align.add_argument(
        "--record",
        metavar="NAME",
        default=None,
        help="FASTA record to stream from the reference (default: first)",
    )
    stream_align.add_argument("--chunk-size", type=int, default=4096)
    stream_align.add_argument("--overlap", type=int, default=512)
    stream_align.add_argument(
        "--engine",
        choices=("serial", "pool", "resilient"),
        default="serial",
        help="chunk-job execution engine (dist needs the Python API)",
    )
    stream_align.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (pool/resilient engines)",
    )
    stream_align.add_argument(
        "--shard-size", type=int, default=None, metavar="CHUNKS",
        help="chunk jobs per shard (default: planned from the cost model)",
    )
    stream_align.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="journal chunk shards to FILE and resume from it (resilient)",
    )
    stream_align.add_argument(
        "--verify-windows", type=int, default=0, metavar="N",
        help="oracle-check N random sub-windows against Hirschberg",
    )
    stream_align.add_argument(
        "--seed", type=int, default=0, help="window-verification seed"
    )
    stream_align.add_argument(
        "--cigar", action="store_true", help="print the full CIGAR"
    )
    stream_align.add_argument(
        "--json", metavar="FILE", help="write the stream report as JSON"
    )

    profile = commands.add_parser(
        "profile",
        help="run another command under tracing and print the hot-path table",
    )
    profile.add_argument(
        "--trace", metavar="FILE",
        help="write the merged Chrome-trace JSON (chrome://tracing, Perfetto)",
    )
    profile.add_argument(
        "--json", metavar="FILE",
        help="write the profile as JSON (input of --diff)",
    )
    profile.add_argument(
        "--jsonl", metavar="FILE",
        help="write raw spans as JSON lines",
    )
    profile.add_argument(
        "--diff", nargs=2, metavar=("BEFORE", "AFTER"),
        help="compare two --json profiles instead of running a command",
    )
    profile.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the printed table",
    )
    profile.add_argument(
        "wrapped", nargs=argparse.REMAINDER,
        help="the repro command to profile, after --",
    )

    return parser


def _cmd_align(args) -> int:
    import os

    from .align.batch import align_batch
    from .workloads.seqio import iter_pairs

    factory = ALIGNER_FACTORIES[args.algorithm]
    aligner = factory(args)
    if args.backend is not None:
        from .align import AlignerError
        from .align.backends import BackendError

        try:
            aligner = aligner.with_backend(args.backend)
        except (AlignerError, BackendError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    workers = args.workers
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        print(f"error: --workers must be >= 0, got {workers}", file=sys.stderr)
        return 2
    if args.shard_size is not None and args.shard_size < 1:
        print(
            f"error: --shard-size must be >= 1, got {args.shard_size}",
            file=sys.stderr,
        )
        return 2
    if args.pairs:
        source = iter_pairs(args.pairs)  # streamed; never materialised here
    elif args.pattern and args.text:
        source = iter([(args.pattern, args.text)])
    else:
        print("error: provide PATTERN TEXT or --pairs FILE", file=sys.stderr)
        return 2

    text_lengths = []

    def tracked():
        for item in source:
            pattern = getattr(item, "pattern", None)
            text = getattr(item, "text", None)
            if pattern is None:
                pattern, text = item
            text_lengths.append(len(text))
            yield pattern, text

    resilient = (
        args.max_retries is not None
        or args.shard_timeout is not None
        or args.checkpoint is not None
        or args.cross_check
    )
    if resilient:
        from .resilience import align_batch_resilient

        batch = align_batch_resilient(
            aligner,
            tracked(),
            traceback=not args.no_traceback,
            workers=workers,
            shard_size=args.shard_size,
            max_retries=args.max_retries,
            shard_timeout=args.shard_timeout,
            checkpoint=args.checkpoint,
            cross_check=args.cross_check,
        )
    else:
        batch = align_batch(
            aligner,
            tracked(),
            traceback=not args.no_traceback,
            workers=workers,
            shard_size=args.shard_size,
        )
    if args.pairs and batch.pairs == 0:
        print(f"error: {args.pairs}: no sequence pairs found", file=sys.stderr)
        return 2
    for result, text_length in zip(batch.results, text_lengths):
        line = f"score={result.score} exact={result.exact}"
        if result.alignment is not None:
            line += f" cigar={result.cigar}"
            if result.text_end is not None and (
                result.text_start, result.text_end
            ) != (0, text_length):
                line += f" span={result.text_start}:{result.text_end}"
        print(line)
        if args.stats:
            stats = result.stats
            print(
                f"  instructions={stats.total_instructions} "
                f"({dict(stats.instructions)})"
            )
            print(
                f"  dp_cells={stats.dp_cells} tiles={stats.tiles} "
                f"dp_state_bytes={stats.dp_bytes_peak}"
            )
    if args.pairs and (args.stats or workers > 1 or resilient):
        telemetry = batch.telemetry
        backend_note = (
            f" backend={telemetry.backend}" if telemetry.backend else ""
        )
        print(
            f"batch: pairs={telemetry.pairs} workers={telemetry.workers} "
            f"shards={telemetry.shard_count} executor={telemetry.executor} "
            f"wall={telemetry.wall_seconds:.3f}s "
            f"pairs/s={telemetry.pairs_per_second:.1f} "
            f"utilization={telemetry.worker_utilization:.0%}"
            f"{backend_note}"
        )
        if telemetry.resilience is not None:
            counters = telemetry.resilience
            print(
                f"resilience: retries={counters.retries} "
                f"timeouts={counters.timeouts} crashes={counters.crashes} "
                f"bisections={counters.bisections} "
                f"fallbacks={counters.fallbacks} "
                f"quarantined={counters.quarantined_pairs} "
                f"checkpoints={counters.checkpoints_written} "
                f"resumed={counters.shards_resumed}"
            )
            quarantined = getattr(batch, "quarantined", ())
            for entry in quarantined:
                print(
                    f"quarantined pair {entry.index}: {entry.reason}",
                    file=sys.stderr,
                )
            if quarantined:
                return 1
    return 0


def _cmd_generate(args) -> int:
    from .workloads.generator import generate_pair_set
    from .workloads.seqio import save_pairs

    pair_set = generate_pair_set(
        f"cli-{args.length}bp", args.length, args.error, args.count,
        seed=args.seed,
    )
    save_pairs(pair_set, args.out)
    print(
        f"wrote {args.count} pairs of {args.length} bp @ {args.error:.1%} "
        f"to {args.out}"
    )
    return 0


def _cmd_experiment(args) -> int:
    import json
    from pathlib import Path

    from .eval.reporting import render_table

    if args.name == "all":
        from .eval.export import export_json, run_all

        if args.json:
            path = export_json(args.json)
            print(f"wrote all experiment results to {path}")
        else:
            results = run_all()
            print(f"ran {len(results)} experiments; pass --json FILE to save")
            for stamp in (
                "lint", "sanitizer", "resilience", "observability",
                "backends", "serving",
            ):
                block = results.get(stamp)
                if isinstance(block, dict) and block.get("badge"):
                    print(block["badge"])
        return 0
    result = _experiments()[args.name]()
    if args.json:
        Path(args.json).write_text(json.dumps(result, indent=2, default=str))
        print(f"wrote {args.name} to {args.json}")
        return 0
    if isinstance(result, dict):
        for section, rows in result.items():
            print(render_table(rows, title=f"{args.name} — {section}"))
            print()
    else:
        print(render_table(result, title=args.name))
    return 0


def _cmd_design(args) -> int:
    from .hw import design_point, soc_report

    point = design_point(args.tile_size, args.frequency)
    report = soc_report(args.tile_size)
    print(f"GMX design point: T={point.tile_size} @ {point.frequency_ghz} GHz")
    print(f"  DP elements per instruction : {point.elements_per_instruction}")
    print(f"  GMX-AC latency              : {point.ac_stages} cycles")
    print(f"  GMX-TB latency              : {point.tb_stages} cycles")
    print(f"  area                        : {point.area_mm2:.4f} mm^2")
    print(f"  power                       : {point.power_mw:.2f} mW")
    print(f"  peak throughput             : {point.peak_gcups:.0f} GCUPS")
    print(
        f"  share of the RTL SoC        : "
        f"{report.gmx_area_fraction:.1%} area, "
        f"{report.gmx_power_fraction:.1%} power"
    )
    return 0


def _cmd_verify(args) -> int:
    import random

    from .align import AutoAligner, BandedGmxAligner, FullGmxAligner
    from .baselines import (
        BpmAligner,
        EdlibAligner,
        HirschbergAligner,
        NeedlemanWunschAligner,
        WfaAligner,
    )
    from .core.tile import boundary_deltas
    from .hw.rtl_sim import GmxAcArraySim
    from .workloads.generator import generate_pair

    rng = random.Random(args.seed)
    aligners = [
        FullGmxAligner(),
        BandedGmxAligner(),
        AutoAligner(),
        NeedlemanWunschAligner(),
        BpmAligner(),
        EdlibAligner(),
        HirschbergAligner(),
        WfaAligner(),
    ]
    checked = 0
    for index in range(args.pairs):
        length = rng.randint(20, 400)
        error = rng.choice((0.01, 0.05, 0.15, 0.30))
        pair = generate_pair(length, error, rng)
        scores = set()
        for aligner in aligners:
            result = aligner.align(pair.pattern, pair.text)
            if result.alignment is not None:
                result.alignment.validate()
            scores.add(result.score)
        if len(scores) != 1:
            print(f"FAIL: aligners disagree on pair {index}: {scores}")
            return 1
        checked += 1
    # Gate-level spot check: the executable array vs the tile kernel.
    sim = GmxAcArraySim(tile_size=8, stages=2)
    for _ in range(20):
        pair = generate_pair(8, 0.2, rng)
        chunk_p = pair.pattern[:8].ljust(8, "A")
        chunk_t = (pair.text[:8] or "A").ljust(8, "C")
        from .core.tile import compute_tile_reference

        simulated = sim.simulate(
            chunk_p, chunk_t, boundary_deltas(8), boundary_deltas(8)
        )
        reference = compute_tile_reference(
            chunk_p, chunk_t, boundary_deltas(8), boundary_deltas(8),
            tile_size=8,
        )
        if simulated.result != reference:
            print("FAIL: gate-level array disagrees with the tile kernel")
            return 1
    print(
        f"OK: {checked} random pairs agreed across {len(aligners)} exact "
        f"aligners; gate-level array matches the tile kernel"
    )
    if args.strict:
        from .analysis import run_lint

        report = run_lint(seed=args.seed, pairs=4)
        if report.diagnostics:
            print(report.render())
            print(f"FAIL: strict mode found {len(report.diagnostics)} diagnostics")
            return 1
        print(
            f"OK: strict mode — {report.programs_checked} instruction streams "
            f"verified clean, repo invariants hold"
        )
    return 0


def _cmd_lint(args) -> int:
    import json as json_module

    from .analysis import Program, run_lint, verify_program

    if args.program:
        from pathlib import Path

        try:
            listing = Path(args.program).read_text()
            program = Program.from_hex(
                listing, tile_size=args.tile_size, label=args.program
            )
        except OSError as exc:
            print(f"error: {args.program}: {exc.strerror}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(
                f"error: {args.program}: not a hex program listing ({exc})",
                file=sys.stderr,
            )
            return 2
        diagnostics = verify_program(
            program, ports=1 if args.single_port else 2
        )
        if args.format == "json":
            print(
                json_module.dumps(
                    {
                        "program": args.program,
                        "instructions": len(program),
                        "diagnostics": [d.to_dict() for d in diagnostics],
                        "clean": not diagnostics,
                    },
                    indent=2,
                )
            )
        else:
            for diagnostic in diagnostics:
                print(diagnostic)
            status = "clean" if not diagnostics else "dirty"
            print(
                f"{args.program}: {len(program)} instructions, "
                f"{len(diagnostics)} diagnostics ({status})"
            )
        return 1 if diagnostics else 0

    report = run_lint(
        seed=args.seed,
        pairs=args.pairs,
        tile_size=args.tile_size,
        corpus=args.corpus,
        repo=not args.skip_repo,
        streams=not args.skip_streams,
        ports=1 if args.single_port else 2,
    )
    if args.format == "json":
        print(json_module.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        from .analysis.sarif import render_sarif

        print(render_sarif(report.diagnostics, tool_name="repro-lint"))
    else:
        print(report.render())
    return 1 if report.diagnostics else 0


def _cmd_sanitize(args) -> int:
    import json as json_module

    from .analysis.sanitizer import run_sanitize

    report = run_sanitize(
        seed=args.seed,
        static=not args.skip_static,
        dynamic=not args.skip_dynamic,
        shadow=not args.skip_shadow,
        corpus=args.corpus,
        pairs=args.pairs,
        workers=args.workers,
        sample=args.sample,
        tile_size=args.tile_size,
    )
    if args.format == "json":
        print(json_module.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        from .analysis.sarif import render_sarif

        print(render_sarif(report.diagnostics, tool_name="repro-sanitize"))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _serve_aligner(args):
    """Build (and optionally re-backend) the aligner a service will host."""
    aligner = ALIGNER_FACTORIES[args.algorithm](args)
    if getattr(args, "backend", None) is not None:
        from .align import AlignerError
        from .align.backends import BackendError

        try:
            aligner = aligner.with_backend(args.backend)
        except (AlignerError, BackendError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
    return aligner


def _cmd_serve(args) -> int:
    from .serve import AlignmentHTTPServer, AlignmentService, ServeConfig
    from .serve import ServeError

    aligner = _serve_aligner(args)
    if aligner is None:
        return 2
    config = ServeConfig(
        workers=args.workers,
        coalesce_window=args.coalesce_window / 1000.0,
        coalesce_max_pairs=args.coalesce_max_pairs,
        cache_size=args.cache_size,
        max_inflight=args.max_inflight,
        dispatch_timeout=args.dispatch_timeout,
        rate_limit_rps=args.rate_limit,
        rate_limit_burst=args.rate_limit_burst,
    )
    try:
        service = AlignmentService(aligner, config=config)
    except (ServeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with service:
        try:
            server = AlignmentHTTPServer((args.host, args.port), service)
        except OSError as exc:
            print(
                f"error: cannot bind {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        host, port = server.server_address[0], server.server_address[1]
        print(
            f"serving {args.algorithm} on http://{host}:{port} "
            f"(workers={service.pool.workers} executor={service.pool.executor} "
            f"cache={args.cache_size} max_inflight={args.max_inflight})"
        )
        print("endpoints: POST /align, GET /health, GET /metrics — Ctrl-C stops")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            server.shutdown()
            server.server_close()
    return 0


def _cmd_bench(args) -> int:
    import json as json_module
    from pathlib import Path

    from .serve.bench import run_serve_bench

    report = run_serve_bench(
        requests=args.requests,
        clients=args.clients,
        unique_pairs=args.unique,
        length=args.length,
        error_rate=args.error,
        seed=args.seed,
        workers=args.workers,
        cache_size=args.cache_size,
        coalesce_window=args.coalesce_window / 1000.0,
    )
    print(report.render())
    if args.json:
        Path(args.json).write_text(
            json_module.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote bench report to {args.json}")
    return 0 if report.errors == 0 else 1


def _cmd_chaos(args) -> int:
    import json as json_module
    from pathlib import Path

    from .resilience import run_campaign

    if args.dist:
        from .dist import run_dist_campaign

        report = run_dist_campaign(
            seed=args.seed,
            faults=args.faults,
            nodes=args.nodes,
            node_workers=args.node_workers,
            length=args.length,
            error_rate=args.error,
            shard_size=args.shard_size,
            lease_timeout=args.lease_timeout,
            checkpoint=args.checkpoint,
        )
        print(report.render())
        if args.json:
            Path(args.json).write_text(
                json_module.dumps(report.to_dict(), indent=2)
            )
            print(f"wrote dist chaos report to {args.json}")
        return 0 if report.ok else 1

    if args.serve:
        from .serve.chaos import run_serve_chaos

        report = run_serve_chaos(
            seed=args.seed,
            pairs=args.pairs if args.pairs is not None else 32,
            workers=args.workers,
            length=args.length,
            error_rate=args.error,
            dispatch_timeout=args.dispatch_timeout,
        )
        print(report.render())
        if args.json:
            Path(args.json).write_text(
                json_module.dumps(report.to_dict(), indent=2)
            )
            print(f"wrote serve chaos report to {args.json}")
        return 0 if report.ok else 1

    report = run_campaign(
        seed=args.seed,
        faults=args.faults,
        pairs=args.pairs,
        length=args.length,
        error_rate=args.error,
        workers=args.workers,
        shard_size=args.shard_size,
        shard_timeout=args.shard_timeout,
        max_retries=args.max_retries,
        checkpoint=args.checkpoint,
    )
    print(report.render())
    if args.json:
        Path(args.json).write_text(
            json_module.dumps(report.to_dict(), indent=2)
        )
        print(f"wrote campaign report to {args.json}")
    return 0 if report.ok else 1


def _cmd_dist(args) -> int:
    if args.dist_command == "worker":
        return _cmd_dist_worker(args)
    return _cmd_dist_coordinator(args)


def _cmd_dist_worker(args) -> int:
    from .dist import run_worker

    aligner = _serve_aligner(args)
    if aligner is None:
        return 2
    node = args.node or f"{args.host}:{args.port}"

    def _on_bound(host: str, port: int) -> None:
        print(
            f"dist worker {node!r} (incarnation {args.incarnation}) "
            f"serving {args.algorithm} on http://{host}:{port} "
            f"(pool workers={args.workers})"
        )
        print("endpoints: GET /health, POST /shard — Ctrl-C stops")

    try:
        run_worker(
            aligner,
            host=args.host,
            port=args.port,
            node=node,
            incarnation=args.incarnation,
            workers=args.workers,
            on_bound=_on_bound,
        )
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_dist_coordinator(args) -> int:
    from .dist import DistConfig, DistCoordinator, DistError, NodeHandle
    from .workloads.seqio import iter_pairs

    aligner = _serve_aligner(args)
    if aligner is None:
        return 2
    nodes = [
        NodeHandle(name=f"node{index}", url=url.rstrip("/"))
        for index, url in enumerate(args.node_urls)
    ]
    if args.shard_size is not None and args.shard_size < 1:
        print(
            f"error: --shard-size must be >= 1, got {args.shard_size}",
            file=sys.stderr,
        )
        return 2
    pairs = list(iter_pairs(args.pairs))
    config = DistConfig(
        lease_timeout=args.lease_timeout,
        shard_size=args.shard_size,
    )
    coordinator = DistCoordinator(
        aligner,
        nodes,
        config=config,
        checkpoint=args.checkpoint,
    )
    try:
        outcome = coordinator.run(pairs, traceback=not args.no_traceback)
    except DistError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    counters = outcome.counters
    print(
        f"aligned {outcome.pairs} pairs across {counters.shards} shards "
        f"on {len(nodes)} node(s)"
    )
    print(
        f"leases: {counters.leases_granted} granted, "
        f"{counters.leases_expired} expired, "
        f"{counters.stale_discards} stale discarded, "
        f"{counters.retries} retries, "
        f"{counters.local_shards} local, "
        f"{counters.resumed_shards} resumed"
    )
    if args.stats:
        for name, state in sorted(outcome.nodes.items()):
            print(
                f"  {name}: completed={state['completed']} "
                f"failures={state['failures']} "
                f"stale={state['stale_replies']} "
                f"alive={state['alive']} "
                f"quarantined={state['quarantined']}"
            )
        stats = outcome.stats
        print(
            f"kernel: {stats.total_instructions} instructions, "
            f"{stats.dp_cells} DP cells"
        )
    return 0


def _cmd_stream(args) -> int:
    import json
    import os

    from .resilience import CheckpointError
    from .stream import StreamConfig, StreamError, stream_align, verify_windows

    if args.chunk_size < 1 or args.overlap < 0:
        print(
            f"error: invalid geometry chunk_size={args.chunk_size} "
            f"overlap={args.overlap}",
            file=sys.stderr,
        )
        return 2
    config = StreamConfig(chunk_size=args.chunk_size, overlap=args.overlap)

    def load_query(source: str) -> str:
        if not os.path.exists(source):
            return source.upper()
        from .workloads.seqio import iter_fasta_blocks

        return "".join(iter_fasta_blocks(source))

    query = load_query(args.query)
    try:
        config.validate()
        if os.path.exists(args.reference):
            from .stream import stream_align_fasta

            result = stream_align_fasta(
                args.reference,
                query,
                record=args.record,
                config=config,
                engine=args.engine,
                workers=args.workers,
                shard_size=args.shard_size,
                checkpoint=args.checkpoint,
            )
        else:
            result = stream_align(
                args.reference.upper(),
                query,
                config=config,
                engine=args.engine,
                workers=args.workers,
                shard_size=args.shard_size,
                checkpoint=args.checkpoint,
            )
    except (StreamError, CheckpointError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stitched = result.stitched
    print(
        f"stream: score {result.score}, reference "
        f"[{result.text_start}, {result.text_end}) of "
        f"{result.reference_length}, query {result.query_length}, "
        f"engine {result.engine}"
    )
    counters = result.counters
    stitch = stitched.counters
    print(
        f"filter: {counters.chunks} windows -> {counters.candidates} "
        f"candidates, {counters.holes_promoted} holes promoted, "
        f"{counters.spurious_skipped} spurious skipped"
    )
    print(
        f"stitch: {stitch.anchor_seams} anchor seams, "
        f"{stitch.bridge_seams} bridge seams "
        f"({stitch.bridge_columns} bridged columns), "
        f"{stitch.head_unmapped}/{stitch.tail_unmapped} unmapped head/tail"
    )
    timings = result.timings
    print(
        f"timings: filter {timings.filter_seconds:.3f}s, align "
        f"{timings.align_seconds:.3f}s, stitch {timings.stitch_seconds:.3f}s"
    )
    if args.cigar:
        print(f"cigar: {stitched.cigar}")
    window_report = []
    if args.verify_windows:
        try:
            checks = verify_windows(
                stitched, windows=args.verify_windows, seed=args.seed
            )
        except StreamError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        good = sum(1 for check in checks if check.ok)
        print(
            f"conformance: {good}/{len(checks)} windows byte-identical "
            "to the Hirschberg oracle"
        )
        window_report = [
            {
                "query": [check.query_start, check.query_end],
                "reference": [check.ref_start, check.ref_end],
                "score": check.window_score,
                "oracle_score": check.oracle_score,
                "identical": check.identical,
            }
            for check in checks
        ]
        if good != len(checks):
            return 1
    if args.json:
        report = {
            "score": result.score,
            "cigar": stitched.cigar,
            "text_start": result.text_start,
            "text_end": result.text_end,
            "reference_length": result.reference_length,
            "query_length": result.query_length,
            "engine": result.engine,
            "config": {
                "chunk_size": config.chunk_size,
                "overlap": config.overlap,
                "k": config.k,
                "span_pad": config.resolved_span_pad,
            },
            "counters": {
                "chunks": counters.chunks,
                "candidates": counters.candidates,
                "holes_promoted": counters.holes_promoted,
                "spurious_skipped": counters.spurious_skipped,
                "jobs": counters.jobs,
            },
            "stitch": {
                "anchor_seams": stitch.anchor_seams,
                "bridge_seams": stitch.bridge_seams,
                "bridge_columns": stitch.bridge_columns,
                "skipped_alignments": stitch.skipped_alignments,
                "max_heap_depth": stitch.max_heap_depth,
            },
            "timings": {
                "filter_seconds": timings.filter_seconds,
                "align_seconds": timings.align_seconds,
                "stitch_seconds": timings.stitch_seconds,
            },
            "windows": window_report,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0


def _cmd_profile(args) -> int:
    from pathlib import Path
    from time import perf_counter_ns

    from .obs import runtime as obs
    from .obs.profiler import (
        ProfileError,
        build_profile,
        load_profile,
        render_profile,
        render_profile_diff,
    )

    if args.diff:
        before_path, after_path = args.diff
        try:
            before = load_profile(before_path)
            after = load_profile(after_path)
        except ProfileError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_profile_diff(before, after, top=args.top))
        return 0

    inner = list(args.wrapped)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        print(
            "error: nothing to profile — use `repro profile -- align ...` "
            "or `repro profile --diff BEFORE AFTER`",
            file=sys.stderr,
        )
        return 2
    if inner[0] == "profile":
        print("error: cannot profile the profiler itself", file=sys.stderr)
        return 2
    if obs.enabled():
        print(
            "error: observability is already active in this process",
            file=sys.stderr,
        )
        return 2

    label = " ".join(inner)
    recorder, registry = obs.enable()
    start_ns = perf_counter_ns()
    try:
        with recorder.span(f"cli.{inner[0]}", argv=label):
            code = main(inner)
    finally:
        wall_ns = perf_counter_ns() - start_ns
        obs.disable()

    profile = build_profile(
        recorder,
        wall_ns=wall_ns,
        label=label,
        metrics=registry.snapshot(),
    )
    try:
        if args.trace:
            Path(args.trace).write_text(recorder.to_json() + "\n")
            print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
        if args.jsonl:
            Path(args.jsonl).write_text(recorder.to_jsonl() + "\n")
            print(f"wrote span lines to {args.jsonl}", file=sys.stderr)
        if args.json:
            Path(args.json).write_text(profile.to_json() + "\n")
            print(f"wrote profile to {args.json}", file=sys.stderr)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_profile(profile, top=args.top))
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from .workloads.seqio import SeqFormatError

    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help (0) and usage errors (2); fold its code
        # into the normal return path so embedding callers never unwind.
        return int(exc.code or 0)
    handlers = {
        "align": _cmd_align,
        "generate": _cmd_generate,
        "experiment": _cmd_experiment,
        "design": _cmd_design,
        "verify": _cmd_verify,
        "lint": _cmd_lint,
        "sanitize": _cmd_sanitize,
        "chaos": _cmd_chaos,
        "dist": _cmd_dist,
        "serve": _cmd_serve,
        "bench": _cmd_bench,
        "stream": _cmd_stream,
        "profile": _cmd_profile,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        return 0
    except SeqFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        name = getattr(exc, "filename", None)
        detail = exc.strerror or str(exc)
        print(
            f"error: {name}: {detail}" if name else f"error: {detail}",
            file=sys.stderr,
        )
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
