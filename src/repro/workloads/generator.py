"""Synthetic sequence-pair generation (paper §7.1, methodology of [73]).

The paper's datasets are generated with the WFA-paper methodology: random
DNA sequences of a given length, paired with mutated copies carrying a
controlled error rate split across mismatches, insertions and deletions.
The genomes/reads themselves are not published, so this generator is the
library's substitute; it preserves the two quantities the evaluation
depends on — sequence length and divergence.

All generation is deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from ..core.alphabet import DNA_BASES

#: Default mismatch / insertion / deletion mix, as in the WFA generator.
DEFAULT_ERROR_MIX = (1 / 3, 1 / 3, 1 / 3)


@dataclass(frozen=True)
class SequencePair:
    """One pattern/text pair with its generation parameters.

    Attributes:
        pattern: the original (reference-like) sequence.
        text: the mutated (read-like) sequence.
        error_rate: requested divergence used to generate ``text``.
    """

    pattern: str
    text: str
    error_rate: float

    @property
    def length(self) -> int:
        """Nominal pair length (the pattern's)."""
        return len(self.pattern)


@dataclass
class PairSet:
    """A named collection of sequence pairs (one evaluation dataset).

    Attributes:
        name: dataset identifier, e.g. ``"short-150bp-5%"``.
        length: nominal sequence length.
        error_rate: nominal divergence.
        pairs: the generated pairs.
    """

    name: str
    length: int
    error_rate: float
    pairs: List[SequencePair] = field(default_factory=list)

    def __iter__(self) -> Iterator[SequencePair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def total_bases(self) -> int:
        """Total bases across both sequences of every pair."""
        return sum(len(p.pattern) + len(p.text) for p in self.pairs)


def random_sequence(
    length: int, rng: random.Random, alphabet: str = DNA_BASES
) -> str:
    """Uniform random sequence over ``alphabet``."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    return "".join(rng.choice(alphabet) for _ in range(length))


def mutate(
    sequence: str,
    error_rate: float,
    rng: random.Random,
    *,
    mix: Tuple[float, float, float] = DEFAULT_ERROR_MIX,
    alphabet: str = DNA_BASES,
) -> str:
    """Apply ``round(error_rate · len)`` random edits to a sequence.

    Args:
        mix: relative weights of (mismatch, insertion, deletion).

    Edits are applied sequentially at random positions; the resulting edit
    distance to the original is at most the number of edits (edits can
    cancel), matching the behaviour of the WFA dataset generator.
    """
    if not 0 <= error_rate <= 1:
        raise ValueError(f"error rate must be in [0, 1], got {error_rate}")
    weights = list(mix)
    if len(weights) != 3 or any(w < 0 for w in weights) or sum(weights) == 0:
        raise ValueError(f"invalid error mix {mix!r}")
    errors = round(error_rate * len(sequence))
    chars = list(sequence)
    for _ in range(errors):
        kind = rng.choices(("mismatch", "insertion", "deletion"), weights)[0]
        if not chars:
            kind = "insertion"
        if kind == "mismatch":
            position = rng.randrange(len(chars))
            current = chars[position]
            alternatives = [base for base in alphabet if base != current]
            chars[position] = rng.choice(alternatives)
        elif kind == "insertion":
            position = rng.randrange(len(chars) + 1)
            chars.insert(position, rng.choice(alphabet))
        else:
            if len(chars) > 1:
                del chars[rng.randrange(len(chars))]
    return "".join(chars)


def generate_pair(
    length: int,
    error_rate: float,
    rng: random.Random,
    *,
    mix: Tuple[float, float, float] = DEFAULT_ERROR_MIX,
) -> SequencePair:
    """Generate one (pattern, mutated text) pair."""
    pattern = random_sequence(length, rng)
    text = mutate(pattern, error_rate, rng, mix=mix)
    return SequencePair(pattern=pattern, text=text, error_rate=error_rate)


def generate_pair_set(
    name: str,
    length: int,
    error_rate: float,
    count: int,
    *,
    seed: int = 0,
    mix: Tuple[float, float, float] = DEFAULT_ERROR_MIX,
) -> PairSet:
    """Generate a named dataset of ``count`` pairs, seeded deterministically.

    The RNG is derived from both ``seed`` and ``name`` so distinct datasets
    never share streams even under the same seed.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    rng = random.Random(f"{seed}:{name}")
    pairs = [
        generate_pair(length, error_rate, rng, mix=mix) for _ in range(count)
    ]
    return PairSet(name=name, length=length, error_rate=error_rate, pairs=pairs)
