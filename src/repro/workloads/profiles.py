"""Sequencing-technology error profiles (§2.1's technology landscape).

The flat mismatch/insertion/deletion mix of :func:`repro.workloads.mutate`
matches the WFA generator the paper used; real platforms differ in both
the *mix* and the *structure* of their errors:

* **Illumina** (second generation): ~0.1–1 % errors, almost all
  substitutions;
* **PacBio HiFi**: ~1 %, balanced mix;
* **ONT / PacBio CLR** (noisy long reads): 5–15 %, indel-dominated and
  *bursty* — consecutive inserted/deleted bases (homopolymer slips).

These profiles generate such reads, so heuristics can be stressed on the
error structure (not just the rate) they were designed for: indel bursts
are what push alignments off the diagonal and through windowed overlaps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ..core.alphabet import DNA_BASES
from .generator import SequencePair, random_sequence


@dataclass(frozen=True)
class ErrorProfile:
    """Statistical shape of a sequencing technology's errors.

    Attributes:
        name: technology label.
        error_rate: expected errors per base.
        mix: relative weights of (mismatch, insertion, deletion) *events*.
        burst_mean: mean length of an indel event (1 = single-base indels;
            >1 draws geometric burst lengths, modelling homopolymer slips).
    """

    name: str
    error_rate: float
    mix: Tuple[float, float, float]
    burst_mean: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.error_rate <= 1:
            raise ValueError(f"error rate must be in [0, 1], got {self.error_rate}")
        if len(self.mix) != 3 or min(self.mix) < 0 or sum(self.mix) == 0:
            raise ValueError(f"invalid error mix {self.mix!r}")
        if self.burst_mean < 1:
            raise ValueError(f"burst mean must be ≥ 1, got {self.burst_mean}")

    def burst_length(self, rng: random.Random) -> int:
        """Draw one indel-event length (geometric with the given mean)."""
        if self.burst_mean <= 1:
            return 1
        success = 1.0 / self.burst_mean
        length = 1
        while rng.random() > success:
            length += 1
        return length


#: Second-generation short reads: substitutions dominate.
ILLUMINA = ErrorProfile("illumina", 0.005, (0.90, 0.05, 0.05))

#: PacBio HiFi (CCS): low error, balanced mix.
PACBIO_HIFI = ErrorProfile("pacbio-hifi", 0.01, (0.40, 0.30, 0.30))

#: Noisy long reads (ONT / PacBio CLR): indel-dominated, bursty.
ONT = ErrorProfile("ont", 0.12, (0.25, 0.35, 0.40), burst_mean=2.5)

PROFILES = {profile.name: profile for profile in (ILLUMINA, PACBIO_HIFI, ONT)}


def apply_profile(
    sequence: str, profile: ErrorProfile, rng: random.Random
) -> str:
    """Corrupt a sequence according to a technology profile.

    The error budget is ``error_rate × len`` *bases*; indel events consume
    their burst length from the budget, so the expected per-base error
    rate is profile-faithful regardless of burstiness.
    """
    budget = round(profile.error_rate * len(sequence))
    chars = list(sequence)
    while budget > 0:
        kind = rng.choices(("mismatch", "insertion", "deletion"), profile.mix)[0]
        if not chars:
            kind = "insertion"
        if kind == "mismatch":
            position = rng.randrange(len(chars))
            current = chars[position]
            chars[position] = rng.choice(
                [base for base in DNA_BASES if base != current]
            )
            budget -= 1
        else:
            length = min(profile.burst_length(rng), budget)
            if kind == "insertion":
                position = rng.randrange(len(chars) + 1)
                chars[position:position] = [
                    rng.choice(DNA_BASES) for _ in range(length)
                ]
            else:
                if len(chars) <= length:
                    budget -= 1
                    continue
                position = rng.randrange(len(chars) - length + 1)
                del chars[position : position + length]
            budget -= length
    return "".join(chars)


def generate_profiled_pair(
    length: int, profile: ErrorProfile, rng: random.Random
) -> SequencePair:
    """Generate one (pattern, technology-corrupted text) pair."""
    pattern = random_sequence(length, rng)
    text = apply_profile(pattern, profile, rng)
    return SequencePair(
        pattern=pattern, text=text, error_rate=profile.error_rate
    )
