"""The paper's evaluation dataset suite (§7.1) and Figure-3 profiles.

Paper configuration:

* 5 short datasets — 100, 150, 200, 250, 300 bp at 5 % error (Illumina-like);
* long datasets — 1 k..10 k bp in 1 k steps at 15 % error (noisy long reads);
* a 1 Mbp / 15 % scalability dataset (§7.3);
* Figure-3 profiles: Illumina WGS-like (150 bp, ~0.5 %) and PacBio
  HiFi-like (long, ~1 %).

Pair counts and the HiFi length are scaled by a ``scale`` knob so the same
suite drives quick CI runs and full benchmark sweeps; the paper-shaped
defaults are what the benchmarks in ``benchmarks/`` use.
"""

from __future__ import annotations

from typing import Dict, List

from .generator import PairSet, generate_pair_set

#: Short-read lengths evaluated in the paper (bp).
SHORT_LENGTHS = (100, 150, 200, 250, 300)
#: Error rate of the short datasets.
SHORT_ERROR = 0.05

#: Long-read lengths evaluated in the paper (bp).
LONG_LENGTHS = tuple(range(1_000, 10_001, 1_000))
#: Error rate of the long datasets.
LONG_ERROR = 0.15

#: §7.3 scalability experiment.
SCALABILITY_LENGTH = 1_000_000
SCALABILITY_ERROR = 0.15


def short_dataset(length: int, *, count: int = 20, seed: int = 0) -> PairSet:
    """One short-read dataset (5 % error)."""
    if length not in SHORT_LENGTHS:
        raise ValueError(
            f"length {length} not in the paper's short suite {SHORT_LENGTHS}"
        )
    return generate_pair_set(
        f"short-{length}bp-5%", length, SHORT_ERROR, count, seed=seed
    )


def long_dataset(length: int, *, count: int = 4, seed: int = 0) -> PairSet:
    """One long-read dataset (15 % error)."""
    if length not in LONG_LENGTHS:
        raise ValueError(
            f"length {length} not in the paper's long suite {LONG_LENGTHS}"
        )
    return generate_pair_set(
        f"long-{length // 1000}kbp-15%", length, LONG_ERROR, count, seed=seed
    )


def short_suite(*, count: int = 20, seed: int = 0) -> List[PairSet]:
    """All five short datasets."""
    return [short_dataset(length, count=count, seed=seed) for length in SHORT_LENGTHS]


def long_suite(*, count: int = 4, seed: int = 0) -> List[PairSet]:
    """All long datasets (1 k–10 k bp)."""
    return [long_dataset(length, count=count, seed=seed) for length in LONG_LENGTHS]


def scalability_dataset(*, count: int = 1, seed: int = 0) -> PairSet:
    """The §7.3 1 Mbp / 15 % scalability dataset."""
    return generate_pair_set(
        "scalability-1Mbp-15%",
        SCALABILITY_LENGTH,
        SCALABILITY_ERROR,
        count,
        seed=seed,
    )


def illumina_like(*, count: int = 50, seed: int = 0) -> PairSet:
    """Figure-3 short profile: Illumina WGS-like (150 bp, 0.5 % error)."""
    return generate_pair_set("illumina-150bp-0.5%", 150, 0.005, count, seed=seed)


def hifi_like(*, length: int = 3_000, count: int = 5, seed: int = 0) -> PairSet:
    """Figure-3 long profile: PacBio HiFi-like (~1 % error).

    The paper uses real GIAB HiFi reads of 10–25 kbp; the default length
    here is scaled down to keep the exact gap-affine comparator (O(n·m)
    NumPy antidiagonals) tractable — the speed/accuracy *shape* of Figure 3
    is length-stable.
    """
    return generate_pair_set(
        f"hifi-{length // 1000}kbp-1%", length, 0.01, count, seed=seed
    )


def dataset_registry(
    *, short_count: int = 20, long_count: int = 4, seed: int = 0
) -> Dict[str, PairSet]:
    """Name → dataset map of the full §7.1 suite."""
    registry: Dict[str, PairSet] = {}
    for pair_set in short_suite(count=short_count, seed=seed):
        registry[pair_set.name] = pair_set
    for pair_set in long_suite(count=long_count, seed=seed):
        registry[pair_set.name] = pair_set
    return registry
