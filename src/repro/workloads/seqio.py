"""Sequence I/O: WFA ``.seq`` pair files plus FASTA/FASTQ reads.

The paper open-sources its generated datasets as ``.seq`` files in the WFA
tools' format: two lines per pair, the pattern prefixed with ``>`` and the
text with ``<``.  This module reads and writes that format so externally
generated datasets can be dropped into the harness, and additionally reads
single-sequence FASTA/FASTQ files (the formats real read sets arrive in),
pairing two files record by record.

Two read paths are provided for pairs: :func:`load_pairs` materialises a
whole file into a :class:`PairSet`, while :func:`iter_pairs` streams pairs
one at a time — the batch engine (``align_batch(..., workers=N)``)
consumes such streams shard by shard, so arbitrarily large files never
need to fit in memory.

Robustness contract: every malformed input raises :class:`SeqFormatError`
carrying the file name, the 1-based record index, and the offending line
number — enough to locate one bad record in a million-read file.  The
resilience engine (:mod:`repro.resilience`) relies on these errors being
precise and typed to quarantine poison records instead of aborting runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from .generator import PairSet, SequencePair

#: File suffixes recognised by :func:`detect_format`.
FASTA_SUFFIXES = (".fasta", ".fa", ".fna")
FASTQ_SUFFIXES = (".fastq", ".fq")


class SeqFormatError(ValueError):
    """Raised on malformed sequence input.

    Attributes:
        path: the offending file (``None`` for non-file sources).
        record: 1-based index of the malformed record, when known.
        line: 1-based line number of the offending line, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Union[str, Path, None] = None,
        record: Optional[int] = None,
        line: Optional[int] = None,
    ):
        self.path = str(path) if path is not None else None
        self.record = record
        self.line = line
        prefix = []
        if self.path is not None:
            prefix.append(self.path)
        if line is not None:
            prefix.append(f"line {line}")
        if record is not None:
            prefix.append(f"record {record}")
        super().__init__(
            f"{': '.join(prefix)}: {message}" if prefix else message
        )


def save_pairs(pairs: PairSet, path: Union[str, Path]) -> None:
    """Write a pair set in the WFA ``.seq`` format."""
    path = Path(path)
    with path.open("w") as handle:
        for pair in pairs:
            handle.write(f">{pair.pattern}\n")
            handle.write(f"<{pair.text}\n")


def iter_pairs(
    path: Union[str, Path], *, error_rate: float = 0.0
) -> Iterator[SequencePair]:
    """Stream a ``.seq`` file pair by pair without materialising it.

    Yields each :class:`SequencePair` as soon as its two lines are read;
    format errors raise :class:`SeqFormatError` identifying the file, the
    record index, and the line.

    Args:
        error_rate: nominal divergence to record (unknown for external data).
    """
    path = Path(path)
    pattern = None
    pattern_line = 0
    record = 1
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if pattern is not None:
                    raise SeqFormatError(
                        "pattern without matching '<' text line",
                        path=path, record=record, line=pattern_line,
                    )
                pattern = line[1:]
                pattern_line = line_number
            elif line.startswith("<"):
                if pattern is None:
                    raise SeqFormatError(
                        "text without preceding '>' pattern line",
                        path=path, record=record, line=line_number,
                    )
                yield SequencePair(
                    pattern=pattern, text=line[1:], error_rate=error_rate
                )
                pattern = None
                record += 1
            else:
                raise SeqFormatError(
                    "line must start with '>' or '<'",
                    path=path, record=record, line=line_number,
                )
    if pattern is not None:
        raise SeqFormatError(
            "trailing pattern without text (truncated file?)",
            path=path, record=record, line=pattern_line,
        )


def load_pairs(
    path: Union[str, Path],
    *,
    name: str = "",
    error_rate: float = 0.0,
) -> PairSet:
    """Read a ``.seq`` file into a :class:`PairSet`.

    Args:
        name: dataset name; defaults to the file stem.
        error_rate: nominal divergence to record (unknown for external data).
    """
    path = Path(path)
    pairs: List[SequencePair] = list(iter_pairs(path, error_rate=error_rate))
    if not pairs:
        raise SeqFormatError("no sequence pairs found", path=path)
    length = pairs[0].length
    return PairSet(
        name=name or path.stem, length=length, error_rate=error_rate, pairs=pairs
    )


# -- FASTA / FASTQ ----------------------------------------------------------


def iter_fasta(path: Union[str, Path]) -> Iterator[Tuple[str, str]]:
    """Stream a FASTA file as (name, sequence) records.

    Multi-line sequences are concatenated.  A header with no sequence
    lines — including a header at end of file, the classic truncated-tail
    shape — raises :class:`SeqFormatError` at that record.
    """
    path = Path(path)
    name = None
    header_line = 0
    chunks: List[str] = []
    record = 0
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    if not chunks:
                        raise SeqFormatError(
                            f"header {name!r} has no sequence lines",
                            path=path, record=record, line=header_line,
                        )
                    yield name, "".join(chunks)
                name = line[1:].split()[0] if len(line) > 1 else ""
                header_line = line_number
                chunks = []
                record += 1
            else:
                if name is None:
                    raise SeqFormatError(
                        "sequence data before the first '>' header",
                        path=path, record=1, line=line_number,
                    )
                chunks.append(line)
    if name is not None:
        if not chunks:
            raise SeqFormatError(
                f"header {name!r} has no sequence lines (truncated tail?)",
                path=path, record=record, line=header_line,
            )
        yield name, "".join(chunks)


def iter_fasta_blocks(
    path: Union[str, Path],
    *,
    record: Optional[str] = None,
    block_size: int = 1 << 16,
) -> Iterator[str]:
    """Stream one FASTA record's sequence as ~``block_size`` blocks.

    Unlike :func:`iter_fasta`, the record is never materialised: sequence
    lines are coalesced into blocks and yielded as soon as they fill, so a
    multi-megabase chromosome costs O(block) memory to read.  This is the
    input path of the chunked streaming pipeline (:mod:`repro.stream`).

    Args:
        record: name of the record to stream (first whitespace-delimited
            token of its header).  ``None`` streams the first record.
        block_size: target block length in bases; the final block may be
            shorter.

    Raises:
        SeqFormatError: if the file has no records, the named record is
            absent, or the selected record has no sequence lines.
    """
    path = Path(path)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    name = None
    found = False
    emitted = False
    header_line = 0
    record_index = 0
    buffer: List[str] = []
    buffered = 0
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if found:
                    break
                name = line[1:].split()[0] if len(line) > 1 else ""
                header_line = line_number
                record_index += 1
                found = record is None or name == record
            elif name is None:
                raise SeqFormatError(
                    "sequence data before the first '>' header",
                    path=path, record=1, line=line_number,
                )
            elif found:
                buffer.append(line)
                buffered += len(line)
                if buffered >= block_size:
                    block = "".join(buffer)
                    for lo in range(0, buffered - block_size + 1, block_size):
                        yield block[lo:lo + block_size]
                        emitted = True
                    tail = block[buffered - buffered % block_size:]
                    buffer = [tail] if tail else []
                    buffered = len(tail)
    if not found:
        if record is None:
            raise SeqFormatError("no FASTA records found", path=path)
        raise SeqFormatError(
            f"record {record!r} not found", path=path,
        )
    if buffer:
        yield "".join(buffer)
        emitted = True
    if not emitted:
        raise SeqFormatError(
            f"header {name!r} has no sequence lines",
            path=path, record=record_index, line=header_line,
        )


def iter_fastq(path: Union[str, Path]) -> Iterator[Tuple[str, str, str]]:
    """Stream a FASTQ file as (name, sequence, quality) records.

    Enforces the 4-line record structure: ``@name`` / sequence / ``+`` /
    quality, with the quality string exactly as long as the sequence.
    A record cut short at end of file (1–3 leftover lines) raises
    :class:`SeqFormatError` naming the record and where it started.
    """
    path = Path(path)
    record = 0
    with path.open() as handle:
        lines = iter(enumerate(handle, start=1))
        for line_number, raw in lines:
            header = raw.rstrip("\n")
            if not header.strip():
                continue
            record += 1
            if not header.startswith("@"):
                raise SeqFormatError(
                    f"expected '@' header, got {header[:20]!r}",
                    path=path, record=record, line=line_number,
                )
            name = header[1:].split()[0] if len(header) > 1 else ""
            body = []
            for expected in ("sequence", "'+' separator", "quality"):
                entry = next(lines, None)
                if entry is None:
                    raise SeqFormatError(
                        f"record truncated: missing {expected} line",
                        path=path, record=record, line=line_number,
                    )
                body.append((entry[0], entry[1].rstrip("\n")))
            (_, sequence), (plus_line, plus), (qual_line, quality) = body
            if not plus.startswith("+"):
                raise SeqFormatError(
                    f"expected '+' separator, got {plus[:20]!r}",
                    path=path, record=record, line=plus_line,
                )
            if len(quality) != len(sequence):
                raise SeqFormatError(
                    f"quality length {len(quality)} != sequence length "
                    f"{len(sequence)}",
                    path=path, record=record, line=qual_line,
                )
            yield name, sequence, quality


def detect_format(path: Union[str, Path]) -> str:
    """Classify a sequence file by suffix: ``seq``, ``fasta``, or ``fastq``."""
    suffix = Path(path).suffix.lower()
    if suffix in FASTA_SUFFIXES:
        return "fasta"
    if suffix in FASTQ_SUFFIXES:
        return "fastq"
    return "seq"


def read_sequences(path: Union[str, Path]) -> Iterator[str]:
    """Stream the sequences of a FASTA or FASTQ file (format by suffix).

    ``.seq`` pair files are rejected — they hold pairs, not reads; use
    :func:`iter_pairs` for those.
    """
    fmt = detect_format(path)
    if fmt == "fasta":
        for _, sequence in iter_fasta(path):
            yield sequence
    elif fmt == "fastq":
        for _, sequence, _ in iter_fastq(path):
            yield sequence
    else:
        raise SeqFormatError(
            "expected a FASTA/FASTQ suffix "
            f"({', '.join(FASTA_SUFFIXES + FASTQ_SUFFIXES)})",
            path=path,
        )


def pair_files(
    pattern_path: Union[str, Path],
    text_path: Union[str, Path],
    *,
    error_rate: float = 0.0,
) -> Iterator[SequencePair]:
    """Pair two FASTA/FASTQ files record by record (streamed).

    Record ``k`` of ``pattern_path`` aligns against record ``k`` of
    ``text_path``; a length mismatch between the files raises
    :class:`SeqFormatError` naming the shorter file and the record at
    which it ran out.
    """
    patterns = read_sequences(pattern_path)
    texts = read_sequences(text_path)
    record = 0
    while True:
        pattern = next(patterns, None)
        text = next(texts, None)
        if pattern is None and text is None:
            return
        record += 1
        if pattern is None or text is None:
            short = pattern_path if pattern is None else text_path
            raise SeqFormatError(
                "files hold different record counts",
                path=short, record=record,
            )
        yield SequencePair(pattern=pattern, text=text, error_rate=error_rate)
