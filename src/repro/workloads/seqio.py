"""Minimal sequence-pair I/O.

The paper open-sources its generated datasets as ``.seq`` files in the WFA
tools' format: two lines per pair, the pattern prefixed with ``>`` and the
text with ``<``.  This module reads and writes that format so externally
generated datasets can be dropped into the harness.

Two read paths are provided: :func:`load_pairs` materialises a whole file
into a :class:`PairSet`, while :func:`iter_pairs` streams pairs one at a
time — the batch engine (``align_batch(..., workers=N)``) consumes such
streams shard by shard, so arbitrarily large ``.seq`` files never need to
fit in memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Union

from .generator import PairSet, SequencePair


class SeqFormatError(ValueError):
    """Raised on malformed ``.seq`` input."""


def save_pairs(pairs: PairSet, path: Union[str, Path]) -> None:
    """Write a pair set in the WFA ``.seq`` format."""
    path = Path(path)
    with path.open("w") as handle:
        for pair in pairs:
            handle.write(f">{pair.pattern}\n")
            handle.write(f"<{pair.text}\n")


def iter_pairs(
    path: Union[str, Path], *, error_rate: float = 0.0
) -> Iterator[SequencePair]:
    """Stream a ``.seq`` file pair by pair without materialising it.

    Yields each :class:`SequencePair` as soon as its two lines are read;
    format errors raise :class:`SeqFormatError` at the offending line.

    Args:
        error_rate: nominal divergence to record (unknown for external data).
    """
    path = Path(path)
    pattern = None
    with path.open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if pattern is not None:
                    raise SeqFormatError(
                        f"{path}:{line_number}: pattern without matching text"
                    )
                pattern = line[1:]
            elif line.startswith("<"):
                if pattern is None:
                    raise SeqFormatError(
                        f"{path}:{line_number}: text without preceding pattern"
                    )
                yield SequencePair(
                    pattern=pattern, text=line[1:], error_rate=error_rate
                )
                pattern = None
            else:
                raise SeqFormatError(
                    f"{path}:{line_number}: line must start with '>' or '<'"
                )
    if pattern is not None:
        raise SeqFormatError(f"{path}: trailing pattern without text")


def load_pairs(
    path: Union[str, Path],
    *,
    name: str = "",
    error_rate: float = 0.0,
) -> PairSet:
    """Read a ``.seq`` file into a :class:`PairSet`.

    Args:
        name: dataset name; defaults to the file stem.
        error_rate: nominal divergence to record (unknown for external data).
    """
    path = Path(path)
    pairs: List[SequencePair] = list(iter_pairs(path, error_rate=error_rate))
    if not pairs:
        raise SeqFormatError(f"{path}: no sequence pairs found")
    length = pairs[0].length
    return PairSet(
        name=name or path.stem, length=length, error_rate=error_rate, pairs=pairs
    )
