"""Windowed(GenASM-CPU): GenASM's algorithm run on a CPU (paper §7.1).

GenASM (Senol Cali et al., MICRO 2020) is a Bitap-based accelerator using
the windowed heuristic (W = 96, O = 32 by default, a private traceback per
window).  The paper's ``Windowed(GenASM-CPU)`` baseline executes the same
algorithm with CPU instructions — which the paper notes is "a
hardware-oriented algorithm not designed to be executed on a CPU": every
window costs O(W²·k/w) bit operations and k·W² bits of traceback state,
both of which GMX eliminates.
"""

from __future__ import annotations

from ..align.windowed_gmx import WindowedAligner
from .bitap import BitapAligner

#: GenASM's published window configuration.
GENASM_WINDOW = 96
GENASM_OVERLAP = 32


class GenasmCpuAligner(WindowedAligner):
    """GenASM's windowed Bitap algorithm on a CPU.

    Args:
        window: W (default 96, as in GenASM).
        overlap: O (default 32).
        word_size: CPU word width for Bitap instruction accounting.
    """

    name = "Windowed(GenASM-CPU)"

    def __init__(
        self,
        window: int = GENASM_WINDOW,
        overlap: int = GENASM_OVERLAP,
        *,
        word_size: int = 64,
    ):
        super().__init__(
            inner=BitapAligner(word_size=word_size),
            window=window,
            overlap=overlap,
        )

    def _window_state_bytes(self) -> int:
        # k+1 R-vectors of W bits per text position; k can reach W.
        words_per_vector = -(-self.window // 64)
        return (self.window + 1) * (self.window + 1) * words_per_vector * 8
