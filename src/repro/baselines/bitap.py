"""Bitap (shift-and with errors) for global alignment — GenASM's substrate.

The Bitap algorithm (Wu–Manber formulation, §2.3) keeps one bit-vector per
error level d ∈ [0, k]: bit ``i`` of ``R_d`` after consuming ``j`` text
characters records whether pattern prefix ``p[0..i]`` aligns against
``t[0..j-1]`` with at most ``d`` errors.  Global alignment (as used in
GenASM's windows, not classical substring search) drops the free restart so
the whole text prefix must be consumed; the empty-pattern boundary state is
carried explicitly as the predicate ``j ≤ d``.

Each (d, column) update costs the paper's ``7·k bitwise instructions per
character`` (§2.3), on ``ceil(n/w)`` machine words; complexity is O(n·k·m/w)
and — unlike BPM — grows with the error rate, which is exactly the
scalability weakness the paper pins on Bitap-based accelerators (§3.1).

Traceback stores all ``(k+1)·m`` bit-vectors (the ``m`` DP-matrices of
``n × k`` bits of §2.3) and walks the transition relation backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..align.base import Aligner, AlignmentResult, KernelStats
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)
from ..core.tile import build_peq

#: Bitwise instructions per (error level, character) Bitap update (§2.3).
BITAP_INSTRUCTIONS_PER_STEP = 7


@dataclass
class BitapRun:
    """Raw result of a bounded-error Bitap pass.

    Attributes:
        distance: the edit distance if ≤ k, else None.
        history: per-column list of the k+1 R vectors (only when recorded).
    """

    distance: Optional[int]
    history: Optional[List[List[int]]]


def bitap_global(
    pattern: str,
    text: str,
    k: int,
    *,
    record: bool = False,
    stats: Optional[KernelStats] = None,
    word_size: int = 64,
) -> BitapRun:
    """Run global Bitap with error bound ``k``.

    Args:
        record: keep the full R-vector history (needed for traceback).
        stats: optional instrumentation record to update in place.
        word_size: machine word width used for instruction accounting only
            (Python integers hold the vectors natively).
    """
    n = len(pattern)
    m = len(text)
    if n == 0 or m == 0:
        raise ValueError("pattern and text must be non-empty")
    k = min(k, n + m)
    peq = build_peq(pattern)
    n_mask = (1 << n) - 1
    words = -(-n // word_size)

    # Column 0: p[0..i] vs empty text costs i+1 deletions.
    vectors = [((1 << d) - 1) & n_mask for d in range(k + 1)]
    history: Optional[List[List[int]]] = [list(vectors)] if record else None

    for j in range(1, m + 1):
        eq = peq.get(text[j - 1], 0)
        new: List[int] = []
        previous = vectors
        for d in range(k + 1):
            boundary_prev = 1 if (j - 1) <= d else 0
            match = ((previous[d] << 1) | boundary_prev) & eq
            value = match
            if d > 0:
                boundary_sub = 1 if (j - 1) <= (d - 1) else 0
                boundary_del = 1 if j <= (d - 1) else 0
                substitution = (previous[d - 1] << 1) | boundary_sub
                insertion = previous[d - 1]
                deletion = (new[d - 1] << 1) | boundary_del
                value |= substitution | insertion | deletion
            new.append(value & n_mask)
        vectors = new
        if history is not None:
            history.append(list(vectors))
        if stats is not None:
            steps = (k + 1) * words
            stats.add_instr("int_alu", BITAP_INSTRUCTIONS_PER_STEP * steps)
            stats.add_instr("load", 2 * steps)
            stats.add_instr("store", steps)
            stats.add_instr("branch", k + 1)
            stats.dp_cells += n
            stats.dp_bytes_read += 2 * steps * (word_size // 8)
            stats.dp_bytes_written += steps * (word_size // 8)

    top_bit = 1 << (n - 1)
    distance = None
    for d in range(k + 1):
        if vectors[d] & top_bit:
            distance = d
            break
    return BitapRun(distance=distance, history=history)


def _traceback(
    pattern: str,
    text: str,
    history: List[List[int]],
    distance: int,
) -> List[str]:
    """Walk the stored R vectors backwards from (n−1, m, distance)."""

    def reachable(j: int, d: int, i: int) -> bool:
        if d < 0:
            return False
        if i == -1:
            return j <= d  # empty pattern prefix vs j text characters
        if i < -1:
            return False
        return bool((history[j][d] >> i) & 1)

    i = len(pattern) - 1
    j = len(text)
    d = distance
    reversed_ops: List[str] = []
    while i >= 0 and j >= 1:
        if pattern[i] == text[j - 1] and reachable(j - 1, d, i - 1):
            reversed_ops.append(OP_MATCH)
            i -= 1
            j -= 1
        elif reachable(j - 1, d - 1, i - 1):
            reversed_ops.append(OP_MISMATCH)
            i -= 1
            j -= 1
            d -= 1
        elif reachable(j, d - 1, i - 1):
            reversed_ops.append(OP_DELETION)
            i -= 1
            d -= 1
        elif reachable(j - 1, d - 1, i):
            reversed_ops.append(OP_INSERTION)
            j -= 1
            d -= 1
        else:  # pragma: no cover - would indicate an inconsistent history
            raise RuntimeError(
                f"Bitap traceback stuck at (i={i}, j={j}, d={d})"
            )
    reversed_ops.extend([OP_DELETION] * (i + 1))
    reversed_ops.extend([OP_INSERTION] * j)
    reversed_ops.reverse()
    return reversed_ops


def bitap_search(
    pattern: str,
    text: str,
    k: int,
    *,
    stats: Optional[KernelStats] = None,
    word_size: int = 64,
) -> List["SearchHit"]:
    """Classical Bitap approximate *search*: pattern anywhere in text.

    Unlike :func:`bitap_global`, the automaton restarts freely at every
    text position (bit 0 is re-injected each column — the original
    shift-and formulation), so bit ``n−1`` of ``R_d`` signals an occurrence
    of the whole pattern ending at that position with at most ``d`` errors.

    Returns:
        One :class:`SearchHit` per text position where the pattern matches
        with ≤ k errors, carrying the *smallest* error count at that end
        position.  Hits are ordered by end position.
    """
    n = len(pattern)
    m = len(text)
    if n == 0 or m == 0:
        raise ValueError("pattern and text must be non-empty")
    if k < 0:
        raise ValueError(f"error bound must be non-negative, got {k}")
    k = min(k, n)
    peq = build_peq(pattern)
    n_mask = (1 << n) - 1
    top_bit = 1 << (n - 1)
    words = -(-n // word_size)
    # Column 0 (empty text): prefix p[0..i] costs i+1 deletions, so bits
    # i ≤ d−1 start set — the same initialisation as the global variant;
    # the free restart enters through the per-column bit-0 injections.
    vectors = [((1 << d) - 1) & n_mask for d in range(k + 1)]
    hits: List[SearchHit] = []
    for j in range(1, m + 1):
        eq = peq.get(text[j - 1], 0)
        new: List[int] = []
        previous = vectors
        for d in range(k + 1):
            match = ((previous[d] << 1) | 1) & eq
            value = match
            if d > 0:
                substitution = (previous[d - 1] << 1) | 1
                insertion = previous[d - 1]
                deletion = (new[d - 1] << 1) | 1
                value |= substitution | insertion | deletion
            new.append(value & n_mask)
        vectors = new
        if stats is not None:
            steps = (k + 1) * words
            stats.add_instr("int_alu", BITAP_INSTRUCTIONS_PER_STEP * steps)
            stats.add_instr("load", 2 * steps)
            stats.add_instr("store", steps)
            stats.add_instr("branch", k + 1)
        for d in range(k + 1):
            if vectors[d] & top_bit:
                hits.append(SearchHit(end=j, errors=d))
                break
    return hits


@dataclass(frozen=True)
class SearchHit:
    """One approximate occurrence found by :func:`bitap_search`.

    Attributes:
        end: text position just past the occurrence (1-based end offset).
        errors: smallest error count of an occurrence ending there.
    """

    end: int
    errors: int


class BitapAligner(Aligner):
    """Exact global aligner via Bitap with a doubling error bound.

    Starts at ``k = max(|n−m|, 2)`` and doubles until the distance is found
    (every pass re-runs from scratch, as Bitap's state depends on k).  This
    is the CPU building block of ``Windowed(GenASM-CPU)``.
    """

    name = "Bitap"

    def __init__(self, word_size: int = 64):
        self.word_size = word_size

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        stats = KernelStats()
        n = len(pattern)
        m = len(text)
        k = max(abs(n - m), 2)
        limit = n + m
        while True:
            run = bitap_global(
                pattern, text, k, record=traceback, stats=stats,
                word_size=self.word_size,
            )
            if run.distance is not None:
                break
            if k >= limit:  # pragma: no cover - distance is always ≤ n+m
                raise RuntimeError("Bitap failed to find a distance")
            k = min(2 * k, limit)
        words = -(-n // self.word_size)
        stats.hot_bytes = 2 * (k + 1) * words * (self.word_size // 8)
        stats.dp_bytes_peak = max(
            stats.dp_bytes_peak,
            (k + 1) * (m + 1) * words * (self.word_size // 8)
            if traceback
            else 2 * (k + 1) * words * (self.word_size // 8),
        )
        alignment = None
        if traceback:
            ops = _traceback(pattern, text, run.history, run.distance)
            stats.add_instr("int_alu", 8 * len(ops))
            stats.add_instr("load", 3 * len(ops))
            alignment = Alignment(
                pattern=pattern, text=text, ops=tuple(ops), score=run.distance
            )
        return AlignmentResult(
            score=run.distance, alignment=alignment, stats=stats, exact=True
        )
