"""Full(BPM): the bit-parallel Myers algorithm (Myers 1999; paper §2.3).

Computes the DP matrix column-wise with the pattern packed into 64-bit
blocks (Hyyrö's multi-block generalisation).  Each (block, column) step
executes the classical 17 bitwise/arithmetic instructions.  Distance-only
mode keeps one column of state; alignment mode stores the four difference
masks (Pv, Mv, Ph, Mh) of every column — the ``4·n·m`` bits of DP state the
paper attributes to BPM (§3.1) — and walks them backwards.

This reuses :func:`repro.core.tile.advance_column`: GMX-Tile is an
extension of exactly this kernel, so the two share the column-step
semantics (with GMX replacing the 17-instruction software step by one
instruction over a T-row block).
"""

from __future__ import annotations

from typing import List, Tuple

from ..align.base import Aligner, AlignmentResult, KernelStats
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)
from ..core.tile import advance_column, build_peq

#: Bitwise/arithmetic instructions per (block, column) step (paper §2.3).
BPM_INSTRUCTIONS_PER_STEP = 17


class BpmAligner(Aligner):
    """Multi-block bit-parallel Myers aligner (the ``Full(BPM)`` baseline).

    Args:
        word_size: machine word width in bits (64 for the paper's RV64 cores).
    """

    name = "Full(BPM)"

    def __init__(self, word_size: int = 64):
        if word_size < 2:
            raise ValueError(f"word size must be at least 2, got {word_size}")
        self.word_size = word_size

    # -- helpers ---------------------------------------------------------------

    def _blocks(self, pattern: str) -> List[str]:
        w = self.word_size
        return [pattern[k : k + w] for k in range(0, len(pattern), w)]

    def _account_column_step(self, stats: KernelStats, store: bool) -> None:
        stats.add_instr("int_alu", BPM_INSTRUCTIONS_PER_STEP)
        stats.add_instr("load", 3)  # Peq + Pv + Mv
        stats.add_instr("branch", 1)
        stats.dp_bytes_read += 2 * (self.word_size // 8)
        if store:
            stats.add_instr("store", 4)
            stats.dp_bytes_written += 4 * (self.word_size // 8)
        else:
            stats.add_instr("store", 2)
            stats.dp_bytes_written += 2 * (self.word_size // 8)

    # -- alignment ---------------------------------------------------------------

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        stats = KernelStats()
        blocks = self._blocks(pattern)
        peqs = [build_peq(block) for block in blocks]
        n = len(pattern)
        m = len(text)
        word_bytes = self.word_size // 8

        # Per-block vertical state; boundary Δv = +1 ⇒ Pv all ones.
        pv = [(1 << len(block)) - 1 for block in blocks]
        mv = [0] * len(blocks)
        score = n  # D[n][0]
        history: List[List[Tuple[int, int, int, int]]] = []
        for t_char in text:
            h_in = 1  # top boundary Δh = +1
            column: List[Tuple[int, int, int, int]] = []
            for b, block in enumerate(blocks):
                pv[b], mv[b], h_in, ph, mh = advance_column(
                    peqs[b].get(t_char, 0), pv[b], mv[b], h_in, len(block)
                )
                if traceback:
                    column.append((pv[b], mv[b], ph, mh))
                self._account_column_step(stats, traceback)
            score += h_in  # Δh at the bottom row
            stats.dp_cells += n
            if traceback:
                history.append(column)
        stats.hot_bytes = 2 * word_bytes * len(blocks)
        if traceback:
            stats.dp_bytes_peak = 4 * word_bytes * len(blocks) * m
            ops = self._traceback(pattern, text, history)
            stats.add_instr("int_alu", 6 * len(ops))
            stats.add_instr("load", 2 * len(ops))
            alignment = Alignment(
                pattern=pattern, text=text, ops=tuple(ops), score=score
            )
        else:
            stats.dp_bytes_peak = 2 * word_bytes * len(blocks)
            alignment = None
        return AlignmentResult(
            score=score, alignment=alignment, stats=stats, exact=True
        )

    def _traceback(
        self,
        pattern: str,
        text: str,
        history: List[List[Tuple[int, int, int, int]]],
    ) -> List[str]:
        """Walk the stored per-column difference masks from (n−1, m−1)."""
        w = self.word_size

        def dv(i: int, j: int) -> int:
            pv, mv, _, _ = history[j][i // w]
            bit = 1 << (i % w)
            return 1 if pv & bit else (-1 if mv & bit else 0)

        def dh(i: int, j: int) -> int:
            _, _, ph, mh = history[j][i // w]
            bit = 1 << (i % w)
            return 1 if ph & bit else (-1 if mh & bit else 0)

        i = len(pattern) - 1
        j = len(text) - 1
        reversed_ops: List[str] = []
        while i >= 0 and j >= 0:
            if pattern[i] == text[j]:
                reversed_ops.append(OP_MATCH)
                i -= 1
                j -= 1
            elif dv(i, j) == 1:
                reversed_ops.append(OP_DELETION)
                i -= 1
            elif dh(i, j) == 1:
                reversed_ops.append(OP_INSERTION)
                j -= 1
            else:
                reversed_ops.append(OP_MISMATCH)
                i -= 1
                j -= 1
        reversed_ops.extend([OP_DELETION] * (i + 1))
        reversed_ops.extend([OP_INSERTION] * (j + 1))
        reversed_ops.reverse()
        return reversed_ops
