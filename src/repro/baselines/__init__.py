"""Software baselines from the paper's evaluation (§7.1).

Every comparator in Figures 3/10/11/12/14/15 is implemented functionally:

* ``Full(DP)``              — :class:`NeedlemanWunschAligner`
* ``Full(BPM)``             — :class:`BpmAligner`
* ``Banded(Edlib)``         — :class:`EdlibAligner`
* ``Windowed(GenASM-CPU)``  — :class:`GenasmCpuAligner`
* ``Darwin (GACT)``         — :class:`DarwinGactAligner`
* ``KSW2`` (gap-affine)     — :class:`AffineAligner`, :func:`affine_score`,
  :func:`affine_score_banded`
* Bitap substrate           — :class:`BitapAligner`, :func:`bitap_global`
"""

from .bitap import BitapAligner, SearchHit, bitap_global, bitap_search
from .bpm import BpmAligner
from .darwin import DARWIN_OVERLAP, DARWIN_WINDOW, DarwinGactAligner
from .edlib_like import EdlibAligner
from .genasm import GENASM_OVERLAP, GENASM_WINDOW, GenasmCpuAligner
from .hirschberg import HirschbergAligner
from .nw import NeedlemanWunschAligner, SmithWatermanAligner
from .wfa import WfaAligner
from .swg import (
    AffineAligner,
    AffinePenalties,
    affine_score,
    affine_score_banded,
    transition_transversion_matrix,
)

__all__ = [
    "AffineAligner",
    "AffinePenalties",
    "BitapAligner",
    "BpmAligner",
    "DARWIN_OVERLAP",
    "DARWIN_WINDOW",
    "DarwinGactAligner",
    "EdlibAligner",
    "GENASM_OVERLAP",
    "GENASM_WINDOW",
    "GenasmCpuAligner",
    "HirschbergAligner",
    "NeedlemanWunschAligner",
    "SearchHit",
    "SmithWatermanAligner",
    "WfaAligner",
    "affine_score",
    "affine_score_banded",
    "bitap_global",
    "bitap_search",
    "transition_transversion_matrix",
]
