"""Darwin's GACT: windowed gap-affine alignment (Turakhia et al., ASPLOS 2018).

GACT (Genome Alignment using Constant memory Traceback) tiles the DP matrix
into overlapping windows and runs a full gap-affine (Smith-Waterman-Gotoh)
alignment inside each, committing the traceback outside the overlap.  Darwin
implements GACT with a systolic ASIC array; this module provides the
functional algorithm, which both the ``Darwin`` comparator of Figure 15 and
its performance model in :mod:`repro.sim.accelerators` build on.

The paper's DSA comparison (§7.4) runs all three accelerators with the same
window configuration, W = 96 and O = 32.
"""

from __future__ import annotations

from ..align.windowed_gmx import WindowedAligner
from .swg import AffineAligner, AffinePenalties

#: Window configuration used in the paper's §7.4 comparison.
DARWIN_WINDOW = 96
DARWIN_OVERLAP = 32


class DarwinGactAligner(WindowedAligner):
    """Darwin's GACT windowed gap-affine aligner.

    The overall reported score is the edit cost of the stitched alignment
    (for comparability with the edit-distance aligners); the gap-affine
    penalty of the result is available via
    ``result.alignment.affine_score()``.

    Args:
        window: W (default 96).
        overlap: O (default 32).
        penalties: gap-affine penalties used inside each window.
    """

    name = "Darwin(GACT)"

    def __init__(
        self,
        window: int = DARWIN_WINDOW,
        overlap: int = DARWIN_OVERLAP,
        penalties: AffinePenalties = AffinePenalties(),
    ):
        super().__init__(
            inner=AffineAligner(penalties=penalties),
            window=window,
            overlap=overlap,
        )

    def _window_state_bytes(self) -> int:
        # Three 4-byte DP matrices (H, E, F) over one window.
        return 12 * (self.window + 1) * (self.window + 1)
