"""Wavefront alignment (WFA) for edit distance — the algorithmic frontier.

The paper's dataset methodology comes from the WFA work (Marco-Sola et
al., 2021 — the same group), and WFA is the modern software yardstick for
*exact* alignment: O(n·s) time and O(s²) traceback state, where s is the
alignment score.  On low-divergence pairs it does asymptotically less
work than any matrix-region method, including Full(GMX) — the interesting
question (posed by the ablation bench ``test_abl_wfa_crossover.py``) is
where GMX's 1024-cells-per-instruction brute force crosses WFA's
score-bounded cleverness.

This is the edit-distance WFA: per score s, a wavefront stores the
furthest text offset reachable on each diagonal after greedy match
extension; mismatch/insertion/deletion each advance score by one.
Traceback keeps all wavefronts and walks predecessors.
"""

from __future__ import annotations

from typing import Dict, List

from ..align.base import Aligner, AlignmentResult, KernelStats
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)

#: Sentinel for unreachable diagonals.
_UNSET = -(1 << 30)


class WfaAligner(Aligner):
    """Exact edit-distance aligner via wavefronts (WFA, edit metric).

    Instruction recipe: ~6 int ops per wavefront cell (offset update +
    max-select) plus 1 per matched character during extension; the
    wavefront state is 4 bytes per (score, diagonal) cell — Θ(s²) total
    with traceback, Θ(s) without.
    """

    name = "WFA(edit)"

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        n = len(pattern)
        m = len(text)
        stats = KernelStats()
        target_diagonal = m - n

        def extend(k: int, offset: int) -> int:
            """Greedy match extension along diagonal k from text offset."""
            i = offset - k
            j = offset
            while i < n and j < m and pattern[i] == text[j]:
                i += 1
                j += 1
            stats.add_instr("int_alu", j - offset + 1)
            return j

        # wavefronts[s] maps diagonal -> furthest text offset.
        front: Dict[int, int] = {0: extend(0, 0)}
        wavefronts: List[Dict[int, int]] = [dict(front)]
        score = 0
        while front.get(target_diagonal, _UNSET) < m:
            score += 1
            previous = front
            low = min(previous) - 1
            high = max(previous) + 1
            front = {}
            for k in range(low, high + 1):
                best = _UNSET
                mismatch = previous.get(k, _UNSET)
                if mismatch != _UNSET:
                    best = max(best, mismatch + 1)
                insertion = previous.get(k - 1, _UNSET)
                if insertion != _UNSET:
                    best = max(best, insertion + 1)
                deletion = previous.get(k + 1, _UNSET)
                if deletion != _UNSET:
                    best = max(best, deletion)
                if best == _UNSET:
                    continue
                # Clip to the matrix: offsets beyond the sequences are dead.
                if best > m or best - k > n:
                    best = min(best, m)
                    if best - k > n:
                        continue
                front[k] = extend(k, best)
                stats.add_instr("int_alu", 6)
                stats.add_instr("load", 3)
                stats.add_instr("store", 1)
                stats.dp_cells += 1
                stats.dp_bytes_written += 4
                stats.dp_bytes_read += 12
            if traceback:
                wavefronts.append(dict(front))
            if score > n + m:  # pragma: no cover - defensive
                raise RuntimeError("WFA failed to converge")
        stats.hot_bytes = 4 * (2 * score + 1)
        stats.dp_bytes_peak = (
            sum(4 * len(w) for w in wavefronts) if traceback else stats.hot_bytes
        )
        alignment = None
        if traceback:
            ops = self._traceback(pattern, text, wavefronts, score)
            alignment = Alignment(
                pattern=pattern, text=text, ops=tuple(ops), score=score
            )
        return AlignmentResult(
            score=score, alignment=alignment, stats=stats, exact=True
        )

    def _traceback(
        self,
        pattern: str,
        text: str,
        wavefronts: List[Dict[int, int]],
        score: int,
    ) -> List[str]:
        """Walk predecessors from (score, m−n) back to the origin."""
        n = len(pattern)
        m = len(text)
        k = m - n
        offset = wavefronts[score][k]
        reversed_ops: List[str] = []

        def emit_matches(k: int, from_offset: int, to_offset: int) -> None:
            for j in range(to_offset - 1, from_offset - 1, -1):
                assert pattern[j - k] == text[j]
                reversed_ops.append(OP_MATCH)

        for s in range(score, 0, -1):
            previous = wavefronts[s - 1]
            mismatch = previous.get(k, _UNSET)
            insertion = previous.get(k - 1, _UNSET)
            deletion = previous.get(k + 1, _UNSET)
            entry = max(
                mismatch + 1 if mismatch != _UNSET else _UNSET,
                insertion + 1 if insertion != _UNSET else _UNSET,
                deletion if deletion != _UNSET else _UNSET,
            )
            entry = min(entry, offset)  # matches extended past the entry
            emit_matches(k, entry, offset)
            if deletion != _UNSET and deletion == entry:
                reversed_ops.append(OP_DELETION)
                k += 1
                offset = deletion
            elif insertion != _UNSET and insertion + 1 == entry:
                reversed_ops.append(OP_INSERTION)
                k -= 1
                offset = insertion
            else:
                reversed_ops.append(OP_MISMATCH)
                offset = entry - 1
        # Score 0: the initial extension from the origin.
        emit_matches(0, 0, offset)
        reversed_ops.reverse()
        return reversed_ops
