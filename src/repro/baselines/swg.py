"""Gap-affine alignment (Gotoh / KSW2-like) — the Figure-3 comparator.

Implements global alignment under gap-affine penalties (match / mismatch /
gap-open / gap-extend, minimisation form) three ways:

* :func:`affine_score` — exact score via NumPy-vectorised antidiagonals
  (O(nm) cells, three matrices, no traceback storage);
* :func:`affine_score_banded` — the banded heuristic (KSW2's ``-w`` band in
  Minimap2), optionally with a Z-drop early exit; may miss the optimum;
* :class:`AffineAligner` — full Gotoh with traceback (pure Python; used for
  Darwin's GACT windows and for tests).

Penalty defaults follow the common short-read preset (0 / 4 / 6 / 2), the
same shape as KSW2's defaults; the paper's Figure 3 measures how far
edit-distance alignments deviate from the optimum under such a model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..align.base import Aligner, AlignmentResult, KernelStats
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
    edit_cost,
)

#: Sentinel for unreachable DP states (safe against int32 overflow).
INF = 1 << 28


@dataclass(frozen=True)
class AffinePenalties:
    """Gap-affine penalty set (minimisation: lower is better).

    A gap of length ℓ costs ``gap_open + ℓ · gap_extend``.  An optional
    substitution matrix refines the flat mismatch penalty per character
    pair — e.g. the transition/transversion weighting of
    :func:`transition_transversion_matrix`, or any protein cost matrix.
    Unlisted pairs fall back to match/mismatch.
    """

    match: int = 0
    mismatch: int = 4
    gap_open: int = 6
    gap_extend: int = 2
    matrix: Optional[Mapping[Tuple[str, str], int]] = None

    def gap(self, length: int) -> int:
        """Penalty of a gap of the given length."""
        return self.gap_open + length * self.gap_extend if length else 0

    def substitution(self, a: str, b: str) -> int:
        """Cost of aligning character ``a`` (pattern) with ``b`` (text)."""
        if self.matrix is not None:
            cost = self.matrix.get((a, b))
            if cost is None:
                cost = self.matrix.get((b, a))
            if cost is not None:
                return cost
        return self.match if a == b else self.mismatch

    def substitution_table(self) -> np.ndarray:
        """128×128 cost lookup over byte codes (for vectorised kernels)."""
        table = np.full((128, 128), self.mismatch, dtype=np.int64)
        np.fill_diagonal(table, self.match)
        if self.matrix is not None:
            for (a, b), cost in self.matrix.items():
                table[ord(a) & 127, ord(b) & 127] = cost
                table[ord(b) & 127, ord(a) & 127] = cost
        return table


def transition_transversion_matrix(
    transition: int = 2, transversion: int = 4
) -> Dict[Tuple[str, str], int]:
    """DNA substitution costs weighting transitions below transversions.

    Transitions (A↔G, C↔T) are chemically alike and far more frequent in
    real genomes, so weighted edit models price them lower — the standard
    refinement over flat mismatch costs (§2.4's "weighted distance
    functions ... capture meaningful biological insights").
    """
    if not 0 < transition <= transversion:
        raise ValueError(
            f"need 0 < transition ≤ transversion, got {transition}/{transversion}"
        )
    matrix: Dict[Tuple[str, str], int] = {}
    purines = "AG"
    pyrimidines = "CT"
    for a in "ACGT":
        for b in "ACGT":
            if a == b:
                continue
            alike = (a in purines and b in purines) or (
                a in pyrimidines and b in pyrimidines
            )
            matrix[(a, b)] = transition if alike else transversion
    return matrix


def _codes(sequence: str) -> np.ndarray:
    return np.frombuffer(sequence.encode("latin-1"), dtype=np.uint8)


def _antidiagonal_pass(
    pattern: str,
    text: str,
    penalties: AffinePenalties,
    band: Optional[int],
    zdrop: Optional[int],
) -> int:
    """Shared antidiagonal engine for full and banded affine scores.

    Returns INF when a band/Z-drop heuristic cut the corner off.
    """
    n = len(pattern)
    m = len(text)
    p_codes = _codes(pattern)
    t_codes = _codes(text)
    oe = penalties.gap_open + penalties.gap_extend
    extend = penalties.gap_extend
    sub_x = penalties.mismatch
    sub_m = penalties.match
    sub_table = (
        penalties.substitution_table() if penalties.matrix is not None else None
    )

    # Arrays are indexed by i (pattern position, 0..n) per antidiagonal d.
    h_prev2 = np.full(n + 1, INF, dtype=np.int64)
    h_prev1 = np.full(n + 1, INF, dtype=np.int64)
    e_prev1 = np.full(n + 1, INF, dtype=np.int64)
    f_prev1 = np.full(n + 1, INF, dtype=np.int64)
    h_prev2[0] = 0  # H[0][0]
    if n >= 1:
        h_prev1[1] = penalties.gap(1)  # H[1][0]
        f_prev1[1] = penalties.gap(1)
    h_prev1[0] = penalties.gap(1) if m >= 1 else INF  # H[0][1]
    e_prev1[0] = penalties.gap(1) if m >= 1 else INF
    best_seen = 0
    for d in range(2, n + m + 1):
        h_cur = np.full(n + 1, INF, dtype=np.int64)
        e_cur = np.full(n + 1, INF, dtype=np.int64)
        f_cur = np.full(n + 1, INF, dtype=np.int64)
        i_lo = max(1, d - m)
        i_hi = min(n, d - 1)  # interior cells (j ≥ 1)
        if band is not None:
            # |i - j| ≤ band with j = d - i  ⇒  (d - band)/2 ≤ i ≤ (d + band)/2
            i_lo = max(i_lo, -(-(d - band) // 2))
            i_hi = min(i_hi, (d + band) // 2)
        if i_lo <= i_hi:
            sl = slice(i_lo, i_hi + 1)
            e_cur[sl] = np.minimum(h_prev1[sl] + oe, e_prev1[sl] + extend)
            sl_up = slice(i_lo - 1, i_hi)
            f_cur[sl] = np.minimum(h_prev1[sl_up] + oe, f_prev1[sl_up] + extend)
            p_slice = p_codes[i_lo - 1 : i_hi]
            t_slice = t_codes[d - i_hi - 1 : d - i_lo][::-1]
            if sub_table is None:
                sub = np.where(p_slice == t_slice, sub_m, sub_x)
            else:
                sub = sub_table[p_slice & 127, t_slice & 127]
            diag = h_prev2[i_lo - 1 : i_hi] + sub
            h_cur[sl] = np.minimum(np.minimum(e_cur[sl], f_cur[sl]), diag)
        # Boundary cells of this antidiagonal.
        if d <= m and (band is None or d <= band):
            h_cur[0] = penalties.gap(d)
            e_cur[0] = penalties.gap(d)
        if d <= n and (band is None or d <= band):
            h_cur[d] = penalties.gap(d)
            f_cur[d] = penalties.gap(d)
        if zdrop is not None:
            diag_min = int(h_cur.min())
            if diag_min >= INF:
                return INF
            best_seen = min(best_seen, diag_min)
            if diag_min > best_seen + zdrop:
                return INF
        h_prev2 = h_prev1
        h_prev1 = h_cur
        e_prev1 = e_cur
        f_prev1 = f_cur
    final = h_prev1 if n + m >= 1 else h_prev2
    return int(final[n]) if final[n] < INF else INF


def affine_score(
    pattern: str, text: str, penalties: AffinePenalties = AffinePenalties()
) -> int:
    """Exact global gap-affine penalty of the optimal alignment."""
    if not pattern or not text:
        raise ValueError("pattern and text must be non-empty")
    return _antidiagonal_pass(pattern, text, penalties, band=None, zdrop=None)


def affine_score_banded(
    pattern: str,
    text: str,
    band: int,
    penalties: AffinePenalties = AffinePenalties(),
    zdrop: Optional[int] = None,
) -> int:
    """Banded (and optionally Z-dropped) gap-affine penalty.

    Mirrors Minimap2's banded KSW2: exact when the optimal path stays within
    ``band`` of the diagonal, otherwise an over-estimate; returns
    :data:`INF` when the heuristics disconnect the corner.
    """
    if not pattern or not text:
        raise ValueError("pattern and text must be non-empty")
    if band < abs(len(pattern) - len(text)):
        return INF
    return _antidiagonal_pass(pattern, text, penalties, band=band, zdrop=zdrop)


class AffineAligner(Aligner):
    """Full Gotoh gap-affine aligner with traceback.

    Conventions: :attr:`AlignmentResult.score` carries the *affine penalty*;
    the embedded :class:`Alignment` carries its own edit cost (so that
    ``Alignment.validate`` remains meaningful).  Pure Python — intended for
    window-sized problems (Darwin GACT) and for tests; use
    :func:`affine_score` for big score-only runs.
    """

    name = "KSW2(affine)"

    def __init__(self, penalties: AffinePenalties = AffinePenalties()):
        self.penalties = penalties

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        pen = self.penalties
        n = len(pattern)
        m = len(text)
        stats = KernelStats()
        stats.dp_cells = n * m
        stats.add_instr("int_alu", 12 * n * m)
        stats.add_instr("load", 3 * n * m)
        stats.add_instr("store", 3 * n * m)
        stats.dp_bytes_written += 12 * n * m
        stats.dp_bytes_read += 24 * n * m
        stats.dp_bytes_peak = 12 * (n + 1) * (m + 1) if traceback else 24 * (m + 1)
        stats.hot_bytes = 24 * (m + 1)
        oe = pen.gap_open + pen.gap_extend
        ext = pen.gap_extend
        h = [[INF] * (m + 1) for _ in range(n + 1)]
        e = [[INF] * (m + 1) for _ in range(n + 1)]
        f = [[INF] * (m + 1) for _ in range(n + 1)]
        h[0][0] = 0
        for j in range(1, m + 1):
            e[0][j] = pen.gap(j)
            h[0][j] = e[0][j]
        for i in range(1, n + 1):
            f[i][0] = pen.gap(i)
            h[i][0] = f[i][0]
        for i in range(1, n + 1):
            p_char = pattern[i - 1]
            for j in range(1, m + 1):
                e[i][j] = min(h[i][j - 1] + oe, e[i][j - 1] + ext)
                f[i][j] = min(h[i - 1][j] + oe, f[i - 1][j] + ext)
                sub = pen.substitution(p_char, text[j - 1])
                h[i][j] = min(h[i - 1][j - 1] + sub, e[i][j], f[i][j])
        penalty = h[n][m]
        alignment = None
        if traceback:
            ops = self._traceback(pattern, text, h, e, f)
            alignment = Alignment(
                pattern=pattern, text=text, ops=tuple(ops), score=edit_cost(ops)
            )
        return AlignmentResult(
            score=penalty, alignment=alignment, stats=stats, exact=True
        )

    def _traceback(
        self,
        pattern: str,
        text: str,
        h: List[List[int]],
        e: List[List[int]],
        f: List[List[int]],
    ) -> List[str]:
        pen = self.penalties
        oe = pen.gap_open + pen.gap_extend
        ext = pen.gap_extend
        i = len(pattern)
        j = len(text)
        state = "H"
        reversed_ops: List[str] = []
        while i > 0 and j > 0:
            if state == "H":
                sub = pen.substitution(pattern[i - 1], text[j - 1])
                if h[i][j] == h[i - 1][j - 1] + sub:
                    reversed_ops.append(
                        OP_MATCH if pattern[i - 1] == text[j - 1] else OP_MISMATCH
                    )
                    i -= 1
                    j -= 1
                elif h[i][j] == e[i][j]:
                    state = "E"
                else:
                    state = "F"
            elif state == "E":
                reversed_ops.append(OP_INSERTION)
                if e[i][j] == e[i][j - 1] + ext:
                    j -= 1
                else:
                    j -= 1
                    state = "H"
            else:  # state == "F"
                reversed_ops.append(OP_DELETION)
                if f[i][j] == f[i - 1][j] + ext:
                    i -= 1
                else:
                    i -= 1
                    state = "H"
        reversed_ops.extend([OP_DELETION] * i)
        reversed_ops.extend([OP_INSERTION] * j)
        reversed_ops.reverse()
        return reversed_ops
