"""Banded(Edlib): block-banded bit-parallel Myers with a doubling threshold.

Edlib (Šošić & Šikić 2017) computes the edit distance exactly by running
Myers' block algorithm inside a Ukkonen band of half-width k and doubling k
until the result self-certifies (score ≤ k).  This module reproduces that
strategy with the band quantised to word-sized row blocks:

* block ``b`` (rows ``[b·w, b·w + w)``) is active at text column ``j`` when
  it intersects the band ``|i − j| ≤ k``;
* blocks activating at the band's lower edge start with Pv = all-ones —
  the same +1 over-estimate fill used by Banded(GMX), and the top-of-band
  horizontal carry is +1 (identical to the matrix boundary value, which is
  why one fill constant serves both);
* the score of the lowest active row is tracked incrementally, so the final
  corner value D[n][m] is available without bottom-row storage.

Exactness follows Ukkonen's argument: an optimal path strays at most
``score`` cells off the diagonal, so a result with ``score ≤ k`` is optimal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..align.base import (
    Aligner,
    AlignmentResult,
    BandExceededError,
    KernelStats,
)
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)
from ..core.tile import advance_column, build_peq
from .bpm import BPM_INSTRUCTIONS_PER_STEP


class EdlibAligner(Aligner):
    """Exact banded edit-distance aligner (the ``Banded(Edlib)`` baseline).

    Args:
        word_size: block height in rows (64 on the paper's RV64 cores).
        initial_k: starting band half-width; ``None`` uses
            ``max(|n−m|, word_size/2)`` per pair.
    """

    name = "Banded(Edlib)"

    def __init__(self, word_size: int = 64, initial_k: Optional[int] = None):
        if word_size < 2:
            raise ValueError(f"word size must be at least 2, got {word_size}")
        self.word_size = word_size
        self.initial_k = initial_k

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        n = len(pattern)
        m = len(text)
        stats = KernelStats()
        k = self.initial_k
        if k is None:
            k = max(abs(n - m), self.word_size // 2)
        k = max(k, abs(n - m))
        limit = n + m
        while True:
            try:
                score, alignment = self._banded_pass(
                    pattern, text, k, traceback, stats
                )
            except BandExceededError:
                k = min(2 * k, limit)
                continue
            if score <= k or k >= limit:
                return AlignmentResult(
                    score=score, alignment=alignment, stats=stats, exact=True
                )
            k = min(2 * k, limit)

    # -- one banded pass -------------------------------------------------------

    def _active_range(self, j: int, k: int, n_blocks: int) -> Tuple[int, int]:
        """Active block range for text column ``j`` (0-based cell column)."""
        w = self.word_size
        lo = max(0, (j - k) // w)
        hi = min(n_blocks - 1, (j + k) // w)
        return lo, hi

    def _banded_pass(
        self,
        pattern: str,
        text: str,
        k: int,
        traceback: bool,
        stats: KernelStats,
    ) -> Tuple[int, Optional[Alignment]]:
        w = self.word_size
        n = len(pattern)
        m = len(text)
        blocks = [pattern[b : b + w] for b in range(0, n, w)]
        peqs = [build_peq(block) for block in blocks]
        n_blocks = len(blocks)
        word_bytes = w // 8
        # Peq construction cost (the preprocessing GMX removes).
        stats.add_instr("int_alu", 2 * n)
        stats.add_instr("store", n // 8 + 1)

        def rows_through(block: int) -> int:
            return min((block + 1) * w, n)

        pv: Dict[int, int] = {}
        mv: Dict[int, int] = {}
        lo0, hi0 = self._active_range(0, k, n_blocks)
        for b in range(lo0, hi0 + 1):
            pv[b] = (1 << len(blocks[b])) - 1
            mv[b] = 0
        bottom_score = rows_through(hi0)
        prev_hi = hi0
        history: List[Tuple[int, int, Dict[int, Tuple[int, int, int, int]]]] = []
        max_live = hi0 - lo0 + 1
        for j in range(m):
            lo, hi = self._active_range(j, k, n_blocks)
            # Newly active blocks at the band's lower edge: +1 fill.
            for b in range(prev_hi + 1, hi + 1):
                pv[b] = (1 << len(blocks[b])) - 1
                mv[b] = 0
                bottom_score += rows_through(b) - rows_through(b - 1)
            for b in list(pv):
                if b < lo:
                    del pv[b], mv[b]
            prev_hi = hi
            h_in = 1  # matrix top boundary and out-of-band fill coincide
            column: Dict[int, Tuple[int, int, int, int]] = {}
            for b in range(lo, hi + 1):
                pv[b], mv[b], h_in, ph, mh = advance_column(
                    peqs[b].get(text[j], 0), pv[b], mv[b], h_in, len(blocks[b])
                )
                if traceback:
                    column[b] = (pv[b], mv[b], ph, mh)
                stats.add_instr("int_alu", BPM_INSTRUCTIONS_PER_STEP)
                stats.add_instr("load", 3)
                stats.add_instr("branch", 1)
                stats.dp_cells += len(blocks[b])
                stats.dp_bytes_read += 2 * word_bytes
                if traceback:
                    stats.add_instr("store", 4)
                    stats.dp_bytes_written += 4 * word_bytes
                else:
                    stats.add_instr("store", 2)
                    stats.dp_bytes_written += 2 * word_bytes
            bottom_score += h_in
            max_live = max(max_live, hi - lo + 1)
            if traceback:
                history.append((lo, hi, column))
        if prev_hi != n_blocks - 1:  # pragma: no cover - k ≥ |n−m| prevents this
            raise BandExceededError("band never reached the bottom row")
        score = bottom_score
        stats.hot_bytes = max(stats.hot_bytes or 0, 2 * word_bytes * max_live)
        stats.dp_bytes_peak = max(
            stats.dp_bytes_peak,
            (4 * word_bytes * sum(h - l + 1 for l, h, _ in history))
            if traceback
            else 2 * word_bytes * max_live,
        )
        alignment = None
        if traceback:
            ops = self._traceback(pattern, text, history)
            stats.add_instr("int_alu", 6 * len(ops))
            stats.add_instr("load", 2 * len(ops))
            alignment = Alignment(
                pattern=pattern, text=text, ops=tuple(ops), score=score
            )
        return score, alignment

    def _traceback(
        self,
        pattern: str,
        text: str,
        history: List[Tuple[int, int, Dict[int, Tuple[int, int, int, int]]]],
    ) -> List[str]:
        w = self.word_size

        def deltas(i: int, j: int) -> Tuple[int, int]:
            lo, hi, column = history[j]
            b = i // w
            if b not in column:
                raise BandExceededError(
                    f"traceback left the band at cell ({i}, {j})"
                )
            pv, mv, ph, mh = column[b]
            bit = 1 << (i % w)
            dv = 1 if pv & bit else (-1 if mv & bit else 0)
            dh = 1 if ph & bit else (-1 if mh & bit else 0)
            return dv, dh

        i = len(pattern) - 1
        j = len(text) - 1
        reversed_ops: List[str] = []
        while i >= 0 and j >= 0:
            if pattern[i] == text[j]:
                reversed_ops.append(OP_MATCH)
                i -= 1
                j -= 1
                continue
            dv, dh = deltas(i, j)
            if dv == 1:
                reversed_ops.append(OP_DELETION)
                i -= 1
            elif dh == 1:
                reversed_ops.append(OP_INSERTION)
                j -= 1
            else:
                reversed_ops.append(OP_MISMATCH)
                i -= 1
                j -= 1
        reversed_ops.extend([OP_DELETION] * (i + 1))
        reversed_ops.extend([OP_INSERTION] * (j + 1))
        reversed_ops.reverse()
        return reversed_ops
