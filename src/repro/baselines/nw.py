"""Full(DP): classical element-wise dynamic programming (paper §2.2).

Implements the unit-cost edit-distance recurrence of Needleman–Wunsch /
Sellers — the ``Full(DP)`` baseline of Figures 10/11/14 — plus a
Smith–Waterman local-alignment variant for completeness (§2.4 mentions both
as the classical weighted-distance algorithms).

Instruction recipe, per DP element (paper §4.2 counts 5 full-integer
instructions): 3 additions/comparisons for the three predecessors, 1
character comparison, 1 min-select; plus 1 load + 1 store of the element
and 1 branch per row.  The full matrix (4 bytes per element) is stored when
traceback is requested — the quadratic footprint that motivates GMX.
"""

from __future__ import annotations

from typing import List

from ..align.base import Aligner, AlignmentMode, AlignmentResult, KernelStats
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)


class NeedlemanWunschAligner(Aligner):
    """Exact full-matrix edit-distance aligner (the ``Full(DP)`` baseline).

    Supports the three anchoring modes of :class:`AlignmentMode`; GLOBAL is
    the paper's Full(DP) baseline, PREFIX/INFIX serve as the independent
    reference for the GMX aligners' mode support.

    Args:
        mode: where the alignment is anchored (default GLOBAL).
    """

    name = "Full(DP)"

    def __init__(self, mode: AlignmentMode = AlignmentMode.GLOBAL):
        self.mode = mode

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        n = len(pattern)
        m = len(text)
        stats = KernelStats()
        stats.dp_cells = n * m
        stats.add_instr("int_alu", 5 * n * m)
        stats.add_instr("load", n * m)
        stats.add_instr("store", n * m)
        stats.add_instr("branch", n)
        stats.dp_bytes_written += 4 * n * m
        stats.dp_bytes_read += 12 * n * m
        stats.hot_bytes = 4 * 2 * (m + 1)

        if traceback:
            rows = self._fill_matrix(pattern, text)
            score, end_column = self._score(rows, m)
            stats.dp_bytes_peak = 4 * (n + 1) * (m + 1)
            ops, start_column = self._traceback(pattern, text, rows, end_column)
            stats.add_instr("int_alu", 4 * len(ops))
            stats.add_instr("load", 3 * len(ops))
            stats.dp_bytes_read += 12 * len(ops)
            alignment = Alignment(
                pattern=pattern,
                text=text[start_column:end_column],
                ops=tuple(ops),
                score=score,
            )
            return AlignmentResult(
                score=score,
                alignment=alignment,
                stats=stats,
                exact=True,
                text_start=start_column,
                text_end=end_column,
            )

        score, end_column = self._score_rows(pattern, text)
        stats.dp_bytes_peak = 4 * 2 * (m + 1)
        return AlignmentResult(
            score=score,
            alignment=None,
            stats=stats,
            exact=True,
            text_end=end_column,
        )

    def _top_row(self, m: int) -> List[int]:
        """D[0][·]: zero in INFIX mode (free text prefix), j otherwise."""
        if self.mode is AlignmentMode.INFIX:
            return [0] * (m + 1)
        return list(range(m + 1))

    def _score(self, rows: List[List[int]], m: int):
        """(score, end column) given the filled matrix."""
        bottom = rows[-1]
        if self.mode is AlignmentMode.GLOBAL:
            return bottom[m], m
        best = min(bottom)
        return best, bottom.index(best)

    def _score_rows(self, pattern: str, text: str):
        """Two-row distance-only computation."""
        m = len(text)
        previous = self._top_row(m)
        for i, p_char in enumerate(pattern, start=1):
            current = [i] + [0] * m
            for j, t_char in enumerate(text, start=1):
                current[j] = min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (p_char != t_char),
                )
            previous = current
        if self.mode is AlignmentMode.GLOBAL:
            return previous[m], m
        best = min(previous)
        return best, previous.index(best)

    def _fill_matrix(self, pattern: str, text: str) -> List[List[int]]:
        """Full (n+1)×(m+1) DP matrix, stored for traceback."""
        m = len(text)
        rows = [self._top_row(m)]
        for i, p_char in enumerate(pattern, start=1):
            row = [i] + [0] * m
            above = rows[i - 1]
            for j, t_char in enumerate(text, start=1):
                row[j] = min(
                    above[j] + 1,
                    row[j - 1] + 1,
                    above[j - 1] + (p_char != t_char),
                )
            rows.append(row)
        return rows

    def _traceback(
        self,
        pattern: str,
        text: str,
        rows: List[List[int]],
        end_column: int,
    ):
        """Walk from (n, end_column) to the top; returns (ops, start col)."""
        i = len(pattern)
        j = end_column
        reversed_ops: List[str] = []
        while i > 0 and j > 0:
            here = rows[i][j]
            if pattern[i - 1] == text[j - 1] and here == rows[i - 1][j - 1]:
                reversed_ops.append(OP_MATCH)
                i -= 1
                j -= 1
            elif here == rows[i - 1][j] + 1:
                reversed_ops.append(OP_DELETION)
                i -= 1
            elif here == rows[i][j - 1] + 1:
                reversed_ops.append(OP_INSERTION)
                j -= 1
            else:
                reversed_ops.append(OP_MISMATCH)
                i -= 1
                j -= 1
        reversed_ops.extend([OP_DELETION] * i)
        if self.mode is AlignmentMode.INFIX:
            start_column = j  # free text prefix: stop here
        else:
            reversed_ops.extend([OP_INSERTION] * j)
            start_column = 0
        reversed_ops.reverse()
        return reversed_ops, start_column


class SmithWatermanAligner(Aligner):
    """Local alignment with linear gap scores (Smith–Waterman).

    Scores default to the classical +1 match / −1 mismatch / −1 gap.  The
    reported ``score`` is the best local score *negated* so that the
    :class:`Aligner` convention of lower-is-better is preserved; the
    alignment covers the best-scoring local segment only.
    """

    name = "SW(local)"

    def __init__(self, match: int = 1, mismatch: int = -1, gap: int = -1):
        if match <= 0:
            raise ValueError("match score must be positive for local alignment")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        n = len(pattern)
        m = len(text)
        stats = KernelStats()
        stats.dp_cells = n * m
        stats.add_instr("int_alu", 6 * n * m)
        stats.add_instr("load", n * m)
        stats.add_instr("store", n * m)
        stats.dp_bytes_peak = 4 * (n + 1) * (m + 1)
        rows = [[0] * (m + 1) for _ in range(n + 1)]
        best = 0
        best_cell = (0, 0)
        for i, p_char in enumerate(pattern, start=1):
            for j, t_char in enumerate(text, start=1):
                diagonal = rows[i - 1][j - 1] + (
                    self.match if p_char == t_char else self.mismatch
                )
                value = max(
                    0, diagonal, rows[i - 1][j] + self.gap, rows[i][j - 1] + self.gap
                )
                rows[i][j] = value
                if value > best:
                    best = value
                    best_cell = (i, j)
        alignment = None
        if traceback and best > 0:
            ops = self._traceback(pattern, text, rows, best_cell)
            i0, j0 = self._local_start(ops, best_cell)
            alignment = Alignment(
                pattern=pattern[i0 : best_cell[0]],
                text=text[j0 : best_cell[1]],
                ops=tuple(ops),
                score=sum(1 for op in ops if op != OP_MATCH),
            )
        return AlignmentResult(
            score=-best, alignment=alignment, stats=stats, exact=True
        )

    def _traceback(
        self,
        pattern: str,
        text: str,
        rows: List[List[int]],
        cell: Tuple[int, int],
    ) -> List[str]:
        i, j = cell
        reversed_ops: List[str] = []
        while i > 0 and j > 0 and rows[i][j] > 0:
            here = rows[i][j]
            diagonal_score = self.match if pattern[i - 1] == text[j - 1] else self.mismatch
            if here == rows[i - 1][j - 1] + diagonal_score:
                reversed_ops.append(
                    OP_MATCH if pattern[i - 1] == text[j - 1] else OP_MISMATCH
                )
                i -= 1
                j -= 1
            elif here == rows[i - 1][j] + self.gap:
                reversed_ops.append(OP_DELETION)
                i -= 1
            else:
                reversed_ops.append(OP_INSERTION)
                j -= 1
        reversed_ops.reverse()
        return reversed_ops

    @staticmethod
    def _local_start(ops: List[str], end: Tuple[int, int]) -> Tuple[int, int]:
        """Compute the (pattern, text) start offsets of a local alignment."""
        i, j = end
        for op in ops:
            if op in (OP_MATCH, OP_MISMATCH):
                i -= 1
                j -= 1
            elif op == OP_DELETION:
                i -= 1
            else:
                j -= 1
        return i, j
