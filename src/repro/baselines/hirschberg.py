"""Hirschberg's divide-and-conquer aligner — the linear-memory baseline.

The paper's §3.1 scalability argument is about traceback memory: classical
DP stores Θ(n·m) cells, BPM 4·n·m bits, GMX only tile edges.  The classic
*software* answer to the same problem is Hirschberg (1975): compute the
full alignment in O(n + m) memory by recursively locating where the
optimal path crosses the middle text column, paying ~2× the DP-matrix
computations.

Including it sharpens the comparison: GMX's edge storage gets the memory
reduction *without* Hirschberg's recomputation factor, while still
retrieving the exact alignment.  (BPM-based hardware such as [22] in the
paper uses exactly this divide-and-conquer trick for its traceback.)

Instruction accounting mirrors Full(DP): 5 int ops per DP cell evaluated —
of which Hirschberg evaluates about twice the n·m total across recursion
levels — with only two value rows live at any time.
"""

from __future__ import annotations

from typing import List

from ..align.base import Aligner, AlignmentResult, KernelStats
from ..core.cigar import (
    Alignment,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)


def _forward_row(pattern: str, text: str) -> List[int]:
    """Last row of the edit DP of pattern vs text (two-row space)."""
    previous = list(range(len(text) + 1))
    for i, p_char in enumerate(pattern, start=1):
        current = [i] + [0] * len(text)
        for j, t_char in enumerate(text, start=1):
            current[j] = min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (p_char != t_char),
            )
        previous = current
    return previous


class HirschbergAligner(Aligner):
    """Exact edit-distance alignment in linear memory (Hirschberg 1975)."""

    name = "Hirschberg"

    def align(
        self, pattern: str, text: str, *, traceback: bool = True
    ) -> AlignmentResult:
        if not pattern or not text:
            raise ValueError("pattern and text must be non-empty")
        n = len(pattern)
        m = len(text)
        stats = KernelStats()
        stats.hot_bytes = 4 * 2 * (m + 1)
        stats.dp_bytes_peak = 4 * 2 * (m + 1)
        if not traceback:
            row = _forward_row(pattern, text)
            self._account(stats, n * m)
            return AlignmentResult(
                score=row[m], alignment=None, stats=stats, exact=True
            )
        ops = self._solve(pattern, text, stats)
        score = sum(1 for op in ops if op != OP_MATCH)
        alignment = Alignment(
            pattern=pattern, text=text, ops=tuple(ops), score=score
        )
        return AlignmentResult(
            score=score, alignment=alignment, stats=stats, exact=True
        )

    def _account(self, stats: KernelStats, cells: int) -> None:
        stats.dp_cells += cells
        stats.add_instr("int_alu", 5 * cells)
        stats.add_instr("load", cells)
        stats.add_instr("store", cells)
        stats.dp_bytes_read += 12 * cells
        stats.dp_bytes_written += 4 * cells

    def _solve(self, pattern: str, text: str, stats: KernelStats) -> List[str]:
        """Recursive split: find where the path crosses the middle row."""
        n = len(pattern)
        m = len(text)
        if n == 0:
            return [OP_INSERTION] * m
        if m == 0:
            return [OP_DELETION] * n
        if n == 1:
            return self._align_single_char(pattern, text)
        middle = n // 2
        top = pattern[:middle]
        bottom = pattern[middle:]
        forward = _forward_row(top, text)
        backward = _forward_row(bottom[::-1], text[::-1])
        self._account(stats, n * m)
        split = min(
            range(m + 1), key=lambda j: forward[j] + backward[m - j]
        )
        return self._solve(top, text[:split], stats) + self._solve(
            bottom, text[split:], stats
        )

    @staticmethod
    def _align_single_char(pattern: str, text: str) -> List[str]:
        """Base case: one pattern character against the text."""
        best = None
        for j, t_char in enumerate(text):
            if pattern == t_char:
                best = j
                break
        if best is None:
            best = 0  # substitute against the first character
            op = OP_MISMATCH
        else:
            op = OP_MATCH
        return (
            [OP_INSERTION] * best
            + [op]
            + [OP_INSERTION] * (len(text) - best - 1)
        )
