"""The chunked streaming pipeline: split → filter → align → stitch.

Chromosome-scale alignment without chromosome-scale memory.  The
reference arrives as a block stream and is cut into overlapping windows
(:mod:`.chunker`); each window is cheaply voted against a sampled k-mer
sketch of the query (:mod:`repro.mapper.windows`) — the seed-location
filter that gates the expensive DP; only candidate windows become
:class:`~repro.stream.stitch.ChunkJob`\\ s, which any of the existing
batch engines may execute; per-chunk alignments are reconciled into one
global CIGAR by the :class:`~repro.stream.stitch.Stitcher`.

Peak memory on the serial engine is O(chunk) sequence + DP state plus
O(query) for the sketch and the committed alignment — independent of
reference length, which is the bound the tracemalloc regression test
enforces.  Batch engines additionally materialise the candidate job
list (O(covered reference) = O(query), still reference-independent).

Engine matrix (``engine=``):

========== ============================================= ==============
name       executes chunks via                            extras
========== ============================================= ==============
serial     in-process loop (the dsan-rooted chunk body)   strict O(chunk)
pool       ``align_batch_sharded`` worker pool            ``workers``/``pool``
resilient  ``align_batch_resilient``                      ``checkpoint`` +
                                                          chunk provenance
dist       ``repro.dist`` coordinator                     ``dist_nodes``
========== ============================================= ==============
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Union

from ..align.base import Aligner, KernelStats
from ..align.parallel import WorkerPool, align_batch_sharded
from ..baselines.edlib_like import EdlibAligner
from ..mapper.windows import QuerySketch
from ..obs import runtime as obs
from ..sim.cost_model import plan_stream_shard_size
from .chunker import ReferenceChunk, iter_reference_chunks, validate_chunking
from .errors import StreamError
from .stitch import ChunkAlignment, ChunkJob, StitchedAlignment, Stitcher

#: Engines a stream run can execute its chunk jobs on.
ENGINES = ("serial", "pool", "resilient", "dist")


@dataclass(frozen=True)
class StreamConfig:
    """Geometry and filtering knobs of one streamed alignment.

    Attributes:
        chunk_size / overlap: reference window geometry (see
            :mod:`.chunker`).
        k / query_stride / max_occurrences: query-sketch shape (see
            :class:`~repro.mapper.windows.QuerySketch`).
        bucket: diagonal vote granularity in bases.
        min_votes: sketch hits a window needs to become a candidate.
        span_pad: query-span slack added on both sides of the predicted
            span; ``None`` derives it from the geometry.
        min_anchor: exact-match run length the stitcher trusts.
        max_hole_chunks: voteless windows tolerated *between* candidate
            windows before the stream assumes the query mapped to a
            single earlier locus and stops scanning.
        diagonal_tolerance: maximum step-to-step drift of the winning
            diagonal; candidates drifting further are spurious repeat
            hits.  ``None`` derives it from the geometry.
    """

    chunk_size: int = 4096
    overlap: int = 512
    k: int = 16
    query_stride: int = 8
    max_occurrences: int = 64
    bucket: int = 32
    min_votes: int = 4
    span_pad: Optional[int] = None
    min_anchor: int = 12
    max_hole_chunks: int = 4
    diagonal_tolerance: Optional[int] = None

    def validate(self) -> None:
        """Reject geometries the pipeline cannot stitch."""
        validate_chunking(self.chunk_size, self.overlap)
        if self.overlap < self.min_anchor:
            raise ValueError(
                f"overlap ({self.overlap}) must be at least min_anchor "
                f"({self.min_anchor}): seams are reconciled on exact-match "
                "runs inside the overlap"
            )
        if self.k > self.chunk_size:
            raise ValueError(
                f"k ({self.k}) cannot exceed chunk_size ({self.chunk_size})"
            )
        if self.max_hole_chunks < 0:
            raise ValueError(
                f"max_hole_chunks must be >= 0, got {self.max_hole_chunks}"
            )

    @property
    def resolved_span_pad(self) -> int:
        if self.span_pad is not None:
            return self.span_pad
        return self.bucket + self.k + max(32, self.chunk_size // 100)

    @property
    def resolved_diagonal_tolerance(self) -> int:
        # Diagonal drift up to half a window reads as structural
        # variation (indels the stitcher can bridge); drift beyond it
        # reads as a spurious hit on a repeat of an earlier locus.
        if self.diagonal_tolerance is not None:
            return self.diagonal_tolerance
        return max(4 * self.bucket, self.chunk_size // 2 + self.k)


@dataclass
class StreamCounters:
    """Filter-stage accounting of one streamed alignment."""

    chunks: int = 0
    candidates: int = 0
    holes_promoted: int = 0
    spurious_skipped: int = 0
    jobs: int = 0


@dataclass
class StageTimings:
    """Wall seconds per pipeline stage (split+filter / align / stitch)."""

    filter_seconds: float = 0.0
    align_seconds: float = 0.0
    stitch_seconds: float = 0.0


@dataclass
class StreamResult:
    """One streamed global alignment plus its provenance.

    ``stitched`` carries the CIGAR, score, and covered reference span;
    the remaining fields account for what the pipeline did to get there.
    """

    stitched: StitchedAlignment
    engine: str
    config: StreamConfig
    counters: StreamCounters
    timings: StageTimings
    stats: KernelStats
    reference_length: int
    query_length: int
    telemetry: object = None

    @property
    def score(self) -> int:
        return self.stitched.score

    @property
    def cigar(self) -> str:
        return self.stitched.cigar

    @property
    def text_start(self) -> int:
        return self.stitched.text_start

    @property
    def text_end(self) -> int:
        return self.stitched.text_end


def _chunk_align_body(aligner: Aligner, job: ChunkJob) -> ChunkAlignment:
    """Align one chunk job GLOBALly — the stream worker body (dsan root).

    Runs inside whatever execution context the engine chose: the serial
    loop, a pool worker, a resilient shard attempt, or a dist node.  It
    must therefore stay deterministic and side-effect free: pure
    function of ``(aligner, job)``.
    """
    outcome = aligner.align(job.pattern, job.text, traceback=True)
    if outcome.alignment is None:
        raise StreamError(
            f"chunk {job.chunk_index}: aligner returned no traceback"
        )
    return ChunkAlignment(
        job=job,
        ops=outcome.alignment.ops,
        score=outcome.score,
        stats=outcome.stats,
    )


class _JobPlanner:
    """Turns the streamed chunk sequence into candidate chunk jobs.

    Stateful single-pass planner: tracks the last accepted diagonal (for
    spurious-candidate rejection), buffers voteless windows between
    candidates (hole promotion keeps the job sequence contiguous for the
    stitcher), and withholds each job until the next one is known so the
    final job's query span can be extended to the query end.
    """

    def __init__(
        self,
        sketch: QuerySketch,
        config: StreamConfig,
        query_length: int,
        counters: StreamCounters,
    ) -> None:
        self.sketch = sketch
        self.config = config
        self.query_length = query_length
        self.counters = counters
        self._order = 0
        self._last_diagonal: Optional[int] = None
        self._hole: List[ReferenceChunk] = []
        self._withheld: Optional[ChunkJob] = None
        self._stopped = False
        self.reference_seen = 0
        self.scan_seconds = 0.0

    def plan(
        self, chunks: Iterable[ReferenceChunk]
    ) -> Iterator[ChunkJob]:
        """Yield chunk jobs as the reference streams past."""
        config = self.config
        for chunk in chunks:
            self.counters.chunks += 1
            self.reference_seen = chunk.end
            if self._stopped:
                # The query's locus ended; stop pulling the reference
                # stream instead of scanning windows that cannot map.
                break
            scan_start = time.perf_counter()
            with obs.span(
                "stream.filter", chunk=chunk.index, start=chunk.start
            ):
                vote = self.sketch.scan_window(
                    chunk.sequence, chunk.start, bucket=config.bucket
                )
            self.scan_seconds += time.perf_counter() - scan_start
            accepted = (
                vote is not None and vote.votes >= config.min_votes
            )
            if accepted and self._last_diagonal is not None:
                drift = abs(vote.diagonal - self._last_diagonal)
                if drift > config.resolved_diagonal_tolerance:
                    self.counters.spurious_skipped += 1
                    obs.inc("stream.spurious")
                    accepted = False
            if not accepted:
                if self._last_diagonal is not None:
                    self._hole.append(chunk)
                    if len(self._hole) > config.max_hole_chunks:
                        # The query stopped mapping; later votes would be
                        # repeats of an earlier locus.  Stop scanning.
                        self._hole.clear()
                        self._stopped = True
                        break
                continue
            assert vote is not None
            for parked in self._hole:
                job = self._make_job(parked, self._last_diagonal, 0)
                if job is not None:
                    self.counters.holes_promoted += 1
                    obs.inc("stream.holes_promoted")
                    yield from self._emit(job)
            self._hole.clear()
            self.counters.candidates += 1
            obs.inc("stream.candidates")
            job = self._make_job(chunk, vote.diagonal, vote.votes)
            self._last_diagonal = vote.diagonal
            if job is not None:
                yield from self._emit(job)

    def flush(self) -> Iterator[ChunkJob]:
        """Release the withheld final job, span-extended to the query end."""
        job = self._withheld
        self._withheld = None
        if job is None:
            return
        if job.query_end < self.query_length:
            job = ChunkJob(
                order=job.order,
                chunk_index=job.chunk_index,
                ref_start=job.ref_start,
                ref_end=job.ref_end,
                query_start=job.query_start,
                query_end=self.query_length,
                pattern="",  # filled by caller: pattern needs the query
                text=job.text,
                votes=job.votes,
                diagonal=job.diagonal,
            )
        yield self._trim_window(job)

    def _emit(self, job: ChunkJob) -> Iterator[ChunkJob]:
        previous = self._withheld
        self._withheld = job
        if previous is not None:
            yield self._trim_window(previous)

    def _trim_window(self, job: ChunkJob) -> ChunkJob:
        """Cut the window to the diagonal corridor of the query span.

        A window can dwarf the part of it the query span actually maps to
        (the first window holds everything before the locus; the last,
        everything after).  Aligning across that slack both blows up the
        band of the per-chunk aligner and lets its tie-breaking shred
        exact-match runs into anchor-free confetti.  The vote's diagonal
        predicts where the span lands, so the window is trimmed to that
        corridor (padded); interior windows — whose query spans were
        derived from the window itself — are left whole, keeping the
        job sequence contiguous for the stitcher.
        """
        pad = self.config.resolved_span_pad
        lo = max(job.ref_start, job.query_start + job.diagonal - pad)
        hi = min(job.ref_end, job.query_end + job.diagonal + pad)
        if hi <= lo or (lo == job.ref_start and hi == job.ref_end):
            return job
        return ChunkJob(
            order=job.order,
            chunk_index=job.chunk_index,
            ref_start=lo,
            ref_end=hi,
            query_start=job.query_start,
            query_end=job.query_end,
            pattern=job.pattern,
            text=job.text[lo - job.ref_start:hi - job.ref_start],
            votes=job.votes,
            diagonal=job.diagonal,
        )

    def _make_job(
        self,
        chunk: ReferenceChunk,
        diagonal: Optional[int],
        votes: int,
    ) -> Optional[ChunkJob]:
        assert diagonal is not None
        pad = self.config.resolved_span_pad
        query_start = max(0, chunk.start - diagonal - pad)
        query_end = min(self.query_length, chunk.end - diagonal + pad)
        if self._order == 0:
            # The first job anchors the head: everything before its
            # predicted span would otherwise never be consumed.
            query_start = 0
        if query_end <= query_start:
            return None
        job = ChunkJob(
            order=self._order,
            chunk_index=chunk.index,
            ref_start=chunk.start,
            ref_end=chunk.end,
            query_start=query_start,
            query_end=query_end,
            pattern="",  # filled by the pipeline (owns the query string)
            text=chunk.sequence,
            votes=votes,
            diagonal=diagonal,
        )
        self._order += 1
        self.counters.jobs += 1
        obs.inc("stream.jobs")
        return job


def stream_align(
    reference: Union[str, Iterable[str]],
    query: str,
    *,
    aligner: Optional[Aligner] = None,
    config: Optional[StreamConfig] = None,
    engine: str = "serial",
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
    checkpoint: Optional[str] = None,
    dist_nodes: Optional[Iterable] = None,
    dist_config=None,
    validate: bool = True,
) -> StreamResult:
    """Align a streamed reference against a query, chunked and stitched.

    Args:
        reference: the reference sequence — a string, or an iterable of
            blocks (e.g. :func:`repro.workloads.seqio.iter_fasta_blocks`)
            for chromosome-scale inputs that must never be materialised.
        query: the query sequence (held in memory; O(query) is the
            pipeline's working-set budget).
        aligner: per-chunk GLOBAL aligner; default is the banded
            bit-parallel :class:`~repro.baselines.edlib_like.EdlibAligner`.
        engine: one of :data:`ENGINES`.
        workers / shard_size / pool: batch-engine knobs (pool/resilient).
            ``shard_size=None`` is planned from the chunk cost model.
        checkpoint: journal path (resilient/dist engines); the journal
            header carries the chunk geometry and query fingerprint, so
            resuming under different stream parameters is rejected.
        dist_nodes: :class:`repro.dist.NodeHandle` iterable (dist engine).
        validate: replay-validate the stitched alignment before returning.

    Raises:
        StreamError: empty inputs, no candidate windows, or a stitch
            contract violation.
        ValueError: invalid geometry or engine selection.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if not query:
        raise StreamError("query must be non-empty")
    config = config if config is not None else StreamConfig()
    config.validate()
    aligner = aligner if aligner is not None else EdlibAligner()
    counters = StreamCounters()
    timings = StageTimings()
    stats = KernelStats()
    telemetry = None

    with obs.span("stream.align", engine=engine):
        sketch = QuerySketch(
            query,
            k=config.k,
            stride=config.query_stride,
            max_occurrences=config.max_occurrences,
        )
        chunks = iter_reference_chunks(
            reference, config.chunk_size, config.overlap
        )
        planner = _JobPlanner(sketch, config, len(query), counters)

        def jobs() -> Iterator[ChunkJob]:
            for job in planner.plan(chunks):
                yield _fill_pattern(job, query)
            for job in planner.flush():
                yield _fill_pattern(job, query)

        stitcher = Stitcher(query, min_anchor=config.min_anchor)
        if engine == "serial":
            for job in jobs():
                align_start = time.perf_counter()
                with obs.span(
                    "stream.align_chunk",
                    chunk=job.chunk_index,
                    span=job.query_end - job.query_start,
                ):
                    result = _chunk_align_body(aligner, job)
                timings.align_seconds += time.perf_counter() - align_start
                if result.stats is not None:
                    stats.merge(result.stats)
                stitch_start = time.perf_counter()
                stitcher.submit(result)
                timings.stitch_seconds += time.perf_counter() - stitch_start
        else:
            job_list: List[ChunkJob] = []

            def pair_stream():
                for job in jobs():
                    job_list.append(job)
                    yield (job.pattern, job.text)

            planned_shard = shard_size
            if planned_shard is None:
                planned_shard = plan_stream_shard_size(
                    aligner,
                    config.chunk_size + 2 * config.resolved_span_pad,
                    config.chunk_size,
                )
            align_start = time.perf_counter()
            results, stats, telemetry = _run_batch_engine(
                engine,
                aligner,
                pair_stream(),
                workers=workers,
                shard_size=planned_shard,
                pool=pool,
                checkpoint=checkpoint,
                journal_meta=_stream_journal_meta(config, query),
                dist_nodes=dist_nodes,
                dist_config=dist_config,
            )
            timings.align_seconds = time.perf_counter() - align_start
            if len(results) != len(job_list):
                raise StreamError(
                    f"engine returned {len(results)} results for "
                    f"{len(job_list)} chunk jobs"
                )
            stitch_start = time.perf_counter()
            for job, outcome in zip(job_list, results):
                if outcome.alignment is None:
                    raise StreamError(
                        f"chunk {job.chunk_index}: engine returned no "
                        "traceback"
                    )
                stitcher.submit(
                    ChunkAlignment(
                        job=job,
                        ops=outcome.alignment.ops,
                        score=outcome.score,
                    )
                )
            timings.stitch_seconds += time.perf_counter() - stitch_start

        timings.filter_seconds = planner.scan_seconds
        if counters.chunks == 0:
            raise StreamError("reference must be non-empty")
        stitch_start = time.perf_counter()
        stitched = stitcher.finish(validate=validate)
        timings.stitch_seconds += time.perf_counter() - stitch_start
        obs.inc("stream.runs")

    return StreamResult(
        stitched=stitched,
        engine=engine,
        config=config,
        counters=counters,
        timings=timings,
        stats=stats,
        reference_length=planner.reference_seen,
        query_length=len(query),
        telemetry=telemetry,
    )


def stream_align_fasta(
    reference_path,
    query: str,
    *,
    record: Optional[str] = None,
    block_size: int = 1 << 16,
    **kwargs,
) -> StreamResult:
    """Stream a FASTA reference file through :func:`stream_align`.

    The named (or first) record is read as blocks — the reference never
    exists in memory as one string.
    """
    from ..workloads.seqio import iter_fasta_blocks

    blocks = iter_fasta_blocks(
        reference_path, record=record, block_size=block_size
    )
    return stream_align(blocks, query, **kwargs)


def _fill_pattern(job: ChunkJob, query: str) -> ChunkJob:
    """Materialise the job's query span (planner leaves patterns empty)."""
    return ChunkJob(
        order=job.order,
        chunk_index=job.chunk_index,
        ref_start=job.ref_start,
        ref_end=job.ref_end,
        query_start=job.query_start,
        query_end=job.query_end,
        pattern=query[job.query_start:job.query_end],
        text=job.text,
        votes=job.votes,
        diagonal=job.diagonal,
    )


def _stream_journal_meta(config: StreamConfig, query: str) -> dict:
    """Chunk provenance for the checkpoint journal header.

    A journal written under a different chunk geometry or query holds
    shard ranges that mean something else entirely; these keys make the
    journal's compatibility check reject such a resume.
    """
    digest = hashlib.sha256(query.encode("ascii")).hexdigest()[:16]
    return {
        "stream_chunk_size": config.chunk_size,
        "stream_overlap": config.overlap,
        "stream_k": config.k,
        "stream_span_pad": config.resolved_span_pad,
        "stream_query": digest,
    }


def _run_batch_engine(
    engine: str,
    aligner: Aligner,
    pairs,
    *,
    workers: Optional[int],
    shard_size: int,
    pool: Optional[WorkerPool],
    checkpoint: Optional[str],
    journal_meta: dict,
    dist_nodes,
    dist_config,
):
    """Execute the chunk-job pair stream on the selected batch engine."""
    if engine == "pool":
        batch = align_batch_sharded(
            aligner,
            pairs,
            workers=workers,
            shard_size=shard_size,
            traceback=True,
            pool=pool,
        )
        return batch.results, batch.stats, batch.telemetry
    if engine == "resilient":
        from ..resilience.engine import align_batch_resilient

        batch = align_batch_resilient(
            aligner,
            pairs,
            workers=workers if workers is not None else 1,
            shard_size=shard_size,
            traceback=True,
            checkpoint=checkpoint,
            journal_meta=journal_meta if checkpoint else None,
        )
        return batch.results, batch.stats, batch.telemetry
    if engine == "dist":
        if not dist_nodes:
            raise ValueError("engine='dist' requires dist_nodes")
        from ..dist.coordinator import DistConfig, DistCoordinator

        cfg = dist_config if dist_config is not None else DistConfig()
        if cfg.shard_size is None:
            from dataclasses import replace as _replace

            cfg = _replace(cfg, shard_size=shard_size)
        coordinator = DistCoordinator(
            aligner,
            dist_nodes,
            config=cfg,
            checkpoint=checkpoint,
            journal_meta=journal_meta if checkpoint else None,
        )
        outcome = coordinator.run(pairs, traceback=True)
        return outcome.results, outcome.stats, outcome.telemetry
    raise ValueError(f"unknown engine {engine!r}")
