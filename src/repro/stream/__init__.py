"""repro.stream — chromosome-scale chunked alignment with bounded memory.

The streaming pipeline splits an arbitrarily long reference into
overlapping windows, uses a query k-mer sketch to pick the few windows
the query can plausibly map to, aligns only those windows through any of
the repository's batch engines, and stitches the per-window alignments
back into one global alignment with deterministic overlap
reconciliation.  Peak memory is O(chunk + query), independent of
reference length.

Entry points:

* :func:`stream_align` — align a query against an in-memory or streamed
  reference.
* :func:`stream_align_fasta` — same, reading the reference lazily from
  a FASTA file via :func:`repro.workloads.iter_fasta_blocks`.
* :func:`repro.stream.conformance.verify_windows` — oracle-check seeded
  sub-windows of a stitched alignment against Hirschberg.
"""

from .chunker import ReferenceChunk, chunk_spans, iter_reference_chunks, validate_chunking
from .conformance import WindowCheck, path_cut_points, verify_windows, window_ops
from .errors import StreamError
from .pipeline import (
    ENGINES,
    StageTimings,
    StreamConfig,
    StreamCounters,
    StreamResult,
    stream_align,
    stream_align_fasta,
)
from .stitch import (
    Anchor,
    ChunkAlignment,
    ChunkJob,
    StitchCounters,
    StitchedAlignment,
    Stitcher,
    common_anchor,
    find_anchors,
)

__all__ = [
    "ENGINES",
    "Anchor",
    "ChunkAlignment",
    "ChunkJob",
    "ReferenceChunk",
    "StageTimings",
    "StitchCounters",
    "StitchedAlignment",
    "Stitcher",
    "StreamConfig",
    "StreamCounters",
    "StreamError",
    "StreamResult",
    "WindowCheck",
    "chunk_spans",
    "common_anchor",
    "find_anchors",
    "iter_reference_chunks",
    "path_cut_points",
    "stream_align",
    "stream_align_fasta",
    "validate_chunking",
    "verify_windows",
    "window_ops",
]
