"""Window-conformance verification against the Hirschberg oracle.

A stitched chromosome-scale alignment is far too large to verify against
an O(n·m) oracle in one piece — but it does not have to be.  Exact-match
anchors of the stitched alignment are points the optimal path provably
passes through (if the stitch is correct); between two anchor midpoints
the stitched sub-alignment must therefore be an *optimal* alignment of
the sub-pattern against the sub-text.  This module cuts seeded random
windows at anchor midpoints and replays each one through the
linear-memory :class:`~repro.baselines.hirschberg.HirschbergAligner`:

* **score conformance** — the window's edit cost must equal the oracle's
  optimal score (a stitched path that wanders is caught here);
* **byte identity** — the window CIGAR must equal the oracle CIGAR after
  both are put in the canonical form of
  :func:`repro.align.chunked.canonicalize_ops` (co-optimal alignments
  differ only in tie-broken gap placement; canonicalisation removes
  exactly that freedom and nothing else).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..align.chunked import canonical_cigar, ops_to_runs, runs_to_cigar
from ..baselines.hirschberg import HirschbergAligner
from ..core.cigar import OP_DELETION, OP_INSERTION, OP_MATCH, edit_cost
from .errors import StreamError
from .stitch import StitchedAlignment


@dataclass(frozen=True)
class WindowCheck:
    """One verification window and its oracle verdict.

    Coordinates are absolute (query / reference); ``score_ok`` is the
    hard conformance bit, ``identical`` the canonical byte-identity bit.
    """

    query_start: int
    query_end: int
    ref_start: int
    ref_end: int
    window_score: int
    oracle_score: int
    window_cigar: str
    oracle_cigar: str
    identical: bool

    @property
    def score_ok(self) -> bool:
        return self.window_score == self.oracle_score

    @property
    def ok(self) -> bool:
        return self.score_ok and self.identical


def path_cut_points(
    stitched: StitchedAlignment, *, min_anchor: int = 16
) -> List[Tuple[int, int]]:
    """Anchor midpoints of the stitched path, as absolute ``(q, r)``.

    Only exact-match runs of at least ``min_anchor`` bases qualify —
    the optimal path cannot avoid a long exact run, so its midpoint is a
    sound window boundary.
    """
    points: List[Tuple[int, int]] = []
    q = 0
    r = stitched.text_start
    for op, length in stitched.runs:
        if op == OP_MATCH:
            if length >= min_anchor:
                mid = length // 2
                points.append((q + mid, r + mid))
            q += length
            r += length
        elif op == OP_DELETION:
            q += length
        elif op == OP_INSERTION:
            r += length
        else:
            q += length
            r += length
    return points


def window_ops(
    stitched: StitchedAlignment,
    qr_from: Tuple[int, int],
    qr_to: Tuple[int, int],
) -> List[str]:
    """The stitched ops between two on-path points (expanded)."""
    ops: List[str] = []
    q = 0
    r = stitched.text_start
    for op, length in stitched.runs:
        dq = length if op != OP_INSERTION else 0
        dr = length if op != OP_DELETION else 0
        take_from = 0
        if q < qr_from[0] or r < qr_from[1]:
            skip_q = qr_from[0] - q if dq else 0
            skip_r = qr_from[1] - r if dr else 0
            take_from = min(length, max(skip_q, skip_r))
        room_q = qr_to[0] - q if dq else length
        room_r = qr_to[1] - r if dr else length
        take_to = min(length, max(take_from, min(room_q, room_r)))
        if take_to > take_from:
            ops.extend([op] * (take_to - take_from))
        q += dq
        r += dr
        if q >= qr_to[0] and r >= qr_to[1]:
            break
    return ops


def verify_windows(
    stitched: StitchedAlignment,
    *,
    windows: int = 25,
    seed: int = 0,
    min_span: int = 128,
    max_span: int = 2048,
    min_anchor: int = 16,
    oracle: Optional[HirschbergAligner] = None,
) -> List[WindowCheck]:
    """Verify seeded random sub-windows against the Hirschberg oracle.

    Windows are cut at anchor midpoints with reference spans in
    ``[min_span, max_span]``.  Returns one :class:`WindowCheck` per
    verified window (possibly fewer than requested when the alignment
    has too few anchors to cut from).

    Raises:
        StreamError: when no window can be cut at all — an alignment
            with no two qualifying anchors is too weak to verify.
    """
    points = path_cut_points(stitched, min_anchor=min_anchor)
    if len(points) < 2:
        raise StreamError(
            "stitched alignment has fewer than two verification anchors "
            f"(min_anchor={min_anchor})"
        )
    oracle = oracle if oracle is not None else HirschbergAligner()
    rng = random.Random(seed)
    refs = [r for _, r in points]
    chosen: List[Tuple[int, int]] = []
    seen = set()
    attempts = 0
    while len(chosen) < windows and attempts < windows * 20:
        attempts += 1
        start = rng.randrange(len(points) - 1)
        lo = bisect_left(refs, refs[start] + min_span, start + 1)
        hi = bisect_left(refs, refs[start] + max_span + 1, start + 1)
        if lo >= hi:
            continue
        end = rng.randrange(lo, hi)
        if (start, end) in seen:
            continue
        seen.add((start, end))
        chosen.append((start, end))
    checks: List[WindowCheck] = []
    for start, end in chosen:
        q_lo, r_lo = points[start]
        q_hi, r_hi = points[end]
        sub_pattern = stitched.query[q_lo:q_hi]
        sub_text = stitched.text[
            r_lo - stitched.text_start:r_hi - stitched.text_start
        ]
        ops = window_ops(stitched, (q_lo, r_lo), (q_hi, r_hi))
        outcome = oracle.align(sub_pattern, sub_text, traceback=True)
        assert outcome.alignment is not None
        window_canonical = canonical_cigar(sub_pattern, sub_text, ops)
        oracle_canonical = canonical_cigar(
            sub_pattern, sub_text, outcome.alignment.ops
        )
        checks.append(
            WindowCheck(
                query_start=q_lo,
                query_end=q_hi,
                ref_start=r_lo,
                ref_end=r_hi,
                window_score=edit_cost(ops),
                oracle_score=outcome.score,
                window_cigar=runs_to_cigar(ops_to_runs(ops)),
                oracle_cigar=outcome.alignment.cigar,
                identical=window_canonical == oracle_canonical,
            )
        )
    return checks
