"""Deterministic overlap reconciliation of per-chunk alignments.

Each candidate chunk is aligned GLOBALly — query span against reference
window — by whatever engine the pipeline chose.  This module turns those
per-chunk alignments back into **one** global alignment:

* results may arrive out of order (sharded / distributed engines); a
  heap holds early arrivals until their turn (:meth:`Stitcher.submit`);
* neighbouring chunks share ``overlap`` reference bases; both of their
  alignments are searched for **common anchors** — maximal exact-match
  runs on the same (query, reference) diagonal that both alignments
  produced inside the shared region.  The longest common run (ties to
  the smallest reference position) is cut at its midpoint and the commit
  switches from one chunk's path to the next there — deterministic, and
  independent of which engine aligned which chunk;
* when no common anchor exists (divergent overlap, an ``N`` desert, or a
  skipped window) the seam is **bridge-repaired**: the query segment
  between the last trusted anchor of the left chunk and the first
  trusted anchor of the right chunk is realigned exactly with the
  linear-memory Hirschberg baseline — O(seam) memory, bounded by the
  chunk geometry;
* window slack — reference bases the candidate windows cover before the
  first and after the last query base — is removed by **flank repair**:
  the path before the first trusted anchor (and after the last) is
  realigned with a free-text-flank formulation, so ``text_start`` /
  ``text_end`` tighten to the query's true locus and the stitched CIGAR
  does not depend on where windows happened to start.

Memory: the stitcher holds the committed run-length CIGAR (O(runs)),
the covered reference text (O(query), for validation), one pending
chunk, and whatever the heap buffers while results are out of order —
with in-order engines that is a single entry.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..align.chunked import (
    Run,
    append_run,
    ops_to_runs,
    runs_to_cigar,
    runs_to_ops,
)
from ..baselines.hirschberg import HirschbergAligner
from ..core.cigar import (
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
    Alignment,
    edit_cost,
)
from ..obs import runtime as obs
from .errors import StreamError

# Flank repair is an O(flank_query × flank_text) DP; past this many
# cells (a pathological, mostly-unmapped flank) the repair is skipped
# and the raw — still valid, just looser — flank path is kept.
FLANK_REPAIR_CELL_CAP = 1 << 22


def _free_entry(pattern: str, text: str) -> Tuple[int, int]:
    """Best free-prefix entry: ``min_e cost(pattern, text[e:])``.

    Returns ``(cost, e)``; ties prefer the largest ``e`` (tightest
    covered span), so the result is deterministic.
    """
    m = len(text)
    prev_cost = [0] * (m + 1)
    prev_start = list(range(m + 1))
    for ch in pattern:
        cur_cost = [prev_cost[0] + 1]
        cur_start = [prev_start[0]]
        for j in range(1, m + 1):
            best = prev_cost[j - 1] + (0 if ch == text[j - 1] else 1)
            start = prev_start[j - 1]
            up = prev_cost[j] + 1
            if up < best or (up == best and prev_start[j] > start):
                best, start = up, prev_start[j]
            left = cur_cost[j - 1] + 1
            if left < best or (left == best and cur_start[j - 1] > start):
                best, start = left, cur_start[j - 1]
            cur_cost.append(best)
            cur_start.append(start)
        prev_cost, prev_start = cur_cost, cur_start
    return prev_cost[m], prev_start[m]


def _free_exit(pattern: str, text: str) -> Tuple[int, int]:
    """Best free-suffix exit: ``min_x cost(pattern, text[:x])``.

    Returns ``(cost, x)``; ties prefer the smallest ``x`` (tightest
    covered span).
    """
    m = len(text)
    prev = list(range(m + 1))
    for ch in pattern:
        cur = [prev[0] + 1]
        for j in range(1, m + 1):
            best = prev[j - 1] + (0 if ch == text[j - 1] else 1)
            up = prev[j] + 1
            if up < best:
                best = up
            left = cur[j - 1] + 1
            if left < best:
                best = left
            cur.append(best)
        prev = cur
    exit_at = min(range(m + 1), key=lambda j: (prev[j], j))
    return prev[exit_at], exit_at


@dataclass(frozen=True)
class ChunkJob:
    """One chunk-alignment work item: a query span vs a reference window.

    Attributes:
        order: dense submission sequence number among candidate jobs —
            the stitcher consumes jobs in this order.
        chunk_index: index of the originating :class:`ReferenceChunk`.
        ref_start / ref_end: absolute reference window.
        query_start / query_end: absolute query span predicted by the
            window vote.
        pattern: ``query[query_start:query_end]``.
        text: ``reference[ref_start:ref_end]``.
        votes: filter votes that promoted this chunk.
        diagonal: winning diagonal of the vote.
    """

    order: int
    chunk_index: int
    ref_start: int
    ref_end: int
    query_start: int
    query_end: int
    pattern: str
    text: str
    votes: int
    diagonal: int


@dataclass(frozen=True)
class ChunkAlignment:
    """A chunk job plus its GLOBAL alignment (pattern vs window text)."""

    job: ChunkJob
    ops: Tuple[str, ...]
    score: int
    stats: object = None


@dataclass(frozen=True)
class Anchor:
    """A maximal exact-match run of one chunk alignment.

    ``query``/``ref`` are absolute start coordinates; the run spans
    ``length`` bases on the diagonal ``ref - query``.
    """

    query: int
    ref: int
    length: int

    @property
    def diagonal(self) -> int:
        return self.ref - self.query

    @property
    def ref_end(self) -> int:
        return self.ref + self.length


@dataclass
class StitchCounters:
    """Accounting of one stitched alignment (all deterministic)."""

    chunks: int = 0
    anchor_seams: int = 0
    bridge_seams: int = 0
    bridge_columns: int = 0
    skipped_alignments: int = 0
    head_unmapped: int = 0
    tail_unmapped: int = 0
    max_heap_depth: int = 0


@dataclass
class StitchedAlignment:
    """The reassembled global alignment.

    ``text_start/text_end`` delimit the covered reference span; ``text``
    is exactly ``reference[text_start:text_end]``, reassembled from the
    committed windows.  ``runs`` is the run-length CIGAR over the whole
    query against that span.
    """

    query: str
    runs: List[Run]
    score: int
    text_start: int
    text_end: int
    text: str
    counters: StitchCounters = field(default_factory=StitchCounters)

    @property
    def cigar(self) -> str:
        return runs_to_cigar(self.runs)

    def to_alignment(self) -> Alignment:
        """Expand into a validatable :class:`~repro.core.cigar.Alignment`."""
        return Alignment(
            pattern=self.query,
            text=self.text,
            ops=tuple(runs_to_ops(self.runs)),
            score=self.score,
        )


class _Pending:
    """The most recent accepted chunk, not yet (fully) committed."""

    __slots__ = ("chunk", "runs", "entry_q", "entry_r", "anchors")

    def __init__(
        self,
        chunk: ChunkAlignment,
        entry_q: int,
        entry_r: int,
        anchors: List[Anchor],
    ) -> None:
        self.chunk = chunk
        self.runs = ops_to_runs(chunk.ops)
        self.entry_q = entry_q
        self.entry_r = entry_r
        self.anchors = anchors


def find_anchors(
    chunk: ChunkAlignment, *, min_anchor: int
) -> List[Anchor]:
    """Maximal M-runs of at least ``min_anchor`` bases, absolute coords."""
    anchors: List[Anchor] = []
    q = chunk.job.query_start
    r = chunk.job.ref_start
    for op, length in ops_to_runs(chunk.ops):
        if op == OP_MATCH:
            if length >= min_anchor:
                anchors.append(Anchor(query=q, ref=r, length=length))
            q += length
            r += length
        elif op == OP_MISMATCH:
            q += length
            r += length
        elif op == OP_DELETION:
            q += length
        else:
            r += length
    return anchors


def common_anchor(
    left: Sequence[Anchor],
    right: Sequence[Anchor],
    *,
    lo: int,
    hi: int,
    min_anchor: int,
) -> Optional[Tuple[int, int, int]]:
    """Longest reference interval both sides match identically.

    Considers anchor pairs on the same diagonal, intersects their
    reference intervals with each other and with ``[lo, hi)``, and
    returns ``(ref_start, ref_end, diagonal)`` of the longest surviving
    interval of at least ``min_anchor`` bases — ties broken toward the
    smallest reference position, so the cut is deterministic regardless
    of engine or arrival order.  ``None`` when no such interval exists.
    """
    best: Optional[Tuple[int, int, int]] = None
    best_key: Optional[Tuple[int, int]] = None
    for a in left:
        for b in right:
            if a.diagonal != b.diagonal:
                continue
            start = max(a.ref, b.ref, lo)
            end = min(a.ref_end, b.ref_end, hi)
            if end - start < min_anchor:
                continue
            key = (-(end - start), start)
            if best_key is None or key < best_key:
                best_key = key
                best = (start, end, a.diagonal)
    return best


class Stitcher:
    """Merge per-chunk alignments into one global alignment.

    Results are :meth:`submit`-ted in any order; :meth:`finish` seals the
    stream and returns the :class:`StitchedAlignment`.
    """

    def __init__(
        self,
        query: str,
        *,
        min_anchor: int = 12,
        bridge_aligner=None,
    ) -> None:
        if not query:
            raise StreamError("cannot stitch an empty query")
        if min_anchor < 1:
            raise ValueError(f"min_anchor must be >= 1, got {min_anchor}")
        self.query = query
        self.min_anchor = min_anchor
        self._bridge_aligner = (
            bridge_aligner if bridge_aligner is not None else HirschbergAligner()
        )
        self._heap: List[Tuple[int, int, ChunkAlignment]] = []
        self._arrivals = 0
        self._next_order = 0
        self._pending: Optional[_Pending] = None
        # Skipped-but-contiguous chunks parked between seams: their
        # windows are still needed to assemble bridge reference text.
        self._parked: List[ChunkAlignment] = []
        self._runs: List[Run] = []
        self._text_parts: List[str] = []
        self._text_start: Optional[int] = None
        self._finished = False
        self.counters = StitchCounters()

    # -- submission ------------------------------------------------------

    def submit(self, result: ChunkAlignment) -> None:
        """Accept one chunk alignment; buffers until its order is due."""
        if self._finished:
            raise StreamError("stitcher already finished")
        order = result.job.order
        if order < self._next_order:
            raise StreamError(
                f"chunk order {order} submitted twice (next expected "
                f"{self._next_order})"
            )
        self._arrivals += 1
        heapq.heappush(self._heap, (order, self._arrivals, result))
        self.counters.max_heap_depth = max(
            self.counters.max_heap_depth, len(self._heap)
        )
        while self._heap and self._heap[0][0] == self._next_order:
            _, _, due = heapq.heappop(self._heap)
            self._advance(due)
            self._next_order += 1

    def finish(self, *, validate: bool = True) -> StitchedAlignment:
        """Seal the stream and return the assembled global alignment."""
        if self._finished:
            raise StreamError("stitcher already finished")
        if self._heap:
            missing = self._next_order
            raise StreamError(
                f"chunk order {missing} never arrived "
                f"({len(self._heap)} results still buffered)"
            )
        self._finished = True
        if self._pending is None:
            raise StreamError(
                "no usable chunk alignment: the query anchored nowhere "
                "in the reference"
            )
        with obs.span("stream.stitch", seam="final"):
            frontier_q, frontier_r = self._commit_pending(None, None)
            tail = len(self.query) - frontier_q
            if tail:
                # Query tail beyond the last committed window: unmapped,
                # consumed as deletions so the alignment stays global.
                append_run(self._runs, OP_DELETION, tail)
            runs = self._runs
            text = "".join(self._text_parts)
            text_start = self._text_start
            assert text_start is not None
            runs, text, text_start = self._repair_head(runs, text, text_start)
            runs, text = self._repair_tail(runs, text)
        self.counters.head_unmapped = (
            runs[0][1] if runs and runs[0][0] == OP_DELETION else 0
        )
        self.counters.tail_unmapped = (
            runs[-1][1] if runs and runs[-1][0] == OP_DELETION else 0
        )
        stitched = StitchedAlignment(
            query=self.query,
            runs=runs,
            score=edit_cost(runs_to_ops(runs)),
            text_start=text_start,
            text_end=text_start + len(text),
            text=text,
            counters=self.counters,
        )
        if validate:
            stitched.to_alignment().validate()
        return stitched

    # -- flank repair ----------------------------------------------------

    def _repair_head(
        self, runs: List[Run], text: str, text_start: int
    ) -> Tuple[List[Run], str, int]:
        """Realign the path before the first trusted anchor.

        The per-chunk GLOBAL alignments are forced to consume their whole
        window, so slack reference before the query's true locus can end
        up scattered through the head of the path instead of forming a
        trimmable leading insertion run.  The head is replaced with the
        optimal free-prefix alignment (leading reference is free), which
        both tightens ``text_start`` and makes the head independent of
        where the first window happened to start.
        """
        q = roff = idx = 0
        for op, length in runs:
            if op == OP_MATCH and length >= self.min_anchor:
                break
            if op != OP_INSERTION:
                q += length
            if op != OP_DELETION:
                roff += length
            idx += 1
        else:
            return runs, text, text_start
        if roff == 0 or q * roff > FLANK_REPAIR_CELL_CAP:
            return runs, text, text_start
        _, entry = _free_entry(self.query[:q], text[:roff])
        head = self._align_bridge(self.query[:q], text[entry:roff])
        repaired = list(head)
        for op, length in runs[idx:]:
            append_run(repaired, op, length)
        return repaired, text[entry:], text_start + entry

    def _repair_tail(
        self, runs: List[Run], text: str
    ) -> Tuple[List[Run], str]:
        """Realign the path after the last trusted anchor (mirror of
        :meth:`_repair_head`: trailing reference is free)."""
        q = roff = 0
        anchor_at: Optional[Tuple[int, int, int]] = None
        for idx, (op, length) in enumerate(runs):
            if op != OP_INSERTION:
                q += length
            if op != OP_DELETION:
                roff += length
            if op == OP_MATCH and length >= self.min_anchor:
                anchor_at = (idx, q, roff)
        if anchor_at is None:
            return runs, text
        idx, q, roff = anchor_at
        tail_q = len(self.query) - q
        tail_r = len(text) - roff
        if tail_r == 0 or tail_q * tail_r > FLANK_REPAIR_CELL_CAP:
            return runs, text
        _, exit_at = _free_exit(self.query[q:], text[roff:])
        tail = self._align_bridge(self.query[q:], text[roff:roff + exit_at])
        repaired = list(runs[:idx + 1])
        for op, length in tail:
            append_run(repaired, op, length)
        return repaired, text[:roff + exit_at]

    # -- internals -------------------------------------------------------

    def _advance(self, result: ChunkAlignment) -> None:
        """Process the next in-order chunk alignment."""
        anchors = find_anchors(result, min_anchor=self.min_anchor)
        with obs.span(
            "stream.stitch",
            chunk=result.job.chunk_index,
            anchors=len(anchors),
        ):
            if self._pending is None:
                self._accept_first(result, anchors)
            else:
                self._reconcile(result, anchors)

    def _accept_first(
        self, result: ChunkAlignment, anchors: List[Anchor]
    ) -> None:
        if not anchors:
            # A first chunk with no exact-match run of anchor length is
            # indistinguishable from a spurious vote; wait for a real one.
            self.counters.skipped_alignments += 1
            return
        job = result.job
        # Window slack before the first query base is not alignment.
        runs = ops_to_runs(result.ops)
        leading = runs[0][1] if runs and runs[0][0] == OP_INSERTION else 0
        entry_q = job.query_start
        entry_r = job.ref_start + leading
        self._text_start = entry_r
        if entry_q:
            # Query head that precedes every candidate window: unmapped,
            # consumed as deletions (mirrors the tail rule in finish()).
            append_run(self._runs, OP_DELETION, entry_q)
            self.counters.head_unmapped = entry_q
        self._pending = _Pending(result, entry_q, entry_r, anchors)
        self.counters.chunks += 1

    def _reconcile(
        self, result: ChunkAlignment, anchors: List[Anchor]
    ) -> None:
        pending = self._pending
        assert pending is not None
        job = result.job
        prev_job = pending.chunk.job
        covered_to = max(
            [prev_job.ref_end] + [p.job.ref_end for p in self._parked]
        )
        if job.ref_start > covered_to:
            raise StreamError(
                f"chunk {job.chunk_index} window starts at {job.ref_start}, "
                f"past the covered reference end {covered_to}: chunk "
                "jobs must cover the reference contiguously"
            )
        cut = common_anchor(
            pending.anchors,
            anchors,
            lo=max(job.ref_start, pending.entry_r + 1),
            hi=prev_job.ref_end,
            min_anchor=self.min_anchor,
        )
        if cut is not None:
            lo, hi, diagonal = cut
            r_cut = lo + (hi - lo) // 2
            q_cut = r_cut - diagonal
            if q_cut > pending.entry_q and r_cut > pending.entry_r:
                self._commit_pending(q_cut, r_cut)
                self._pending = _Pending(result, q_cut, r_cut, anchors)
                self._parked.clear()
                self.counters.chunks += 1
                self.counters.anchor_seams += 1
                return
        self._bridge(result, anchors)

    def _bridge(
        self, result: ChunkAlignment, anchors: List[Anchor]
    ) -> None:
        """Repair a seam with no common anchor by exact realignment."""
        pending = self._pending
        assert pending is not None
        job = result.job
        prev_job = pending.chunk.job
        # Last trusted point of the left chunk: midpoint of its last
        # anchor before the shared region (its own right edge is exactly
        # where its path went wrong), falling back to the entry point.
        left_cut: Tuple[int, int] = (pending.entry_q, pending.entry_r)
        for anchor in pending.anchors:
            mid = anchor.ref + anchor.length // 2
            if mid >= job.ref_start:
                continue
            if mid > left_cut[1] and (mid - anchor.diagonal) > left_cut[0]:
                left_cut = (mid - anchor.diagonal, mid)
        # First trusted point of the right chunk: midpoint of its first
        # anchor past the shared region (its own left edge is suspect),
        # falling back to any anchor strictly past the left cut.
        right_cut: Optional[Tuple[int, int]] = None
        for threshold in (prev_job.ref_end, left_cut[1] + 1):
            for anchor in anchors:
                mid = anchor.ref + anchor.length // 2
                if mid < threshold:
                    continue
                if mid > left_cut[1] and (mid - anchor.diagonal) > left_cut[0]:
                    right_cut = (mid - anchor.diagonal, mid)
                    break
            if right_cut is not None:
                break
        if right_cut is None:
            # Nothing trustworthy in this chunk at all; park it (its
            # window may still serve bridge text) and let the next chunk
            # — or finish() — close the seam.
            self._parked.append(result)
            self.counters.skipped_alignments += 1
            return
        self._commit_pending(*left_cut)
        bridge_text = self._assemble_text(
            left_cut[1],
            right_cut[1],
            [pending.chunk] + self._parked + [result],
        )
        bridge_query = self.query[left_cut[0]:right_cut[0]]
        runs = self._align_bridge(bridge_query, bridge_text)
        for op, length in runs:
            append_run(self._runs, op, length)
        self._text_parts.append(bridge_text)
        self.counters.bridge_seams += 1
        self.counters.bridge_columns += sum(length for _, length in runs)
        self._pending = _Pending(result, right_cut[0], right_cut[1], anchors)
        self._parked.clear()
        self.counters.chunks += 1

    def _align_bridge(self, pattern: str, text: str) -> List[Run]:
        if not pattern and not text:
            return []
        if not pattern:
            return [(OP_INSERTION, len(text))]
        if not text:
            return [(OP_DELETION, len(pattern))]
        outcome = self._bridge_aligner.align(pattern, text, traceback=True)
        assert outcome.alignment is not None
        return ops_to_runs(outcome.alignment.ops)

    @staticmethod
    def _assemble_text(
        lo: int, hi: int, chunks: Sequence[ChunkAlignment]
    ) -> str:
        """Reference bases ``[lo, hi)`` reassembled from chunk windows."""
        parts: List[str] = []
        position = lo
        for chunk in chunks:
            job = chunk.job
            if position >= hi:
                break
            if position < job.ref_start or position >= job.ref_end:
                continue
            end = min(hi, job.ref_end)
            parts.append(
                job.text[position - job.ref_start:end - job.ref_start]
            )
            position = end
        if position < hi:
            raise StreamError(
                f"bridge [{lo}, {hi}) not fully covered by the available "
                f"chunk windows (reached {position})"
            )
        return "".join(parts)

    def _commit_pending(
        self, q_to: Optional[int], r_to: Optional[int]
    ) -> Tuple[int, int]:
        """Commit the pending chunk's path from its entry to the cut.

        ``None`` cut commits to the end of the chunk's path, trimming the
        trailing insertion run (window slack past the last query base).
        Returns the new committed frontier ``(q, r)``.
        """
        pending = self._pending
        assert pending is not None
        job = pending.chunk.job
        runs = list(pending.runs)
        if q_to is None:
            # Trim trailing window slack.
            while runs and runs[-1][0] == OP_INSERTION:
                runs.pop()
        q = job.query_start
        r = job.ref_start
        committed: List[Run] = []
        for op, length in runs:
            dq = length if op != OP_INSERTION else 0
            dr = length if op != OP_DELETION else 0
            take_from = 0
            if q < pending.entry_q or r < pending.entry_r:
                # Still before the entry point: skip whole or partial run.
                skip_q = pending.entry_q - q if dq else 0
                skip_r = pending.entry_r - r if dr else 0
                take_from = min(length, max(skip_q, skip_r))
            take_to = length
            if q_to is not None and r_to is not None:
                room_q = q_to - q if dq else length
                room_r = r_to - r if dr else length
                take_to = min(take_to, max(take_from, min(room_q, room_r)))
            if take_to > take_from:
                append_run(committed, op, take_to - take_from)
            q += dq
            r += dr
            if q_to is not None and r_to is not None and q >= q_to and r >= r_to:
                q, r = q_to, r_to
                break
        if q_to is not None and r_to is not None and (q, r) != (q_to, r_to):
            raise StreamError(
                f"cut ({q_to}, {r_to}) is not on the path of chunk "
                f"{job.chunk_index} (walk ended at ({q}, {r}))"
            )
        frontier_q = q_to if q_to is not None else q
        frontier_r = r_to if r_to is not None else r
        for op, length in committed:
            append_run(self._runs, op, length)
        self._text_parts.append(
            job.text[pending.entry_r - job.ref_start:frontier_r - job.ref_start]
        )
        return frontier_q, frontier_r
