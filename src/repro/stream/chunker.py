"""Overlapping reference chunking with O(chunk) buffering.

The SegAlign/KegAlign splitting pattern: the reference is cut into
windows of ``chunk_size`` bases that overlap their successor by
``overlap`` bases, so every alignment feature of up to ``overlap`` bases
is wholly contained in at least one window and neighbouring windows
share enough sequence to reconcile their alignments on exact-match
anchors.  The chunker consumes the reference as a *block stream* (a
string is accepted too) and never buffers more than one window plus one
input block — the first leg of the pipeline's O(chunk) memory bound.

Edge semantics (all tested in ``tests/stream/test_chunker.py``):

* ``overlap >= chunk_size`` or ``chunk_size < 1`` → :class:`ValueError`
  at call time — the stream would not advance.
* reference shorter than ``chunk_size`` (including exactly equal) →
  one final chunk holding the whole reference.
* empty reference → zero chunks (the pipeline turns that into a
  :class:`~repro.stream.pipeline.StreamError` — an empty genome cannot
  anchor anything).
* the final chunk is whatever remains past the last full window; it is
  always at least ``overlap + 1`` bases (it still spans the shared
  region with its predecessor plus new sequence), never an empty or
  sub-overlap sliver.
* ``N`` runs are carried through verbatim — chunk boundaries may fall
  inside them; the filter simply never votes there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple, Union


@dataclass(frozen=True)
class ReferenceChunk:
    """One overlapping window of the streamed reference.

    Attributes:
        index: 0-based chunk number.
        start: absolute reference offset of the first base (inclusive).
        end: absolute reference offset past the last base (exclusive).
        sequence: the window's bases, ``end - start`` of them.
        is_final: true for the last chunk of the reference.
    """

    index: int
    start: int
    end: int
    sequence: str
    is_final: bool

    def __len__(self) -> int:
        return self.end - self.start


def validate_chunking(chunk_size: int, overlap: int) -> None:
    """Reject chunk geometries that cannot advance.

    Raises:
        ValueError: when ``chunk_size < 1``, ``overlap < 0``, or
            ``overlap >= chunk_size`` (the window would never move
            forward past the shared region).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if overlap < 0:
        raise ValueError(f"overlap must be >= 0, got {overlap}")
    if overlap >= chunk_size:
        raise ValueError(
            f"overlap ({overlap}) must be smaller than chunk_size "
            f"({chunk_size}) or the stream cannot advance"
        )


def chunk_spans(
    length: int, chunk_size: int, overlap: int
) -> List[Tuple[int, int]]:
    """The ``(start, end)`` windows a reference of ``length`` bases cuts
    into — the offline mirror of :func:`iter_reference_chunks`, used by
    tests and by cost planning."""
    validate_chunking(chunk_size, overlap)
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    spans: List[Tuple[int, int]] = []
    step = chunk_size - overlap
    start = 0
    while True:
        end = min(start + chunk_size, length)
        if length == 0:
            break
        spans.append((start, end))
        if end >= length:
            break
        start += step
    return spans


def iter_reference_chunks(
    reference: Union[str, Iterable[str]],
    chunk_size: int,
    overlap: int,
) -> Iterator[ReferenceChunk]:
    """Stream overlapping chunks off a reference block stream.

    ``reference`` may be a plain string (already in memory) or any
    iterable of string blocks (e.g.
    :func:`repro.workloads.seqio.iter_fasta_blocks`); blocks may be of
    any size.  Buffering never exceeds one window plus the largest
    single input block.

    Geometry is validated eagerly, at call time — not deferred to the
    first ``next()`` like the generator body.
    """
    validate_chunking(chunk_size, overlap)
    blocks: Iterable[str]
    if isinstance(reference, str):
        blocks = (reference,) if reference else ()
    else:
        blocks = reference

    def chunks() -> Iterator[ReferenceChunk]:
        step = chunk_size - overlap
        buffer = ""
        base = 0
        index = 0
        for block in blocks:
            if not block:
                continue
            buffer += block
            # Emit full windows while at least one base past the window
            # proves it is not the final chunk.
            while len(buffer) > chunk_size:
                yield ReferenceChunk(
                    index=index,
                    start=base,
                    end=base + chunk_size,
                    sequence=buffer[:chunk_size],
                    is_final=False,
                )
                index += 1
                buffer = buffer[step:]
                base += step
        if buffer:
            yield ReferenceChunk(
                index=index,
                start=base,
                end=base + len(buffer),
                sequence=buffer,
                is_final=True,
            )

    return chunks()
