"""Typed failures of the chunked streaming pipeline."""

from __future__ import annotations


class StreamError(RuntimeError):
    """Raised when a streamed alignment cannot be assembled.

    Covers unusable inputs (empty query/reference), filters that find no
    candidate window at all, and stitch-time contract violations such as
    non-contiguous chunk submissions.
    """
