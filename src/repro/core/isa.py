"""Functional model of the GMX ISA extension (paper §5).

The model executes GMX instructions over explicit architectural state:

* three R-type instructions — :meth:`GmxIsa.gmx_v`, :meth:`GmxIsa.gmx_h`,
  :meth:`GmxIsa.gmx_tb`;
* five architectural state registers accessed with :meth:`GmxIsa.csrw` /
  :meth:`GmxIsa.csrr` — ``gmx_pattern``, ``gmx_text``, ``gmx_pos``,
  ``gmx_lo``, ``gmx_hi``.

ΔV/ΔH vectors travel through general-purpose registers as 2T-bit images
(2 bits per Δ value, see :mod:`repro.core.bitvec`).  ``gmx_pos`` one-hot
encodes a cell on the tile's bottom row (slots 0..T−1, by column) or right
column (slots T..2T−1, by row).  ``gmx_lo``/``gmx_hi`` hold the 2-bit-encoded
traceback ops indexed by antidiagonal, with the next-tile code in gmx_hi's
top two bits (see :mod:`repro.core.traceback`).

Partial tiles: the architectural pattern/text registers record the chunk
*contents*; chunks shorter than T model the masking a hardware
implementation applies at sequence boundaries.  All distances stay exact.

Every executed instruction is retired into :attr:`GmxIsa.retired`, which the
cycle-level models in :mod:`repro.sim` consume.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import runtime as obs
from .bitvec import pack_deltas, unpack_deltas
from .tile import DEFAULT_TILE_SIZE, build_peq, compute_tile
from .traceback import TileTraceback, pack_tile_ops, traceback_tile

#: CSR names, as in the paper.
CSR_NAMES = ("gmx_pattern", "gmx_text", "gmx_pos", "gmx_lo", "gmx_hi")


class IsaError(RuntimeError):
    """Raised on illegal ISA-level usage (bad CSR, malformed position, ...)."""


#: Ambient fault hook: applied to every :class:`GmxIsa` created while a
#: :func:`fault_injection` context is active (unless the instance carries
#: its own hook).  This is how the resilience framework corrupts the ISA
#: state of aligners that construct their ISA instances internally — the
#: software under test runs unmodified on a "faulty core".
_AMBIENT_FAULT_HOOK: Optional[object] = None


@contextlib.contextmanager
def fault_injection(hook: object) -> Iterator[None]:
    """Run a block with ``hook`` injected into every GMX ISA instance.

    The hook observes ``on_tile_output(op, value, tile_size)`` and
    ``on_csr_write(csr, value)`` and returns the (possibly corrupted)
    value.  Nesting restores the previous hook on exit; the hook is
    process-local (each chaos worker arms its own).
    """
    global _AMBIENT_FAULT_HOOK
    previous = _AMBIENT_FAULT_HOOK
    _AMBIENT_FAULT_HOOK = hook
    try:
        yield
    finally:
        _AMBIENT_FAULT_HOOK = previous


@dataclass(frozen=True)
class IsaEvent:
    """One retired instruction in a recorded GMX instruction stream.

    Events carry the concrete architectural values in flight, which is what
    lets :mod:`repro.analysis.verifier` run value-level dataflow checks
    (Δ-encoding domains, gmx_pos well-formedness, tile-edge provenance) that
    a register-number-only binary decoding cannot.

    Attributes:
        op: mnemonic — ``csrw``, ``csrr``, ``gmx.v``, ``gmx.h``, ``gmx.vh``
            or ``gmx.tb``.
        csr: CSR name for ``csrw``/``csrr`` events.
        value: value written (``csrw``) or read (``csrr``).
        rs1 / rs2: packed ΔV_in / ΔH_in operand images of a tile instruction.
        out: produced values — ``(ΔV_out,)``, ``(ΔH_out,)``,
            ``(ΔV_out, ΔH_out)``, or ``(gmx_lo, gmx_hi, gmx_pos')``.
    """

    op: str
    csr: Optional[str] = None
    value: object = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    out: Tuple = ()


def encode_pos(row: int, col: int, tile_size: int = DEFAULT_TILE_SIZE) -> int:
    """One-hot encode a traceback start cell into a gmx_pos image.

    Cells on the bottom row use slots 0..T−1 (indexed by column); remaining
    cells on the right column use slots T..2T−1 (indexed by row).  The
    bottom-right corner encodes through its bottom-row slot.
    """
    if not (0 <= row < tile_size and 0 <= col < tile_size):
        raise IsaError(f"position {(row, col)!r} outside a {tile_size}-tile")
    if row == tile_size - 1:
        return 1 << col
    if col == tile_size - 1:
        return 1 << (tile_size + row)
    raise IsaError(
        f"position {(row, col)!r} is not on the bottom or right tile edge"
    )


def decode_pos(image: int, tile_size: int = DEFAULT_TILE_SIZE) -> Tuple[int, int]:
    """Decode a one-hot gmx_pos image back to a (row, col) cell."""
    if image <= 0 or image & (image - 1):
        raise IsaError(f"gmx_pos image {image:#x} is not one-hot")
    slot = image.bit_length() - 1
    if slot < tile_size:
        return tile_size - 1, slot
    if slot < 2 * tile_size:
        return slot - tile_size, tile_size - 1
    raise IsaError(f"gmx_pos slot {slot} outside 2T = {2 * tile_size}")


def clamp_pos(row: int, col: int, rows: int, cols: int) -> Tuple[int, int]:
    """Clamp a full-tile entry position onto a partial tile's edge.

    When the neighbouring tile is partial (sequence tail), the entry cell
    reported by the previous ``gmx.tb`` — expressed for a full T×T tile —
    maps onto the partial tile's actual bottom row / right column.
    """
    return min(row, rows - 1), min(col, cols - 1)


@dataclass
class GmxIsa:
    """Architectural state and instruction semantics of the GMX extension.

    Attributes:
        tile_size: T, the number of Δ values per vector register.
        gmx_pattern: current pattern chunk (rows of the active tile).
        gmx_text: current text chunk (columns of the active tile).
        gmx_pos: one-hot traceback position image.
        gmx_lo: low half of the 2-bit-encoded tile alignment.
        gmx_hi: high half plus the 2-bit next-tile code.
        retired: executed-instruction counter, by mnemonic.
        trace: when set to a list, every retired instruction is appended to
            it as an :class:`IsaEvent` — the ordered stream the static
            program verifier (:mod:`repro.analysis`) consumes.  ``None``
            (the default) disables recording.
        fault_hook: optional fault-injection hook (see
            :mod:`repro.resilience.injectors`).  When set, every tile
            instruction's output register image passes through
            ``fault_hook.on_tile_output(op, value, tile_size)`` and every
            CSR write through ``fault_hook.on_csr_write(csr, value)`` —
            the model's analogue of transient upsets on the GMX-AC output
            latches and the CSR write bus.  Corrupted values flow into the
            retired trace exactly as the software would observe them, so
            the program verifier sees what a real core would.  ``None``
            (the default) executes fault-free.
    """

    tile_size: int = DEFAULT_TILE_SIZE
    gmx_pattern: str = ""
    gmx_text: str = ""
    gmx_pos: int = 0
    gmx_lo: int = 0
    gmx_hi: int = 0
    retired: Counter = field(default_factory=Counter)
    trace: Optional[List[IsaEvent]] = None
    fault_hook: Optional[object] = field(default=None, repr=False)
    _peq_cache_key: str = field(default="", repr=False)
    _peq_cache: dict = field(default_factory=dict, repr=False)

    def _active_fault_hook(self) -> Optional[object]:
        """This core's fault hook: the instance's own, else the ambient one."""
        if self.fault_hook is not None:
            return self.fault_hook
        return _AMBIENT_FAULT_HOOK

    def _retire(self, event: IsaEvent) -> None:
        """Append an event to the retired stream (when tracing is on)."""
        if self.trace is not None:
            self.trace.append(event)

    # -- CSR access ---------------------------------------------------------

    def csrw(self, csr: str, value) -> None:
        """Write an architectural state register (one retired instruction)."""
        if csr not in CSR_NAMES:
            raise IsaError(f"unknown GMX CSR {csr!r}")
        if csr in ("gmx_pattern", "gmx_text"):
            if not isinstance(value, str):
                raise IsaError(f"{csr} expects a character chunk, got {type(value)}")
            if len(value) > self.tile_size:
                raise IsaError(
                    f"{csr} chunk of {len(value)} exceeds tile size {self.tile_size}"
                )
        hook = self._active_fault_hook()
        if hook is not None:
            value = hook.on_csr_write(csr, value)
        setattr(self, csr, value)
        self.retired["csrw"] += 1
        self._retire(IsaEvent("csrw", csr=csr, value=value))

    def csrr(self, csr: str):
        """Read an architectural state register (one retired instruction)."""
        if csr not in CSR_NAMES:
            raise IsaError(f"unknown GMX CSR {csr!r}")
        self.retired["csrr"] += 1
        value = getattr(self, csr)
        self._retire(IsaEvent("csrr", csr=csr, value=value))
        return value

    # -- tile computation instructions ---------------------------------------

    def _tile_inputs(self, rs1: int, rs2: int):
        pattern = self.gmx_pattern
        text = self.gmx_text
        if not pattern or not text:
            raise IsaError("gmx_pattern/gmx_text must be written before gmx.{v,h,tb}")
        dv_in = unpack_deltas(rs1, len(pattern))
        dh_in = unpack_deltas(rs2, len(text))
        return pattern, text, dv_in, dh_in

    def _peq(self, pattern: str):
        if pattern != self._peq_cache_key:
            self._peq_cache = build_peq(pattern)
            self._peq_cache_key = pattern
        return self._peq_cache

    def gmx_v(self, rs1: int, rs2: int) -> int:
        """``gmx.v rd, rs1, rs2`` — compute the tile and return ΔV_out.

        ``rs1`` holds the packed ΔV_in (left edge), ``rs2`` ΔH_in (top edge).
        """
        pattern, text, dv_in, dh_in = self._tile_inputs(rs1, rs2)
        result = compute_tile(
            pattern, text, dv_in, dh_in,
            tile_size=self.tile_size, peq=self._peq(pattern),
        )
        self.retired["gmx.v"] += 1
        dv_out = pack_deltas(result.dv_out)
        hook = self._active_fault_hook()
        if hook is not None:
            dv_out = hook.on_tile_output("gmx.v", dv_out, self.tile_size)
        self._retire(IsaEvent("gmx.v", rs1=rs1, rs2=rs2, out=(dv_out,)))
        return dv_out

    def gmx_h(self, rs1: int, rs2: int) -> int:
        """``gmx.h rd, rs1, rs2`` — compute the tile and return ΔH_out."""
        pattern, text, dv_in, dh_in = self._tile_inputs(rs1, rs2)
        result = compute_tile(
            pattern, text, dv_in, dh_in,
            tile_size=self.tile_size, peq=self._peq(pattern),
        )
        self.retired["gmx.h"] += 1
        dh_out = pack_deltas(result.dh_out)
        hook = self._active_fault_hook()
        if hook is not None:
            dh_out = hook.on_tile_output("gmx.h", dh_out, self.tile_size)
        self._retire(IsaEvent("gmx.h", rs1=rs1, rs2=rs2, out=(dh_out,)))
        return dh_out

    def gmx_vh(self, rs1: int, rs2: int) -> Tuple[int, int]:
        """Fused tile computation returning (ΔV_out, ΔH_out) in one call.

        Models the dual-destination variant the paper describes for cores
        with two register write ports (§5); retires a single ``gmx.vh``.
        """
        pattern, text, dv_in, dh_in = self._tile_inputs(rs1, rs2)
        result = compute_tile(
            pattern, text, dv_in, dh_in,
            tile_size=self.tile_size, peq=self._peq(pattern),
        )
        self.retired["gmx.vh"] += 1
        dv_out = pack_deltas(result.dv_out)
        dh_out = pack_deltas(result.dh_out)
        hook = self._active_fault_hook()
        if hook is not None:
            dv_out = hook.on_tile_output("gmx.vh", dv_out, self.tile_size)
            dh_out = hook.on_tile_output("gmx.vh", dh_out, self.tile_size)
        self._retire(IsaEvent("gmx.vh", rs1=rs1, rs2=rs2, out=(dv_out, dh_out)))
        return dv_out, dh_out

    # -- traceback instruction -----------------------------------------------

    def gmx_tb(self, rs1: int, rs2: int) -> TileTraceback:
        """``gmx.tb rs1, rs2`` — tile traceback from the gmx_pos cell.

        Consumes ΔV_in/ΔH_in from ``rs1``/``rs2`` and the start position from
        ``gmx_pos``; deposits the encoded alignment into ``gmx_lo``/``gmx_hi``
        and the next tile's entry position into ``gmx_pos``.

        Returns the decoded :class:`TileTraceback` for convenience — the
        information content is identical to the CSR state.
        """
        pattern, text, dv_in, dh_in = self._tile_inputs(rs1, rs2)
        row, col = decode_pos(self.gmx_pos, self.tile_size)
        row, col = clamp_pos(row, col, len(pattern), len(text))
        result = traceback_tile(
            pattern, text, dv_in, dh_in, (row, col), tile_size=self.tile_size
        )
        self.gmx_lo, self.gmx_hi = pack_tile_ops(
            result.ops, (row, col), result.next_tile, tile_size=self.tile_size
        )
        next_row, next_col = result.next_pos
        self.gmx_pos = encode_pos(next_row, next_col, self.tile_size)
        self.retired["gmx.tb"] += 1
        self._retire(
            IsaEvent(
                "gmx.tb",
                rs1=rs1,
                rs2=rs2,
                out=(self.gmx_lo, self.gmx_hi, self.gmx_pos),
            )
        )
        return result

    # -- decoded-instruction execution ---------------------------------------

    def execute(self, instruction, registers: Dict[int, int]) -> None:
        """Execute one decoded GMX instruction against a register file.

        ``instruction`` is a :class:`repro.core.encoding.GmxInstruction`;
        ``registers`` maps register numbers to values (x0 is hard-wired to
        zero and never written).  All four mnemonics execute, including the
        dual-destination ``gmx.vh``, whose second result (ΔH_out) lands in
        the odd register of the rd-aligned pair — the 2-port convention of
        §5: ``rd`` must be even so rd/rd+1 share a write port pair.

        Raises:
            IsaError: on an unknown mnemonic or an rd ``gmx.vh`` cannot use.
        """
        def read(reg: int) -> int:
            return registers.get(reg, 0) if reg else 0

        rs1 = read(instruction.rs1)
        rs2 = read(instruction.rs2)

        def write(reg: int, value: int) -> None:
            if reg != 0:
                registers[reg] = value

        with obs.span("isa.execute", op=instruction.mnemonic):
            if instruction.mnemonic == "gmx.v":
                write(instruction.rd, self.gmx_v(rs1, rs2))
            elif instruction.mnemonic == "gmx.h":
                write(instruction.rd, self.gmx_h(rs1, rs2))
            elif instruction.mnemonic == "gmx.vh":
                if instruction.rd % 2 or instruction.rd == 0:
                    raise IsaError(
                        f"gmx.vh needs an even, non-zero rd for the rd/rd+1 "
                        f"destination pair, got x{instruction.rd}"
                    )
                dv_out, dh_out = self.gmx_vh(rs1, rs2)
                write(instruction.rd, dv_out)
                write(instruction.rd + 1, dh_out)
            elif instruction.mnemonic == "gmx.tb":
                self.gmx_tb(rs1, rs2)
            else:
                raise IsaError(
                    f"unsupported GMX mnemonic {instruction.mnemonic!r}"
                )
        obs.inc("isa.executed")

    # -- accounting -----------------------------------------------------------

    @property
    def retired_total(self) -> int:
        """Total retired GMX + CSR instructions."""
        return sum(self.retired.values())

    def reset_counters(self) -> None:
        """Clear the retired-instruction counter."""
        self.retired.clear()


def pack_vector(deltas: Sequence[int]) -> int:
    """Pack a Δ vector into a register image (alias of bitvec.pack_deltas)."""
    return pack_deltas(deltas)


def unpack_vector(image: int, count: int) -> list:
    """Unpack ``count`` Δ values from a register image."""
    return unpack_deltas(image, count)
