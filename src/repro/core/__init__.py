"""Core GMX primitives: the GMXΔ function, tiles, traceback, and the ISA model.

This package is the paper's primary contribution (§4–§5): the GMX-Tile
bit-parallel algorithm and the functional semantics of the ``gmx.v`` /
``gmx.h`` / ``gmx.tb`` instructions with their architectural state registers.
"""

from .alphabet import DNA_BASES, AlphabetError, encode_2bit, decode_2bit, reverse_complement, validate_dna
from .cigar import (
    Alignment,
    AlignmentError,
    AlignmentStats,
    alignment_stats,
    cigar_to_ops,
    edit_cost,
    ops_to_cigar,
    pack_ops,
    unpack_ops,
    OP_DELETION,
    OP_INSERTION,
    OP_MATCH,
    OP_MISMATCH,
)
from .delta import gmx_delta, gmx_delta_bits, gmx_delta_via_bits
from .encoding import (
    CSR_ADDRESSES,
    EncodingError,
    GmxInstruction,
    decode as decode_instruction,
    encode as encode_instruction,
)
from .isa import GmxIsa, IsaError, decode_pos, encode_pos
from .tile import (
    DEFAULT_TILE_SIZE,
    TileOpCounter,
    TileResult,
    boundary_deltas,
    compute_tile,
    compute_tile_reference,
)
from .traceback import NextTile, TileTraceback, traceback_tile

__all__ = [
    "Alignment",
    "AlignmentError",
    "AlignmentStats",
    "AlphabetError",
    "CSR_ADDRESSES",
    "DEFAULT_TILE_SIZE",
    "DNA_BASES",
    "EncodingError",
    "GmxInstruction",
    "decode_instruction",
    "encode_instruction",
    "GmxIsa",
    "IsaError",
    "NextTile",
    "OP_DELETION",
    "OP_INSERTION",
    "OP_MATCH",
    "OP_MISMATCH",
    "TileOpCounter",
    "TileResult",
    "TileTraceback",
    "boundary_deltas",
    "cigar_to_ops",
    "compute_tile",
    "compute_tile_reference",
    "decode_2bit",
    "decode_pos",
    "edit_cost",
    "encode_2bit",
    "encode_pos",
    "gmx_delta",
    "gmx_delta_bits",
    "gmx_delta_via_bits",
    "alignment_stats",
    "ops_to_cigar",
    "pack_ops",
    "reverse_complement",
    "traceback_tile",
    "unpack_ops",
    "validate_dna",
]
