"""Alignment operations, CIGAR strings, and alignment scoring.

Conventions (matching the paper's Figure 1):

* the *pattern* indexes the DP-matrix rows, the *text* the columns;
* ``M`` consumes one pattern and one text character that match;
* ``X`` consumes one of each that mismatch (cost 1 under edit distance);
* ``D`` (deletion) consumes one pattern character only — a vertical move;
* ``I`` (insertion) consumes one text character only — a horizontal move.

An alignment is stored pattern→text order (top-left to bottom-right of the
DP-matrix).  ``gmx.tb`` produces operations bottom-right → top-left; callers
reverse before building an :class:`Alignment`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Alignment operations in their 2-bit hardware encoding order (paper §5).
OP_MATCH = "M"
OP_MISMATCH = "X"
OP_INSERTION = "I"
OP_DELETION = "D"

ALL_OPS = (OP_MATCH, OP_MISMATCH, OP_INSERTION, OP_DELETION)

#: 2-bit encoding used by gmx_lo / gmx_hi.
OP_TO_CODE = {OP_MATCH: 0, OP_MISMATCH: 1, OP_INSERTION: 2, OP_DELETION: 3}
CODE_TO_OP = {code: op for op, code in OP_TO_CODE.items()}

_CIGAR_TOKEN = re.compile(r"(\d+)([MXID=])")


class AlignmentError(ValueError):
    """Raised when an alignment is inconsistent with its sequence pair."""


def edit_cost(ops: Iterable[str]) -> int:
    """Edit cost of an operation sequence (M free, X/I/D cost 1)."""
    cost = 0
    for op in ops:
        if op == OP_MATCH:
            continue
        if op in (OP_MISMATCH, OP_INSERTION, OP_DELETION):
            cost += 1
        else:
            raise AlignmentError(f"unknown alignment operation {op!r}")
    return cost


def ops_to_cigar(ops: Sequence[str]) -> str:
    """Run-length encode an operation sequence into a CIGAR string."""
    if not ops:
        return ""
    parts = []
    run_op = ops[0]
    run_len = 0
    for op in ops:
        if op == run_op:
            run_len += 1
        else:
            parts.append(f"{run_len}{run_op}")
            run_op = op
            run_len = 1
    parts.append(f"{run_len}{run_op}")
    return "".join(parts)


def cigar_to_ops(cigar: str) -> List[str]:
    """Expand a CIGAR string into an operation list (``=`` maps to ``M``)."""
    ops: List[str] = []
    consumed = 0
    for match in _CIGAR_TOKEN.finditer(cigar):
        consumed += len(match.group(0))
        length = int(match.group(1))
        op = match.group(2)
        if op == "=":
            op = OP_MATCH
        ops.extend([op] * length)
    if consumed != len(cigar):
        raise AlignmentError(f"malformed CIGAR string {cigar!r}")
    return ops


@dataclass(frozen=True)
class Alignment:
    """A complete pairwise alignment of ``pattern`` against ``text``.

    Attributes:
        pattern: the row sequence.
        text: the column sequence.
        ops: operations in pattern→text order.
        score: the edit distance the aligner reports for this alignment.
    """

    pattern: str
    text: str
    ops: Tuple[str, ...]
    score: int

    @property
    def cigar(self) -> str:
        """CIGAR string of the alignment."""
        return ops_to_cigar(self.ops)

    def validate(self) -> None:
        """Check internal consistency.

        Verifies the operations consume exactly the two sequences, that M/X
        labels agree with the characters, and that the recomputed edit cost
        equals ``score``.

        Raises:
            AlignmentError: on any inconsistency.
        """
        i = 0  # pattern cursor
        j = 0  # text cursor
        for position, op in enumerate(self.ops):
            if op in (OP_MATCH, OP_MISMATCH):
                if i >= len(self.pattern) or j >= len(self.text):
                    raise AlignmentError(
                        f"op {op} at {position} overruns sequences ({i}, {j})"
                    )
                chars_equal = self.pattern[i] == self.text[j]
                if op == OP_MATCH and not chars_equal:
                    raise AlignmentError(
                        f"M at op {position} aligns mismatching characters "
                        f"{self.pattern[i]!r} vs {self.text[j]!r}"
                    )
                if op == OP_MISMATCH and chars_equal:
                    raise AlignmentError(
                        f"X at op {position} aligns matching characters "
                        f"{self.pattern[i]!r}"
                    )
                i += 1
                j += 1
            elif op == OP_DELETION:
                if i >= len(self.pattern):
                    raise AlignmentError(f"D at op {position} overruns pattern")
                i += 1
            elif op == OP_INSERTION:
                if j >= len(self.text):
                    raise AlignmentError(f"I at op {position} overruns text")
                j += 1
            else:
                raise AlignmentError(f"unknown alignment operation {op!r}")
        if i != len(self.pattern) or j != len(self.text):
            raise AlignmentError(
                f"alignment consumes ({i}, {j}) of "
                f"({len(self.pattern)}, {len(self.text)}) characters"
            )
        cost = edit_cost(self.ops)
        if cost != self.score:
            raise AlignmentError(
                f"operation cost {cost} disagrees with reported score {self.score}"
            )

    def affine_score(
        self,
        *,
        match: int = 0,
        mismatch: int = 4,
        gap_open: int = 6,
        gap_extend: int = 2,
    ) -> int:
        """Gap-affine penalty of this alignment (lower is better).

        Used by the Figure-3 experiment to measure the score deviation of
        edit-distance alignments from the optimal gap-affine alignment.
        """
        total = 0
        previous = None
        for op in self.ops:
            if op == OP_MATCH:
                total += match
            elif op == OP_MISMATCH:
                total += mismatch
            elif op in (OP_INSERTION, OP_DELETION):
                total += gap_extend
                if op != previous:
                    total += gap_open
            previous = op
        return total


def pack_ops(ops: Sequence[str]) -> bytes:
    """Pack operations into the 2-bit stream the GMX traceback emits.

    Algorithm 2 stores alignments as raw 2-bit codes (gmx_lo/gmx_hi dumps);
    this is the byte-level equivalent — four ops per byte, little-endian
    fields — prefixed by nothing: callers keep the op count.
    """
    packed = bytearray((len(ops) + 3) // 4)
    for index, op in enumerate(ops):
        code = OP_TO_CODE.get(op)
        if code is None:
            raise AlignmentError(f"unknown alignment operation {op!r}")
        packed[index // 4] |= code << (2 * (index % 4))
    return bytes(packed)


def unpack_ops(packed: bytes, count: int) -> List[str]:
    """Inverse of :func:`pack_ops` for the first ``count`` operations."""
    if count < 0 or count > 4 * len(packed):
        raise AlignmentError(
            f"cannot unpack {count} ops from {len(packed)} bytes"
        )
    ops = []
    for index in range(count):
        code = (packed[index // 4] >> (2 * (index % 4))) & 0b11
        ops.append(CODE_TO_OP[code])
    return ops


@dataclass(frozen=True)
class AlignmentStats:
    """Operation breakdown of one alignment.

    Attributes:
        matches / mismatches / insertions / deletions: op counts.
    """

    matches: int
    mismatches: int
    insertions: int
    deletions: int

    @property
    def columns(self) -> int:
        """Total alignment columns."""
        return self.matches + self.mismatches + self.insertions + self.deletions

    @property
    def identity(self) -> float:
        """Fraction of alignment columns that are matches (BLAST identity)."""
        return self.matches / self.columns if self.columns else 0.0

    @property
    def gaps(self) -> int:
        """Total gap columns (insertions + deletions)."""
        return self.insertions + self.deletions


def alignment_stats(ops: Sequence[str]) -> AlignmentStats:
    """Count the operations of an alignment."""
    counts = {op: 0 for op in ALL_OPS}
    for op in ops:
        if op not in counts:
            raise AlignmentError(f"unknown alignment operation {op!r}")
        counts[op] += 1
    return AlignmentStats(
        matches=counts[OP_MATCH],
        mismatches=counts[OP_MISMATCH],
        insertions=counts[OP_INSERTION],
        deletions=counts[OP_DELETION],
    )


def classify_pair(pattern_char: str, text_char: str) -> str:
    """Return M or X for a diagonal move over the given character pair."""
    return OP_MATCH if pattern_char == text_char else OP_MISMATCH


def relabel_diagonal_ops(pattern: str, text: str, ops: Sequence[str]) -> List[str]:
    """Rewrite each diagonal op as M/X according to the actual characters.

    Some baselines emit a generic "diagonal" op; this normalises it so
    :meth:`Alignment.validate` can check character agreement.
    """
    out: List[str] = []
    i = 0
    j = 0
    for op in ops:
        if op in (OP_MATCH, OP_MISMATCH):
            out.append(classify_pair(pattern[i], text[j]))
            i += 1
            j += 1
        elif op == OP_DELETION:
            out.append(op)
            i += 1
        elif op == OP_INSERTION:
            out.append(op)
            j += 1
        else:
            raise AlignmentError(f"unknown alignment operation {op!r}")
    return out
