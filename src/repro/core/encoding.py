"""RISC-V instruction-word encodings for the GMX extension (paper §5).

"GMX instructions can use standard R-type RISC-V encoding, using the
reserved custom op-codes."  This module pins that down: an assembler and
disassembler for the three instructions over the *custom-0* major opcode
(0001011), with funct3 selecting the operation:

```
 31        25 24  20 19  15 14  12 11   7 6      0
┌────────────┬──────┬──────┬──────┬──────┬────────┐
│   funct7   │ rs2  │ rs1  │funct3│  rd  │ opcode │
└────────────┴──────┴──────┴──────┴──────┴────────┘
   0000000     ΔH_in  ΔV_in  000    ΔV_out  0001011   gmx.v
   0000000     ΔH_in  ΔV_in  001    ΔH_out  0001011   gmx.h
   0000000     ΔH_in  ΔV_in  010    x0      0001011   gmx.tb
   0000000     ΔH_in  ΔV_in  011    ΔV_out  0001011   gmx.vh (2-port variant)
```

The architectural state registers live in the custom read/write CSR space
(0x800–0x804), accessed with the base ISA's ``csrrw``/``csrrs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

#: RISC-V custom-0 major opcode.
CUSTOM0_OPCODE = 0b0001011

#: RISC-V SYSTEM major opcode (csrrw/csrrs live here).
SYSTEM_OPCODE = 0b1110011

#: funct3 of the two CSR instructions the GMX programs use.
CSR_FUNCT3: Dict[str, int] = {
    "csrrw": 0b001,  # atomic read/write — the GMX "csrw" idiom
    "csrrs": 0b010,  # read/set; with rs1 = x0 a pure CSR read
}
_CSR_MNEMONIC = {funct3: name for name, funct3 in CSR_FUNCT3.items()}

#: funct3 selector per GMX mnemonic.
FUNCT3: Dict[str, int] = {
    "gmx.v": 0b000,
    "gmx.h": 0b001,
    "gmx.tb": 0b010,
    "gmx.vh": 0b011,
}
_MNEMONIC = {funct3: name for name, funct3 in FUNCT3.items()}

#: CSR addresses of the GMX architectural state (custom R/W space).
CSR_ADDRESSES: Dict[str, int] = {
    "gmx_pattern": 0x800,
    "gmx_text": 0x801,
    "gmx_pos": 0x802,
    "gmx_lo": 0x803,
    "gmx_hi": 0x804,
}
_CSR_NAMES = {address: name for name, address in CSR_ADDRESSES.items()}


class EncodingError(ValueError):
    """Raised on unencodable operands or undecodable words."""


@dataclass(frozen=True)
class GmxInstruction:
    """A decoded GMX instruction.

    Attributes:
        mnemonic: one of ``gmx.v``, ``gmx.h``, ``gmx.tb``, ``gmx.vh``.
        rd / rs1 / rs2: integer register numbers (x0–x31).
    """

    mnemonic: str
    rd: int
    rs1: int
    rs2: int

    def __str__(self) -> str:
        if self.mnemonic == "gmx.tb":
            return f"{self.mnemonic} x{self.rs1}, x{self.rs2}"
        return f"{self.mnemonic} x{self.rd}, x{self.rs1}, x{self.rs2}"


def _check_register(name: str, value: int) -> None:
    if not 0 <= value <= 31:
        raise EncodingError(f"{name} must be x0–x31, got {value}")


def encode(mnemonic: str, rd: int, rs1: int, rs2: int) -> int:
    """Assemble one GMX instruction into its 32-bit word.

    ``gmx.tb`` has no destination register (its results land in CSRs);
    pass ``rd=0`` for it.
    """
    funct3 = FUNCT3.get(mnemonic)
    if funct3 is None:
        raise EncodingError(f"unknown GMX mnemonic {mnemonic!r}")
    if mnemonic == "gmx.tb" and rd != 0:
        raise EncodingError("gmx.tb writes no GPR; rd must be x0")
    _check_register("rd", rd)
    _check_register("rs1", rs1)
    _check_register("rs2", rs2)
    return (
        (0 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (rd << 7)
        | CUSTOM0_OPCODE
    )


def decode(word: int) -> GmxInstruction:
    """Disassemble a 32-bit word into a GMX instruction."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    if word & 0x7F != CUSTOM0_OPCODE:
        raise EncodingError(
            f"word {word:#010x} is not in the custom-0 opcode space"
        )
    funct3 = (word >> 12) & 0b111
    mnemonic = _MNEMONIC.get(funct3)
    if mnemonic is None:
        raise EncodingError(f"unassigned GMX funct3 {funct3:#05b}")
    funct7 = (word >> 25) & 0x7F
    if funct7 != 0:
        raise EncodingError(f"reserved funct7 {funct7:#09b} must be zero")
    return GmxInstruction(
        mnemonic=mnemonic,
        rd=(word >> 7) & 0x1F,
        rs1=(word >> 15) & 0x1F,
        rs2=(word >> 20) & 0x1F,
    )


@dataclass(frozen=True)
class CsrInstruction:
    """A decoded base-ISA CSR instruction targeting a GMX CSR.

    Attributes:
        mnemonic: ``csrrw`` (write) or ``csrrs`` (read/set; a pure read
            when ``rs1`` is x0).
        csr: GMX CSR name (``gmx_pattern`` ... ``gmx_hi``).
        rd / rs1: integer register numbers (x0–x31).
    """

    mnemonic: str
    csr: str
    rd: int
    rs1: int

    @property
    def is_write(self) -> bool:
        """True when the instruction updates the CSR."""
        return self.mnemonic == "csrrw" or self.rs1 != 0

    def __str__(self) -> str:
        return f"{self.mnemonic} x{self.rd}, {self.csr}, x{self.rs1}"


#: Any instruction a GMX program may contain.
AnyInstruction = Union[GmxInstruction, CsrInstruction]


def encode_csr(mnemonic: str, csr: str, rd: int, rs1: int) -> int:
    """Assemble a ``csrrw``/``csrrs`` word addressing a GMX CSR."""
    funct3 = CSR_FUNCT3.get(mnemonic)
    if funct3 is None:
        raise EncodingError(f"unknown CSR mnemonic {mnemonic!r}")
    _check_register("rd", rd)
    _check_register("rs1", rs1)
    return (
        (csr_address(csr) << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (rd << 7)
        | SYSTEM_OPCODE
    )


def decode_any(word: int) -> AnyInstruction:
    """Disassemble a word from either GMX opcode space.

    Custom-0 words decode to :class:`GmxInstruction`; SYSTEM words with a
    ``csrrw``/``csrrs`` funct3 and a GMX CSR address decode to
    :class:`CsrInstruction`.  Anything else raises :class:`EncodingError`.
    """
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = word & 0x7F
    if opcode == CUSTOM0_OPCODE:
        return decode(word)
    if opcode == SYSTEM_OPCODE:
        funct3 = (word >> 12) & 0b111
        mnemonic = _CSR_MNEMONIC.get(funct3)
        if mnemonic is None:
            raise EncodingError(
                f"SYSTEM funct3 {funct3:#05b} is not a GMX CSR access"
            )
        return CsrInstruction(
            mnemonic=mnemonic,
            csr=csr_name((word >> 20) & 0xFFF),
            rd=(word >> 7) & 0x1F,
            rs1=(word >> 15) & 0x1F,
        )
    raise EncodingError(
        f"word {word:#010x} is outside the GMX opcode spaces"
    )


def decode_program(words: Sequence[int]) -> List[AnyInstruction]:
    """Disassemble a whole GMX binary program, in order."""
    return [decode_any(word) for word in words]


def csr_address(name: str) -> int:
    """CSR address of a GMX architectural state register."""
    address = CSR_ADDRESSES.get(name)
    if address is None:
        raise EncodingError(f"unknown GMX CSR {name!r}")
    return address


def csr_name(address: int) -> str:
    """Inverse of :func:`csr_address`."""
    name = _CSR_NAMES.get(address)
    if name is None:
        raise EncodingError(f"no GMX CSR at address {address:#x}")
    return name
