"""Tile-wise traceback — the semantics of ``gmx.tb`` (paper §5, §6.2).

Because GMX only stores the DP elements at tile edges, the traceback unit
recomputes the tile interior from the stored edge vectors (exactly what the
GMX-TB hardware does) and then walks the alignment path backwards from a
start position on the tile's bottom or right edge until it leaves the tile
through the top or left edge.

The walk at a cell (i, j) applies the CC_TB priority rule (Figure 8):

1. ``eq == 1``      → **M**  (diagonal; D[i,j] = D[i-1,j-1] when the
   characters match — a standard edit-distance lemma, so the move is always
   on an optimal path);
2. ``Δv[i,j] == +1`` → **D** (vertical move: D[i,j] = D[i-1,j] + 1);
3. ``Δh[i,j] == +1`` → **I** (horizontal move: D[i,j] = D[i,j-1] + 1);
4. otherwise         → **X** (diagonal mismatch: D[i,j] = D[i-1,j-1] + 1,
   which must hold when no other predecessor is tight).

Every move lowers the antidiagonal index ``i + j`` by at least one, so the
path visits at most one cell per antidiagonal — the property the hardware
exploits to pack the tile's alignment into the 2·(2T−1)-bit gmx_lo/gmx_hi
register pair, one 2-bit op per antidiagonal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .cigar import CODE_TO_OP, OP_TO_CODE, OP_DELETION, OP_INSERTION, OP_MATCH, OP_MISMATCH
from .tile import DEFAULT_TILE_SIZE, TileInterior, compute_tile_interior


class NextTile(enum.Enum):
    """Which neighbouring tile the traceback continues in (paper Alg. 2)."""

    DIAGONAL = 0  # continue in the upper-left tile
    UP = 1  # continue in the tile above
    LEFT = 2  # continue in the tile to the left
    DONE = 3  # unused by gmx.tb itself; drivers use it at the matrix corner

    @property
    def code(self) -> int:
        """2-bit encoding stored in the top bits of gmx_hi."""
        return self.value


@dataclass(frozen=True)
class TileTraceback:
    """Result of one ``gmx.tb`` execution.

    Attributes:
        ops: alignment operations in walk order (bottom-right → top-left).
        next_tile: neighbouring tile in which the traceback continues.
        next_pos: (row, col) entry cell *within the next tile*, assuming the
            next tile has full ``tile_size`` shape.  For UP exits the entry
            row is the next tile's bottom row; for LEFT exits the entry
            column is its rightmost column.
    """

    ops: Tuple[str, ...]
    next_tile: NextTile
    next_pos: Tuple[int, int]


def walk_tile(
    pattern: str,
    text: str,
    interior: TileInterior,
    start: Tuple[int, int],
) -> Tuple[List[str], int, int]:
    """Walk the alignment path backwards through a recomputed tile interior.

    Args:
        start: (row, col) cell where the path enters the tile; must lie on
            the bottom row or the right column for hardware-faithful use,
            though the walk itself accepts any interior cell.

    Returns:
        ``(ops, exit_row, exit_col)`` where the exit coordinates are the
        first out-of-tile position reached (row == −1 and/or col == −1).
    """
    i, j = start
    rows = len(pattern)
    cols = len(text)
    if not (0 <= i < rows and 0 <= j < cols):
        raise ValueError(f"start cell {start!r} outside tile {rows}x{cols}")
    ops: List[str] = []
    while i >= 0 and j >= 0:
        if pattern[i] == text[j]:
            ops.append(OP_MATCH)
            i -= 1
            j -= 1
        elif interior.dv[i][j] == 1:
            ops.append(OP_DELETION)
            i -= 1
        elif interior.dh[i][j] == 1:
            ops.append(OP_INSERTION)
            j -= 1
        else:
            ops.append(OP_MISMATCH)
            i -= 1
            j -= 1
    return ops, i, j


def traceback_tile(
    pattern: str,
    text: str,
    dv_in: Sequence[int],
    dh_in: Sequence[int],
    start: Tuple[int, int],
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> TileTraceback:
    """Execute the full ``gmx.tb`` semantics for one tile.

    Recomputes the tile interior from its input edge vectors, walks the path
    from ``start``, and classifies the exit into a :class:`NextTile`
    direction plus the entry cell of the neighbouring tile.
    """
    interior = compute_tile_interior(
        pattern, text, dv_in, dh_in, tile_size=tile_size
    )
    ops, exit_row, exit_col = walk_tile(pattern, text, interior, start)
    if exit_row < 0 and exit_col < 0:
        next_tile = NextTile.DIAGONAL
        next_pos = (tile_size - 1, tile_size - 1)
    elif exit_row < 0:
        next_tile = NextTile.UP
        next_pos = (tile_size - 1, exit_col)
    else:
        next_tile = NextTile.LEFT
        next_pos = (exit_row, tile_size - 1)
    return TileTraceback(ops=tuple(ops), next_tile=next_tile, next_pos=next_pos)


def pack_tile_ops(
    ops: Sequence[str],
    start: Tuple[int, int],
    next_tile: NextTile,
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> Tuple[int, int]:
    """Pack a tile traceback into the (gmx_lo, gmx_hi) register images.

    Each of the 2T−1 antidiagonals owns a 2-bit field holding the op of the
    cell the path visited on it (fields of skipped antidiagonals are
    don't-care and left zero).  Antidiagonals 0..T−1 live in gmx_lo; T..2T−2
    in the low bits of gmx_hi; the top two bits of gmx_hi carry the
    next-tile code.

    Args:
        ops: walk-order operations produced by :func:`walk_tile`.
        start: the walk's start cell, which anchors the antidiagonal index.
    """
    lo = 0
    hi = 0
    diag = start[0] + start[1]
    for op in ops:
        if diag < 0:
            raise ValueError("operation sequence underruns antidiagonal 0")
        code = OP_TO_CODE[op]
        if diag < tile_size:
            lo |= code << (2 * diag)
        else:
            hi |= code << (2 * (diag - tile_size))
        diag -= 2 if op in (OP_MATCH, OP_MISMATCH) else 1
    hi |= next_tile.code << (2 * (tile_size - 1))
    return lo, hi


def unpack_tile_ops(
    lo: int,
    hi: int,
    start: Tuple[int, int],
    op_count: int,
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> Tuple[List[str], NextTile]:
    """Decode (gmx_lo, gmx_hi) back into the walk-order operation list.

    The decoder replays the antidiagonal walk: starting from the start
    cell's antidiagonal, it reads one field, steps down by 1 or 2 depending
    on the op, and repeats ``op_count`` times.
    """
    ops: List[str] = []
    diag = start[0] + start[1]
    for _ in range(op_count):
        if diag < tile_size:
            code = (lo >> (2 * diag)) & 0b11
        else:
            code = (hi >> (2 * (diag - tile_size))) & 0b11
        op = CODE_TO_OP[code]
        ops.append(op)
        diag -= 2 if op in (OP_MATCH, OP_MISMATCH) else 1
    next_tile = NextTile(((hi >> (2 * (tile_size - 1))) & 0b11))
    return ops, next_tile
