"""The GMXΔ function — the core of the GMX-Tile algorithm (paper §4.2).

The bit-parallel Myers (BPM) recurrences for the edit-distance DP matrix,

    Δv[i,j] = min{-eq[i,j], Δv[i,j-1], Δh[i-1,j]} + 1 - Δh[i-1,j]
    Δh[i,j] = min{-eq[i,j], Δv[i,j-1], Δh[i-1,j]} + 1 - Δv[i,j-1]

are symmetric in (Δv, Δh).  The paper condenses both into a single function
(Eq. 2):

    GMXΔ(Δa, Δb, eq) = min{-eq, Δa, Δb} + 1 - Δb

so that ``Δv_out = GMXΔ(Δv_in, Δh_in, eq)`` and
``Δh_out = GMXΔ(Δh_in, Δv_in, eq)``, where ``eq`` is 1 when the pattern and
text characters are equal.

Each Δ value lies in {-1, 0, +1} and is encoded in two bits (Eq. 3's
encoding): ``Δ[0] = (Δ == +1)`` and ``Δ[1] = (Δ == -1)``.  The boolean form
below uses a handful of gates per output bit, which is what makes the
hardware CC_AC cell tiny; its equivalence with the arithmetic form is
enumerable over all 18 inputs (see :func:`enumerate_gmx_delta_truth_table`).
"""

from __future__ import annotations

from typing import Iterator, Tuple

#: The three legal difference values.
DELTA_VALUES = (-1, 0, 1)

#: Encoding of each Δ value as (bit0, bit1) = (Δ==+1, Δ==-1).
_ENCODE = {1: (1, 0), 0: (0, 0), -1: (0, 1)}
_DECODE = {(1, 0): 1, (0, 0): 0, (0, 1): -1}


class DeltaEncodingError(ValueError):
    """Raised on illegal Δ values or bit patterns."""


def encode_delta(delta: int) -> Tuple[int, int]:
    """Encode a Δ value in {-1, 0, +1} as its (bit0, bit1) pair."""
    try:
        return _ENCODE[delta]
    except KeyError as exc:
        raise DeltaEncodingError(f"Δ value must be -1, 0 or +1, got {delta!r}") from exc


def decode_delta(bit0: int, bit1: int) -> int:
    """Decode a (bit0, bit1) pair back to a Δ value.

    The pattern (1, 1) is unreachable in correct operation and rejected.
    """
    try:
        return _DECODE[(bit0 & 1, bit1 & 1)]
    except KeyError as exc:
        raise DeltaEncodingError(f"illegal Δ bit pattern {(bit0, bit1)!r}") from exc


def gmx_delta(delta_a: int, delta_b: int, eq: int) -> int:
    """Arithmetic GMXΔ (paper Eq. 2): ``min{-eq, Δa, Δb} + 1 - Δb``.

    Args:
        delta_a: the difference value that is *not* subtracted back out
            (Δv_in when computing Δv_out; Δh_in when computing Δh_out).
        delta_b: the complementary difference value.
        eq: 1 if the pattern and text characters at this DP element match.

    Returns:
        The output difference value, guaranteed to be in {-1, 0, +1}.
    """
    if delta_a not in DELTA_VALUES or delta_b not in DELTA_VALUES:
        raise DeltaEncodingError(
            f"Δ inputs must be in {{-1, 0, +1}}, got ({delta_a!r}, {delta_b!r})"
        )
    if eq not in (0, 1):
        raise DeltaEncodingError(f"eq must be 0 or 1, got {eq!r}")
    return min(-eq, delta_a, delta_b) + 1 - delta_b


def gmx_delta_bits(a0: int, a1: int, b0: int, b1: int, eq: int) -> Tuple[int, int]:
    """Boolean GMXΔ (paper Eq. 3) over 2-bit encoded inputs.

    Derivation from Eq. 2 with m = min{-eq, Δa, Δb}:

    * Δb == -1 forces m = -1, so out = +1.
    * Δb ==  0: out = m + 1, i.e. 0 when (eq or Δa == -1), else +1.
    * Δb == +1: out = m, i.e. -1 when (eq or Δa == -1), else 0.

    Hence with ``neg = eq | Δa[1]``:

    * ``out[0] = Δb[1] | (!Δb[0] & !Δb[1] & !neg)``
    * ``out[1] = Δb[0] & neg``

    Returns:
        ``(out0, out1)``, the 2-bit encoding of the output Δ value.
    """
    neg = (eq | a1) & 1
    out0 = (b1 | ((b0 ^ 1) & (b1 ^ 1) & (neg ^ 1))) & 1
    out1 = (b0 & neg) & 1
    # a0 participates only through the encoding invariant: Δa == -1 is a1.
    del a0
    return out0, out1


def gmx_delta_via_bits(delta_a: int, delta_b: int, eq: int) -> int:
    """Compute GMXΔ through the boolean gate form (round-trips the encoding)."""
    a0, a1 = encode_delta(delta_a)
    b0, b1 = encode_delta(delta_b)
    out0, out1 = gmx_delta_bits(a0, a1, b0, b1, eq)
    return decode_delta(out0, out1)


def enumerate_gmx_delta_truth_table() -> Iterator[Tuple[int, int, int, int]]:
    """Yield (Δa, Δb, eq, GMXΔ) for all 18 legal input combinations.

    This is the brute-force enumeration the paper uses to verify Eq. 3.
    """
    for delta_a in DELTA_VALUES:
        for delta_b in DELTA_VALUES:
            for eq in (0, 1):
                yield delta_a, delta_b, eq, gmx_delta(delta_a, delta_b, eq)


#: Number of bit operations per DP element claimed for GMX-Tile (paper §4.2).
GMX_TILE_BITOPS_PER_ELEMENT = 12

#: Bit operations per DP element for the classical BPM formulation.
BPM_BITOPS_PER_ELEMENT = 17

#: Bit operations per *bit* of Bitap state (7·k per character, k bits/element).
BITAP_BITOPS_PER_STATE_BIT = 7

#: Full-integer instructions per DP element for classical DP (paper §4.2).
DP_INSTRUCTIONS_PER_ELEMENT = 5
