"""DNA alphabet handling and sequence utilities.

GMX compares raw characters (any alphabet) rather than pre-encoded symbols —
one of its advantages over Bitap/BPM accelerators that need 2-bit encodings
and per-character lookup tables.  This module still provides an optional
canonical DNA alphabet for workload generation and compact encodings used by
the baseline accelerators' cost models.
"""

from __future__ import annotations

from typing import Iterable

#: Canonical DNA bases, in the order used by 2-bit encodings.
DNA_BASES = "ACGT"

#: Extended alphabet including the ambiguity symbol produced by sequencers.
DNA_BASES_N = DNA_BASES + "N"

_BASE_TO_CODE = {base: code for code, base in enumerate(DNA_BASES)}
_CODE_TO_BASE = dict(enumerate(DNA_BASES))

_COMPLEMENT = str.maketrans("ACGTN", "TGCAN")


class AlphabetError(ValueError):
    """Raised when a sequence contains symbols outside the expected alphabet."""


def validate_dna(sequence: str, *, allow_n: bool = False) -> str:
    """Return ``sequence`` unchanged if it is a valid DNA string.

    Args:
        sequence: the sequence to validate.
        allow_n: whether the ambiguity base ``N`` is acceptable.

    Raises:
        AlphabetError: if any character falls outside the alphabet.
    """
    allowed = set(DNA_BASES_N if allow_n else DNA_BASES)
    for position, base in enumerate(sequence):
        if base not in allowed:
            raise AlphabetError(
                f"invalid base {base!r} at position {position}; "
                f"expected one of {sorted(allowed)}"
            )
    return sequence


def encode_2bit(sequence: str) -> list[int]:
    """Encode a DNA sequence into 2-bit codes (A=0, C=1, G=2, T=3).

    This mirrors the preprocessing step that Bitap/BPM-based accelerators
    require and that GMX removes.
    """
    try:
        return [_BASE_TO_CODE[base] for base in sequence]
    except KeyError as exc:
        raise AlphabetError(f"cannot 2-bit encode base {exc.args[0]!r}") from exc


def decode_2bit(codes: Iterable[int]) -> str:
    """Decode a 2-bit code list back into a DNA string."""
    try:
        return "".join(_CODE_TO_BASE[code] for code in codes)
    except KeyError as exc:
        raise AlphabetError(f"invalid 2-bit code {exc.args[0]!r}") from exc


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement of a DNA sequence (N maps to N)."""
    return sequence.translate(_COMPLEMENT)[::-1]
