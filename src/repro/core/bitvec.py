"""Fixed-width bit-vector helpers.

GMX packs vectors of 2-bit-encoded Δ values into general-purpose registers
(T = 32 values in a 64-bit register).  Python integers are arbitrary
precision, so these helpers impose explicit widths and provide the pack /
unpack conversions between Δ-value lists and register images.

Register layout (paper §5): a ΔV/ΔH register holds T two-bit fields; field
``i`` occupies bits ``[2i+1 : 2i]`` with bit ``2i`` = (Δ == +1) and bit
``2i+1`` = (Δ == -1), matching :mod:`repro.core.delta`'s encoding.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .delta import DeltaEncodingError, decode_delta, encode_delta


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def get_bit(value: int, index: int) -> int:
    """Return bit ``index`` of ``value``."""
    return (value >> index) & 1


def set_bit(value: int, index: int, bit: int) -> int:
    """Return ``value`` with bit ``index`` set to ``bit``."""
    if bit:
        return value | (1 << index)
    return value & ~(1 << index)


def popcount(value: int) -> int:
    """Population count (number of set bits)."""
    return bin(value).count("1")


def bits_of(value: int, width: int) -> List[int]:
    """Return the ``width`` low bits of ``value``, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: Iterable[int]) -> int:
    """Inverse of :func:`bits_of` (LSB first)."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


def pack_deltas(deltas: Sequence[int]) -> int:
    """Pack a sequence of Δ values into a register image (2 bits per value)."""
    register = 0
    for i, delta in enumerate(deltas):
        bit0, bit1 = encode_delta(delta)
        register |= (bit0 | (bit1 << 1)) << (2 * i)
    return register


def unpack_deltas(register: int, count: int) -> List[int]:
    """Unpack ``count`` Δ values from a register image.

    Raises:
        DeltaEncodingError: if any 2-bit field holds the illegal pattern 0b11.
    """
    deltas = []
    for i in range(count):
        field = (register >> (2 * i)) & 0b11
        deltas.append(decode_delta(field & 1, (field >> 1) & 1))
    return deltas


def split_plus_minus(deltas: Sequence[int]) -> tuple[int, int]:
    """Split Δ values into (P, M) bitmasks: P bit i set iff Δ==+1, M iff Δ==-1.

    This is the representation the bit-parallel (Myers/Hyyrö) kernels use
    internally; element ``i`` of the vector maps to bit ``i``.
    """
    plus = 0
    minus = 0
    for i, delta in enumerate(deltas):
        if delta == 1:
            plus |= 1 << i
        elif delta == -1:
            minus |= 1 << i
        elif delta != 0:
            raise DeltaEncodingError(f"Δ value must be -1, 0 or +1, got {delta!r}")
    return plus, minus


def merge_plus_minus(plus: int, minus: int, count: int) -> List[int]:
    """Inverse of :func:`split_plus_minus`.

    Raises:
        DeltaEncodingError: if any position has both the plus and minus bit.
    """
    if plus & minus:
        raise DeltaEncodingError(
            f"plus and minus masks overlap at bits {bin(plus & minus)}"
        )
    return [((plus >> i) & 1) - ((minus >> i) & 1) for i in range(count)]
