"""GMX-Tile: tile-wise computation of the edit-distance DP matrix (paper §4.2).

A tile covers ``R`` pattern rows × ``C`` text columns (both ≤ T, the hardware
tile size; partial tiles model the masking a real implementation performs for
sequence lengths that are not multiples of T).  A tile consumes the
difference vectors on its input edges,

* ``dv_in[i]``:  Δv of the cell immediately left of row ``i`` (left edge),
* ``dh_in[j]``:  Δh of the cell immediately above column ``j`` (top edge),

and produces the output edges ``dv_out`` (right edge) and ``dh_out`` (bottom
edge).  Interior elements are computed on the fly and never stored — the key
to GMX's ``T×`` memory-footprint reduction.

Two interchangeable kernels are provided:

* :func:`compute_tile_reference` — cell-by-cell evaluation of the GMXΔ
  function, mirroring the CC_AC array of the hardware (Figure 7).
* :func:`compute_tile` — a bit-parallel blocked kernel (Hyyrö-style) that
  advances one text column per step using word-wide boolean operations; this
  is what makes megabase-scale functional runs feasible in Python.

Both are exhaustively cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .bitvec import mask, merge_plus_minus, split_plus_minus
from .delta import gmx_delta

#: Default hardware tile size: 32 two-bit Δ values fill a 64-bit register.
DEFAULT_TILE_SIZE = 32


class TileShapeError(ValueError):
    """Raised when tile inputs have inconsistent shapes."""


@dataclass(frozen=True)
class TileResult:
    """Output edges of a computed tile.

    Attributes:
        dv_out: Δv of each row's rightmost cell (right edge), length R.
        dh_out: Δh of each column's bottom cell (bottom edge), length C.
    """

    dv_out: Tuple[int, ...]
    dh_out: Tuple[int, ...]


@dataclass(frozen=True)
class TileInterior:
    """Full interior of a tile, used by traceback recomputation.

    ``dv[i][j]`` / ``dh[i][j]`` are the output Δ values of cell (i, j);
    row index i runs over pattern characters, column index j over text.
    """

    dv: Tuple[Tuple[int, ...], ...]
    dh: Tuple[Tuple[int, ...], ...]


def _check_inputs(
    pattern: str,
    text: str,
    dv_in: Sequence[int],
    dh_in: Sequence[int],
    tile_size: int,
) -> None:
    if not pattern or not text:
        raise TileShapeError("tile pattern and text chunks must be non-empty")
    if len(pattern) > tile_size or len(text) > tile_size:
        raise TileShapeError(
            f"chunk sizes ({len(pattern)}, {len(text)}) exceed tile size {tile_size}"
        )
    if len(dv_in) != len(pattern):
        raise TileShapeError(
            f"dv_in length {len(dv_in)} != pattern chunk length {len(pattern)}"
        )
    if len(dh_in) != len(text):
        raise TileShapeError(
            f"dh_in length {len(dh_in)} != text chunk length {len(text)}"
        )


def compute_tile_reference(
    pattern: str,
    text: str,
    dv_in: Sequence[int],
    dh_in: Sequence[int],
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> TileResult:
    """Cell-by-cell tile computation via the GMXΔ function.

    This mirrors the hardware CC_AC array exactly: each cell evaluates two
    GMXΔ modules fed by its left Δv, upper Δh and character-equality bit.
    """
    _check_inputs(pattern, text, dv_in, dh_in, tile_size)
    dv = list(dv_in)
    dh_out: List[int] = []
    for j, text_char in enumerate(text):
        dh = dh_in[j]
        for i, pattern_char in enumerate(pattern):
            eq = 1 if pattern_char == text_char else 0
            new_dv = gmx_delta(dv[i], dh, eq)
            new_dh = gmx_delta(dh, dv[i], eq)
            dv[i] = new_dv
            dh = new_dh
        dh_out.append(dh)
    return TileResult(dv_out=tuple(dv), dh_out=tuple(dh_out))


def compute_tile_interior(
    pattern: str,
    text: str,
    dv_in: Sequence[int],
    dh_in: Sequence[int],
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> TileInterior:
    """Recompute and return every interior Δ value of a tile.

    The hardware GMX-TB module performs this recomputation transparently when
    executing ``gmx.tb``; software never stores the interior.
    """
    _check_inputs(pattern, text, dv_in, dh_in, tile_size)
    rows = len(pattern)
    cols = len(text)
    dv_grid = [[0] * cols for _ in range(rows)]
    dh_grid = [[0] * cols for _ in range(rows)]
    dv = list(dv_in)
    for j, text_char in enumerate(text):
        dh = dh_in[j]
        for i, pattern_char in enumerate(pattern):
            eq = 1 if pattern_char == text_char else 0
            new_dv = gmx_delta(dv[i], dh, eq)
            new_dh = gmx_delta(dh, dv[i], eq)
            dv[i] = new_dv
            dh = new_dh
            dv_grid[i][j] = new_dv
            dh_grid[i][j] = new_dh
    return TileInterior(
        dv=tuple(tuple(row) for row in dv_grid),
        dh=tuple(tuple(row) for row in dh_grid),
    )


def build_peq(pattern: str) -> Dict[str, int]:
    """Build per-character equality bitmasks for a pattern chunk.

    Bit ``i`` of ``peq[c]`` is set iff ``pattern[i] == c``.  GMX hardware
    compares characters directly (no tables); the bit-parallel software
    kernel builds this tiny map per pattern chunk purely as a speed device,
    and it is reused across every tile in the same tile-row.
    """
    peq: Dict[str, int] = {}
    for i, char in enumerate(pattern):
        peq[char] = peq.get(char, 0) | (1 << i)
    return peq


def advance_column(
    peq_char: int,
    pv: int,
    mv: int,
    h_in: int,
    rows: int,
) -> Tuple[int, int, int, int, int]:
    """Advance one text column of a tile using word-parallel boolean ops.

    This is the blocked Myers/Hyyrö column step restricted to ``rows`` bits,
    with an explicit horizontal carry in/out.

    Args:
        peq_char: equality bitmask of the column's text character.
        pv, mv: vertical Δ masks of the previous column (bit i set iff
            Δv[i] == +1 / −1).
        h_in: the horizontal Δ entering the column's top cell (−1, 0, +1).
        rows: number of active rows (R ≤ T).

    Returns:
        ``(pv, mv, h_out, ph, mh)`` — the new vertical masks, the horizontal
        Δ leaving the column's bottom cell, and the *pre-shift* horizontal
        masks (bit i set iff Δh[i] of this column is +1 / −1), which the
        traceback recomputation consumes.
    """
    row_mask = mask(rows)
    eq = peq_char & row_mask
    xv = eq | mv
    if h_in < 0:
        eq |= 1
    xh = ((((eq & pv) + pv) & mask(rows + 1)) ^ pv) | eq
    ph = (mv | ~(xh | pv)) & row_mask
    mh = (pv & xh) & row_mask
    top_bit = 1 << (rows - 1)
    if ph & top_bit:
        h_out = 1
    elif mh & top_bit:
        h_out = -1
    else:
        h_out = 0
    ph_shift = (ph << 1) & row_mask
    mh_shift = (mh << 1) & row_mask
    if h_in > 0:
        ph_shift |= 1
    elif h_in < 0:
        mh_shift |= 1
    new_pv = (mh_shift | ~(xv | ph_shift)) & row_mask
    new_mv = (ph_shift & xv) & row_mask
    return new_pv, new_mv, h_out, ph, mh


def compute_tile(
    pattern: str,
    text: str,
    dv_in: Sequence[int],
    dh_in: Sequence[int],
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
    peq: Dict[str, int] | None = None,
) -> TileResult:
    """Bit-parallel tile computation (production kernel).

    Semantically identical to :func:`compute_tile_reference`; advances the
    tile one text column at a time with word-wide operations.

    Args:
        peq: optional precomputed equality masks for ``pattern`` (see
            :func:`build_peq`); callers aligning many tiles against the same
            pattern chunk pass this to amortise its construction.
    """
    _check_inputs(pattern, text, dv_in, dh_in, tile_size)
    rows = len(pattern)
    if peq is None:
        peq = build_peq(pattern)
    pv, mv = split_plus_minus(dv_in)
    dh_out: List[int] = []
    for j, text_char in enumerate(text):
        pv, mv, h_out, _, _ = advance_column(
            peq.get(text_char, 0), pv, mv, dh_in[j], rows
        )
        dh_out.append(h_out)
    return TileResult(
        dv_out=tuple(merge_plus_minus(pv, mv, rows)),
        dh_out=tuple(dh_out),
    )


def boundary_deltas(length: int) -> Tuple[int, ...]:
    """Difference values along a DP-matrix boundary (all +1).

    The first row/column of the DP matrix holds D[0,j] = j and D[i,0] = i,
    so every boundary difference is +1.
    """
    return tuple([1] * length)


@dataclass
class TileOpCounter:
    """Accumulates tile-kernel operation counts for the cost models.

    The counts follow the paper's §4.2 accounting: 12 bit-operations per DP
    element for GMX-Tile, and 4·T bits of storage per tile (only the edges).
    """

    tiles: int = 0
    dp_elements: int = 0
    bitops: int = 0
    edge_bits_stored: int = 0
    per_shape: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, rows: int, cols: int) -> None:
        """Record one computed tile of the given shape."""
        self.tiles += 1
        elements = rows * cols
        self.dp_elements += elements
        self.bitops += 12 * elements
        self.edge_bits_stored += 2 * (rows + cols)
        shape = (rows, cols)
        self.per_shape[shape] = self.per_shape.get(shape, 0) + 1
