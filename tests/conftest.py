"""Shared test fixtures and reference implementations.

The reference edit-distance DP here is deliberately independent of the
library code (no imports from :mod:`repro`), so every kernel is checked
against a second implementation rather than against itself.
"""

from __future__ import annotations

import random
from typing import List

import pytest

DNA = "ACGT"


def scalar_edit_matrix(pattern: str, text: str) -> List[List[int]]:
    """Reference (n+1)×(m+1) unit-cost edit-distance matrix."""
    n = len(pattern)
    m = len(text)
    matrix = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        matrix[i][0] = i
    for j in range(m + 1):
        matrix[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            matrix[i][j] = min(
                matrix[i - 1][j] + 1,
                matrix[i][j - 1] + 1,
                matrix[i - 1][j - 1] + (pattern[i - 1] != text[j - 1]),
            )
    return matrix


def scalar_edit_distance(pattern: str, text: str) -> int:
    """Reference unit-cost edit distance."""
    return scalar_edit_matrix(pattern, text)[len(pattern)][len(text)]


def random_dna(length: int, rng: random.Random) -> str:
    """Uniform random DNA string."""
    return "".join(rng.choice(DNA) for _ in range(length))


def mutate_dna(sequence: str, edits: int, rng: random.Random) -> str:
    """Apply ``edits`` random single-character edits."""
    chars = list(sequence)
    for _ in range(edits):
        kind = rng.choice("mid")
        if not chars:
            kind = "i"
        if kind == "m":
            position = rng.randrange(len(chars))
            chars[position] = rng.choice(DNA)
        elif kind == "i":
            chars.insert(rng.randrange(len(chars) + 1), rng.choice(DNA))
        elif len(chars) > 1:
            del chars[rng.randrange(len(chars))]
    return "".join(chars)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic per-test RNG."""
    return random.Random(0xC0FFEE)
