"""Shared test fixtures and reference implementations.

The reference edit-distance DP here is deliberately independent of the
library code (no imports from :mod:`repro`), so every kernel is checked
against a second implementation rather than against itself.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import List

import pytest

DNA = "ACGT"

#: Directory of committed golden snapshots (see the ``golden`` fixture).
GOLDEN_DIR = Path(__file__).parent / "golden"

#: Keys whose values vary run to run (timings) and are scrubbed before
#: golden comparison.  Matched by suffix or exact name.
VOLATILE_SUFFIXES = ("_seconds", "_ns", "_per_second")
VOLATILE_KEYS = {"elapsed", "utilization", "wall", "badge_runtime"}


def sanitize_volatile(payload):
    """Replace timing-dependent values with a stable placeholder.

    Recurses through dicts/lists; a key is volatile when it matches
    ``VOLATILE_KEYS`` exactly or ends with one of ``VOLATILE_SUFFIXES``.
    The key itself stays (so schema drift is still caught) — only the
    value is masked.
    """
    if isinstance(payload, dict):
        return {
            key: (
                "<volatile>"
                if key in VOLATILE_KEYS
                or any(key.endswith(s) for s in VOLATILE_SUFFIXES)
                else sanitize_volatile(value)
            )
            for key, value in payload.items()
        }
    if isinstance(payload, list):
        return [sanitize_volatile(item) for item in payload]
    return payload


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ snapshots from the current output",
    )
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run every test under the concurrency & determinism "
        "sanitizer (registry guards + batch-boundary hook-leak checks)",
    )


@pytest.fixture(autouse=True)
def _dsan(request):
    """Arm the sanitizer around each test when ``--sanitize`` is given.

    Off by default (one flag check per test).  With the flag, the test
    body runs inside :func:`repro.analysis.sanitizer.sanitize`: the
    backend registry freezes, the instance cache becomes owner-checked,
    and every ``align_batch*`` boundary verifies that no ambient hook,
    trace sink, or obs recorder leaked — exactly how CI runs the
    conformance and chaos suites.
    """
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.analysis.sanitizer import sanitize

    with sanitize():
        yield


@pytest.fixture
def golden(request):
    """Compare a JSON-safe payload against a committed snapshot.

    Usage: ``golden("lint_json", payload)`` — sanitizes timing keys,
    serialises with sorted keys, and diffs against
    ``tests/golden/lint_json.json``.  Run ``pytest --update-golden`` to
    (re)write the snapshots after an intentional schema change.
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, payload) -> None:
        rendered = (
            json.dumps(sanitize_volatile(payload), indent=2, sort_keys=True)
            + "\n"
        )
        path = GOLDEN_DIR / f"{name}.json"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(rendered)
            return
        assert path.exists(), (
            f"missing golden snapshot {path} — "
            f"run `pytest --update-golden` to create it"
        )
        expected = path.read_text()
        assert rendered == expected, (
            f"golden snapshot {name!r} drifted from {path}.\n"
            f"If the change is intentional, rerun with --update-golden "
            f"and commit the diff.\n--- expected ---\n{expected}\n"
            f"--- actual ---\n{rendered}"
        )

    return check


def scalar_edit_matrix(pattern: str, text: str) -> List[List[int]]:
    """Reference (n+1)×(m+1) unit-cost edit-distance matrix."""
    n = len(pattern)
    m = len(text)
    matrix = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        matrix[i][0] = i
    for j in range(m + 1):
        matrix[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            matrix[i][j] = min(
                matrix[i - 1][j] + 1,
                matrix[i][j - 1] + 1,
                matrix[i - 1][j - 1] + (pattern[i - 1] != text[j - 1]),
            )
    return matrix


def scalar_edit_distance(pattern: str, text: str) -> int:
    """Reference unit-cost edit distance."""
    return scalar_edit_matrix(pattern, text)[len(pattern)][len(text)]


def random_dna(length: int, rng: random.Random) -> str:
    """Uniform random DNA string."""
    return "".join(rng.choice(DNA) for _ in range(length))


def mutate_dna(sequence: str, edits: int, rng: random.Random) -> str:
    """Apply ``edits`` random single-character edits."""
    chars = list(sequence)
    for _ in range(edits):
        kind = rng.choice("mid")
        if not chars:
            kind = "i"
        if kind == "m":
            position = rng.randrange(len(chars))
            chars[position] = rng.choice(DNA)
        elif kind == "i":
            chars.insert(rng.randrange(len(chars) + 1), rng.choice(DNA))
        elif len(chars) > 1:
            del chars[rng.randrange(len(chars))]
    return "".join(chars)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic per-test RNG."""
    return random.Random(0xC0FFEE)
