"""Tests for the GMX-TB microarchitecture model (repro.hw.gmx_tb)."""

import pytest

from repro.hw.gmx_ac import GmxAcModel
from repro.hw.gmx_tb import GmxTbModel


class TestStructure:
    def test_traceback_cell_is_bigger_than_compute_cell(self):
        """CC_TB embeds the recomputation logic plus the priority selector."""
        tb = GmxTbModel(tile_size=8).cell_budget()
        ac = GmxAcModel(tile_size=8).cell_budget()
        assert tb.nand2_equivalents > ac.nand2_equivalents

    def test_one_op_per_antidiagonal(self):
        """§6.2: the path enables at most one CC_TB per antidiagonal."""
        assert GmxTbModel(tile_size=32).max_ops_per_traceback == 63


class TestTiming:
    def test_paper_anchor_six_cycles_at_1ghz(self):
        """The paper's T = 32 design runs gmx.tb in 6 cycles at 1 GHz."""
        assert GmxTbModel(tile_size=32).latency_cycles(1.0) == 6

    def test_tb_needs_more_stages_than_ac(self):
        """§6.3: C_d + P_d per cell means deeper segmentation than GMX-AC."""
        ac = GmxAcModel(tile_size=32)
        tb = GmxTbModel(tile_size=32)
        assert tb.stages_for_frequency(1.0) > ac.stages_for_frequency(1.0)

    def test_critical_path_includes_recompute_and_select(self):
        model = GmxTbModel(tile_size=16)
        expected = 31 * (model.compute_delay_ns + model.select_delay_ns)
        assert model.critical_path_ns == pytest.approx(expected)

    def test_segmentation_validation(self):
        with pytest.raises(ValueError):
            GmxTbModel(tile_size=8).segment(0)
        with pytest.raises(ValueError):
            GmxTbModel(tile_size=8).stages_for_frequency(-1)

    def test_small_tile_rejected(self):
        with pytest.raises(ValueError):
            GmxTbModel(tile_size=0)
